"""Functional YCSB run under shard faults: the availability scenario.

Drives a real cluster (Mongo-AS, Mongo-CS, or SQL-CS) through a workload's
operation mix while a :class:`~repro.faults.plan.FaultPlan` kills and
restarts shard processes at scheduled points in the op stream.  The client
handles failures with a :class:`~repro.faults.retry.RetryPolicy` — capped
exponential backoff on a *logical* clock (no wall time), matching the
paper's no-replica-set deployment where a dead mongod means every op routed
to it fails until an operator intervenes.

Accounting folds into the YCSB latency histograms: successful ops record
their service latency plus any backoff they paid; abandoned ops record the
full latency burned before giving up *and* count as errors, so availability
(``succeeded / attempted``) and p95 inflation both fall out of the same
histograms the healthy run produces.  With a tracer attached, every backoff
becomes a ``retry.backoff`` span and every fault a ``fault.*`` marker span.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import (
    ChunkMoving,
    FaultPlanError,
    ServerCrashed,
    ShardUnavailable,
    StaleConfigError,
    WorkloadError,
)
from repro.common.rng import SeedStream
from repro.faults.plan import MEMBER_KINDS, TOPOLOGY_KINDS, FaultPlan
from repro.faults.retry import RetryPolicy
from repro.ycsb.generators import (
    CounterGenerator,
    HotspotGenerator,
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
)
from repro.ycsb.histogram import LatencyHistogram
from repro.ycsb.workloads import (
    FIELD_COUNT,
    MAX_SCAN_LENGTH,
    OP_INSERT,
    OP_READ,
    OP_RMW,
    OP_SCAN,
    OP_UPDATE,
    WorkloadSpec,
    make_field_value,
    make_key,
    make_record,
)

# Logical per-attempt service latencies (seconds).  These stand in for the
# functional layer's missing clock: absolute values are nominal, but they are
# deterministic, so healthy-vs-faulted comparisons (backoff inflation, p95
# ratios) are meaningful.
SERVICE_LATENCY = {
    OP_READ: 0.0009,
    OP_UPDATE: 0.0011,
    OP_INSERT: 0.0010,
    OP_SCAN: 0.0040,
    OP_RMW: 0.0020,
}
# A failed attempt (connection refused / socket exception) is detected fast.
FAILURE_DETECT_LATENCY = 0.0005

# ``ChunkMoving`` (a migration commit's critical section) and
# ``StaleConfigError`` (a routing cache that refuses to converge) are both
# transient by construction: one backoff outlasts the commit window, and a
# refresh converges as soon as the metadata settles.
_RETRYABLE = (ShardUnavailable, ServerCrashed, ChunkMoving, StaleConfigError)


@dataclass
class FaultedRunStats:
    """Counts and histograms from one (possibly faulted) functional run."""

    attempted: int = 0
    succeeded: int = 0
    retries: int = 0
    chunk_moving_retries: int = 0  # bounced off a migration commit window
    backoff_seconds: float = 0.0
    duration: float = 0.0  # logical seconds
    errors: dict = field(default_factory=dict)  # op class -> abandoned ops
    histograms: dict = field(default_factory=dict)  # op class -> LatencyHistogram
    faults_fired: list = field(default_factory=list)  # spec strings, in order
    # Overload accounting (all zero/empty without an overload policy).
    shed: dict = field(default_factory=dict)  # shed reason -> ops
    budget_denied: int = 0  # retries refused by the retry budget
    breaker_fast_failures: int = 0  # ops failed fast on an open breaker
    breakers: dict = field(default_factory=dict)  # shard -> transition log

    @property
    def error_count(self) -> int:
        return sum(self.errors.values())

    @property
    def shed_count(self) -> int:
        return sum(self.shed.values())

    @property
    def availability(self) -> float:
        return self.succeeded / self.attempted if self.attempted else 1.0

    def p95_ms(self, op_class: str) -> float:
        histogram = self.histograms.get(op_class)
        return histogram.percentile(95) * 1000.0 if histogram else 0.0


class FaultedYcsbRun:
    """A YCSB client loop with shard-fault scheduling and retry recovery."""

    def __init__(
        self,
        cluster,
        workload: WorkloadSpec,
        record_count: int,
        operations: int,
        plan: FaultPlan | None = None,
        policy: RetryPolicy | None = None,
        seed: int = 7,
        tracer=None,
        metrics=None,
        live=None,
        prof=None,
        overload=None,
    ):
        if record_count < 2:
            raise WorkloadError("need at least two records")
        if operations < 1:
            raise WorkloadError("need at least one operation")
        self.cluster = cluster
        self.workload = workload
        self.record_count = record_count
        self.operations = operations
        self.plan = plan if plan is not None else FaultPlan()
        self.policy = policy or RetryPolicy()
        # Overload protection (PR 10): a retry budget and per-shard circuit
        # breakers around the retry loop.  ``overload=None`` leaves every
        # op on the exact pre-overload path (zero-cost-off).
        self.overload = overload
        self._budget = None
        self._breakers = None
        if overload is not None:
            from repro.overload.policy import BreakerBoard, RetryBudget

            if overload.retry_budget is not None:
                self._budget = RetryBudget(
                    overload.retry_budget, overload.budget_burst)
            if overload.breaker:
                self._breakers = BreakerBoard(
                    overload.breaker_threshold, overload.breaker_cooldown)
        self.prof = prof
        if prof is not None:
            # Charge span construction and digest updates to their host-time
            # counters; the wrapped collectors see identical calls, so all
            # simulated output stays byte-identical (zero-cost-off contract).
            from repro.obs.prof import profiled_live, profiled_tracer

            tracer = profiled_tracer(tracer, prof)
            live = profiled_live(live, prof)
        self.tracer = tracer
        self.metrics = metrics
        self.live = live
        self.seeds = SeedStream(seed)
        self._op_rng = self.seeds.rng_for("ops")
        self._data_rng = self.seeds.rng_for("data")
        self._counter = CounterGenerator(record_count)
        self._chooser = self._make_chooser()
        self._last_op_info = None  # (op_class, key, fieldname, value)
        self.fault_log: list[tuple[str, float]] = []  # (spec, fired at)
        self.now = 0.0

    def _make_chooser(self):
        rng = self.seeds.rng_for("chooser")
        dist = self.workload.request_distribution
        if dist == "uniform":
            gen = UniformGenerator(self.record_count, rng)
            return lambda: gen.next()
        if dist == "zipfian":
            gen = ScrambledZipfianGenerator(self.record_count, rng)
            return lambda: min(gen.next(), self._counter.last)
        if dist == "hotspot":
            gen = HotspotGenerator(self.record_count, rng)
            return lambda: min(gen.next(), self._counter.last)
        gen = LatestGenerator(self.record_count, rng)
        self._latest = gen
        return lambda: gen.next()

    # -- fault schedule --------------------------------------------------------

    def _fault_op_index(self, at: float) -> int:
        """``at <= 1`` is a fraction of the op stream, else an op index."""
        if at <= 1.0:
            return int(round(at * self.operations))
        return int(at)

    def _fire_due_faults(self, op_index: int, stats: FaultedRunStats) -> list:
        """Fire scheduled faults; returns the fault spans emitted (if tracing).

        The spans are returned un-parented so the caller can attach them to
        the op they delay — the next ``request.*`` span in the stream.
        """
        fired_spans = []
        for fault in (self.plan.shard_faults + self.plan.member_faults
                      + self.plan.topology_faults):
            key = fault.spec_string()
            if key in stats.faults_fired:
                continue
            if op_index < self._fault_op_index(fault.at):
                continue
            lane = "shards"
            if fault.kind in MEMBER_KINDS:
                shard, member = fault.member_target()
                self._fire_member_fault(fault, shard, member)
                target_args = {"shard": shard, "member": member}
            elif fault.kind in TOPOLOGY_KINDS:
                target_args = self._fire_topology_fault(fault)
                lane = "topology"
            else:
                shard = fault.target_index()
                if fault.kind == "kill-shard":
                    self.cluster.kill_shard(shard)
                else:
                    self.cluster.restart_shard(shard)
                target_args = {"shard": shard}
            stats.faults_fired.append(key)
            self.fault_log.append((key, self.now))
            if self.tracer:
                fired_spans.append(self.tracer.add(
                    f"fault.{fault.kind}", self.now, self.now,
                    cat="fault", node="faults", lane=lane,
                    op_index=op_index, **target_args,
                ))
            if self.metrics:
                self.metrics.counter(f"faults.{fault.kind}").inc()
        return fired_spans

    def _fire_member_fault(self, fault, shard_index: int,
                           member_index: int) -> None:
        """Apply a replica-set member fault (needs replication enabled)."""
        shard = self.cluster.shards[shard_index]
        if not hasattr(shard, "kill_member"):
            raise FaultPlanError(
                f"fault {fault.spec_string()!r} targets a replica-set member "
                "but the cluster has no replication configured"
            )
        if fault.kind == "kill-member":
            shard.kill_member(member_index)
        elif fault.kind == "restart-member":
            shard.restart_member(member_index)
        elif fault.kind == "partition-member":
            shard.partition_member(member_index)
        elif fault.kind == "heal-member":
            shard.heal_member(member_index)
        else:  # lag-spike: duration is logical seconds on the run clock
            shard.lag_spike(
                member_index, fault.magnitude, self.now + fault.duration
            )

    def _fire_topology_fault(self, fault) -> dict:
        """Apply a live-resharding event (needs an elastic cluster)."""
        if not hasattr(self.cluster, "scale_to"):
            raise FaultPlanError(
                f"fault {fault.spec_string()!r} reshapes the cluster but "
                "this cluster type does not support live resharding"
            )
        if fault.kind == "scale":
            count = fault.scale_target()
            queued = self.cluster.scale_to(count, now=self.now)
            return {"shards": count, "migrations": queued}
        index = fault.drain_target()
        queued = self.cluster.drain_shard(index, now=self.now)
        return {"shard": index, "migrations": queued}

    def _tick_cluster(self, at: float | None = None) -> None:
        """Advance replica-set clocks (oplog shipping, flushes, elections)."""
        tick = getattr(self.cluster, "tick", None)
        if tick is not None:
            tick(self.now if at is None else at)

    # -- operations ------------------------------------------------------------

    def _plan_op(self, op_class: str):
        """Draw the op's random parameters once and return a retryable thunk.

        Retries must re-execute the *same* operation (same key, same value):
        a client retrying a failed read does not pick a new key, so an op
        routed to a dead shard keeps hitting that shard until the policy
        gives up.  This is what makes one dead shard out of N cost ~1/N of
        availability instead of being retried around.
        """
        if op_class == OP_READ:
            key = make_key(self._chooser())
            self._last_op_info = (op_class, key, None, None)
            return lambda: self.cluster.read(key)
        if op_class == OP_UPDATE:
            key = make_key(self._chooser())
            fieldname = f"field{self._op_rng.random_int(0, FIELD_COUNT - 1)}"
            value = make_field_value(self._data_rng)
            self._last_op_info = (op_class, key, fieldname, value)
            return lambda: self.cluster.update(key, fieldname, value)
        if op_class == OP_INSERT:
            index = self._counter.next()
            key = make_key(index)
            record = make_record(self._data_rng)
            self._last_op_info = (op_class, key, None, record)

            def do_insert():
                self.cluster.insert(key, record)
                if hasattr(self, "_latest"):
                    self._latest.observe_insert()

            return do_insert
        if op_class == OP_SCAN:
            start = make_key(self._chooser())
            length = self._op_rng.random_int(1, MAX_SCAN_LENGTH)
            self._last_op_info = (op_class, start, None, None)
            return lambda: self.cluster.scan(start, length)
        if op_class == OP_RMW:
            key = make_key(self._chooser())
            fieldname = f"field{self._op_rng.random_int(0, FIELD_COUNT - 1)}"
            value = make_field_value(self._data_rng)
            self._last_op_info = (op_class, key, fieldname, value)

            def do_rmw():
                record = self.cluster.read(key)
                if record is not None:
                    self.cluster.update(key, fieldname, value)

            return do_rmw
        raise WorkloadError(f"unknown op class {op_class!r}")

    def _run_op(self, op_class: str, stats: FaultedRunStats,
                pending_spans=()) -> None:
        histogram = stats.histograms.setdefault(op_class, LatencyHistogram())
        execute = self._plan_op(op_class)
        latency = 0.0
        attempt = 0
        failed = False
        failed_shard = -1
        op_spans = list(pending_spans)  # fault.* markers that delay this op
        consume_io = getattr(self.cluster, "consume_io_wait", None)
        prof = self.prof
        while True:
            try:
                if prof is not None:
                    # The routing path: mongos/ring lookup plus the store op.
                    prof.enter("routing")
                    try:
                        execute()
                    finally:
                        prof.exit()
                else:
                    execute()
            except _RETRYABLE as exc:
                latency += FAILURE_DETECT_LATENCY
                if consume_io is not None:
                    latency += consume_io()  # queueing paid before the bounce
                attempt += 1
                if isinstance(exc, ChunkMoving):
                    stats.chunk_moving_retries += 1
                    if self.metrics:
                        self.metrics.counter("ycsb.chunk_moving_retries").inc()
                if self.metrics:
                    self.metrics.counter(f"ycsb.failed_attempts.{op_class}").inc()
                if self.policy.gives_up(attempt, latency):
                    failed = True
                    stats.errors[op_class] = stats.errors.get(op_class, 0) + 1
                    histogram.record(latency)
                    histogram.record_error()
                    if self.metrics:
                        self.metrics.counter(f"ycsb.errors.{op_class}").inc()
                    break
                if self.overload is not None:
                    # Per-shard breaker first (fail fast while a shard is
                    # known-bad), then the retry budget (cap storm load).
                    shard = getattr(exc, "shard", -1)
                    if self._breakers is not None and shard >= 0:
                        failed_shard = shard
                        self._breakers.record_failure(
                            shard, self.now + latency)
                        if not self._breakers.allow(
                                shard, self.now + latency):
                            failed = True
                            stats.breaker_fast_failures += 1
                            stats.shed["breaker"] = (
                                stats.shed.get("breaker", 0) + 1)
                            histogram.record_shed()
                            if self.metrics:
                                self.metrics.counter(
                                    "overload.shed.breaker").inc()
                            break
                    if (self._budget is not None
                            and not self._budget.try_retry()):
                        failed = True
                        stats.budget_denied += 1
                        stats.shed["retry-budget"] = (
                            stats.shed.get("retry-budget", 0) + 1)
                        histogram.record_shed()
                        if self.metrics:
                            self.metrics.counter(
                                "overload.shed.retry-budget").inc()
                        break
                delay = self.policy.delay(attempt - 1)
                if self.tracer:
                    backoff = self.tracer.add(
                        "retry.backoff",
                        self.now + latency, self.now + latency + delay,
                        cat="retry", node="client", lane="backoff",
                        cls=op_class, attempt=attempt,
                    )
                    if op_spans:
                        self.tracer.link(op_spans[-1], backoff, "retry")
                    op_spans.append(backoff)
                latency += delay
                stats.retries += 1
                stats.backoff_seconds += delay
                if self.metrics:
                    self.metrics.counter("ycsb.retried_ops").inc()
                # Time passes while the client backs off: replica sets ship
                # their oplogs and run elections, which is what lets a retry
                # loop carry the client across a failover window.
                self._tick_cluster(self.now + latency)
                continue
            # Success path.
            latency += SERVICE_LATENCY[op_class]
            if consume_io is not None:
                latency += consume_io()  # migration copy queueing + rho
            consume_ack = getattr(self.cluster, "consume_ack_delay", None)
            if consume_ack is not None:
                latency += consume_ack()  # write-concern ack cost
            take_write = getattr(self.cluster, "take_last_write", None)
            if take_write is not None:
                write = take_write()
                if write is not None:
                    self._on_acked_write(write, stats)
            stats.succeeded += 1
            histogram.record(latency)
            if self._breakers is not None and failed_shard >= 0:
                # A success after failures on a shard is the half-open
                # probe's good news: close that shard's breaker.
                self._breakers.record_success(failed_shard, self.now + latency)
            if attempt and self.metrics:
                self.metrics.counter(f"ycsb.recovered_ops.{op_class}").inc()
            break
        if self.tracer:
            # The op itself, with the backoffs it paid and the fault markers
            # that delayed it parented underneath.
            request = self.tracer.add(
                f"request.{op_class}", self.now, self.now + latency,
                cat="request", node="client", lane="ops",
                cls=op_class, attempts=attempt,
                **({"error": True} if failed else {}),
            )
            for span in op_spans:
                span.parent = request.span_id
            if attempt:
                self._emit_election_waits(request, self.now, self.now + latency)
        if self.live:
            self.live.record_op(self.now + latency, latency, error=failed,
                                cls=op_class)
        self.now += latency

    def _emit_election_waits(self, request, start: float, end: float) -> None:
        """Attribute the slice of a retried op spent inside a failover window.

        Each overlap of the op's latency window with a replica set's closed
        downtime window becomes an ``election.wait`` child span
        (``cat="election"``), so critical paths show the stall and the
        what-if engine can answer "what if elections were instant?".  The
        wait is linked from the set's ``election.failover`` span when the
        window was closed by an election (a ``handoff`` edge).
        """
        for shard in getattr(self.cluster, "shards", []):
            for win_start, win_end in getattr(shard, "downtime", ()):
                lo, hi = max(start, win_start), min(end, win_end)
                if hi <= lo:
                    continue
                wait = self.tracer.add(
                    "election.wait", lo, hi, cat="election", node="client",
                    lane="ops", shard=shard.name,
                )
                wait.parent = request.span_id
                for failover in self.tracer.find(cat="election",
                                                 node=shard.name):
                    if failover.start <= lo and hi <= failover.end + 1e-9:
                        self.tracer.link(failover, wait, "handoff")
                        break

    def _on_acked_write(self, write, stats: FaultedRunStats) -> None:
        """Hook: a write was acknowledged at its concern (chaos ledger)."""

    # -- phases ---------------------------------------------------------------

    def load(self) -> None:
        """Insert records 0 .. record_count-1 (no faults fire during load)."""
        for i in range(self.record_count):
            self.cluster.insert(make_key(i), make_record(self._data_rng))
        # Load-phase writes don't owe the run phase their ack bookkeeping.
        consume_ack = getattr(self.cluster, "consume_ack_delay", None)
        if consume_ack is not None:
            consume_ack()
        take_write = getattr(self.cluster, "take_last_write", None)
        if take_write is not None:
            while take_write() is not None:
                pass
        consume_io = getattr(self.cluster, "consume_io_wait", None)
        if consume_io is not None:
            consume_io()

    def run(self) -> FaultedRunStats:
        stats = FaultedRunStats()
        for op_index in range(self.operations):
            self._tick_cluster()
            fired = self._fire_due_faults(op_index, stats)
            op_class = self.workload.pick_operation(self._op_rng)
            stats.attempted += 1
            if self._budget is not None:
                self._budget.note_op()
            self._run_op(op_class, stats, pending_spans=fired)
        stats.duration = self.now
        if self._breakers is not None:
            stats.breakers = self._breakers.to_dict()
        if self.metrics:
            self.metrics.gauge("ycsb.availability").set(stats.availability)
        if self.live:
            # Each fired fault becomes an event interval: from its fire
            # time through the replica-set downtime window it opened (kill
            # -> election completes), so a burn-rate alert detected during
            # the failover attributes to the kill itself.  Faults that
            # caused no downtime (lag spikes, heals) stay instant markers.
            downtimes = []
            for shard in getattr(self.cluster, "shards", []):
                for win_start, win_end in getattr(shard, "downtime", ()):
                    downtimes.append((shard.name, win_start,
                                      min(win_end, self.now)))
            for spec, fired_at in self.fault_log:
                end = fired_at
                for _name, win_start, win_end in downtimes:
                    if win_start - 1e-9 <= fired_at <= win_end + 1e-9:
                        end = max(end, win_end)
                        break
                self.live.note_event(spec, fired_at, end)
            self.live.finish(self.now)
        if self.prof is not None:
            self.prof.note_ops(stats.succeeded)
            self.prof.note_virtual_time(self.now)
        return stats

"""Chaos schedules and the acknowledged-write safety ledger.

PR 3's fault plans are hand-written scripts; this module composes them into
*seeded random* chaos — kill/restart, partition/heal, and replication-lag
schedules drawn deterministically from a seed — and closes the loop with a
Jepsen-style audit: every write the cluster *acknowledged* goes into a
:class:`WriteLedger`, and after the run finishes, everything is restarted,
healed, and settled, then the ledger is checked against what the cluster
actually still holds.

The safety invariant (the tentpole's contract):

* no write acknowledged at ``journaled``/``replicated`` concern (or on a
  mirrored SQL Server) is ever lost, across any kill/restart/elect cycle;
* writes acknowledged at ``safe`` may be lost, but only those acknowledged
  within one journal flush window (100 ms) of a kill or partition;
* ``unacked`` writes carry no promise and are reported informationally.

Everything is deterministic: the same seed and :class:`ChaosConfig` produce
the same :class:`~repro.faults.plan.FaultPlan`, the same op stream, and a
byte-identical audit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.common.rng import SeedStream
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.runner import FaultedRunStats, FaultedYcsbRun
from repro.replication.writeconcern import WriteConcern

#: Chaos events are placed in this fraction of the op stream, leaving the
#: head for warm-up and the tail for in-run recovery to be observable.
CHAOS_WINDOW = (0.15, 0.75)
#: Restart/heal follows its kill/partition after this fraction of the ops.
RECOVERY_GAP = 0.15
#: A lag spike lasts this long on the logical clock (seconds).
LAG_SPIKE_DURATION = 0.2


@dataclass(frozen=True)
class ChaosConfig:
    """How much chaos to schedule (all of it seeded, none of it wall-clock)."""

    kills: int = 2
    partitions: int = 1
    lag_spikes: int = 1

    def __post_init__(self):
        if min(self.kills, self.partitions, self.lag_spikes) < 0:
            raise ConfigurationError("chaos event counts must be >= 0")
        if self.kills + self.partitions + self.lag_spikes == 0:
            raise ConfigurationError("chaos config schedules no events")

    def spec_string(self) -> str:
        return (
            f"kills={self.kills},partitions={self.partitions},"
            f"lag-spikes={self.lag_spikes}"
        )

    @classmethod
    def parse(cls, text: str) -> "ChaosConfig":
        """Parse ``kills=2,partitions=1,lag-spikes=1`` (any subset)."""
        kwargs: dict = {}
        names = {"kills": "kills", "partitions": "partitions",
                 "lag-spikes": "lag_spikes", "lag_spikes": "lag_spikes"}
        for chunk in text.strip().lower().split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            key, sep, value = chunk.partition("=")
            if not sep or key.strip() not in names:
                raise ConfigurationError(
                    f"bad chaos option {chunk!r}; expected "
                    "kills=N,partitions=N,lag-spikes=N"
                )
            try:
                kwargs[names[key.strip()]] = int(value)
            except ValueError:
                raise ConfigurationError(
                    f"bad chaos value {chunk!r}"
                ) from None
        if not kwargs:
            raise ConfigurationError("empty chaos config")
        return cls(**kwargs)


def chaos_plan(
    config: ChaosConfig,
    operations: int,
    shard_count: int,
    replicas: int,
    seed: int,
) -> FaultPlan:
    """Draw a deterministic fault schedule from the chaos seed.

    With ``replicas >= 2`` events target replica-set members (the first kill
    always hits member 0 — the initial primary — so every schedule exercises
    at least one election); with bare shards they fall back to the PR 3
    shard-level kill/restart pair.  Partition and lag events need members,
    so they degrade to kills/no-ops respectively on bare clusters.
    """
    if operations < 40:
        raise ConfigurationError("chaos needs at least 40 operations")
    rng = SeedStream(seed).rng_for("chaos", "schedule")
    lo = max(2, int(CHAOS_WINDOW[0] * operations))
    hi = max(lo + 1, int(CHAOS_WINDOW[1] * operations))
    gap = max(1, int(RECOVERY_GAP * operations))
    replicated = replicas >= 2
    specs: list[FaultSpec] = []
    seen: set[str] = set()

    def place(spec: FaultSpec) -> None:
        if spec.spec_string() not in seen:
            seen.add(spec.spec_string())
            specs.append(spec)

    for i in range(config.kills):
        at = rng.random_int(lo, hi)
        shard = rng.random_int(0, shard_count - 1)
        back = min(at + gap, operations - 2)
        if replicated:
            member = 0 if i == 0 else rng.random_int(0, replicas - 1)
            place(FaultSpec("kill-member", f"{shard}.{member}", at))
            place(FaultSpec("restart-member", f"{shard}.{member}", back))
        else:
            place(FaultSpec("kill-shard", str(shard), at))
            place(FaultSpec("restart-shard", str(shard), back))
    for _ in range(config.partitions):
        at = rng.random_int(lo, hi)
        shard = rng.random_int(0, shard_count - 1)
        if replicated:
            member = rng.random_int(0, replicas - 1)
            back = min(at + gap, operations - 2)
            place(FaultSpec("partition-member", f"{shard}.{member}", at))
            place(FaultSpec("heal-member", f"{shard}.{member}", back))
        else:
            back = min(at + gap, operations - 2)
            place(FaultSpec("kill-shard", str(shard), at))
            place(FaultSpec("restart-shard", str(shard), back))
    if replicated:
        for _ in range(config.lag_spikes):
            at = rng.random_int(lo, hi)
            shard = rng.random_int(0, shard_count - 1)
            member = rng.random_int(0, replicas - 1)
            factor = round(rng.uniform(2.0, 6.0), 3)
            place(FaultSpec(
                "lag-spike", f"{shard}.{member}", at,
                duration=LAG_SPIKE_DURATION, magnitude=factor,
            ))
    specs.sort(key=lambda s: (s.at, s.kind, s.target))
    if not specs:
        raise ConfigurationError(
            "chaos config produced no events for this topology"
        )
    return FaultPlan(faults=tuple(specs), seed=seed)


@dataclass
class LostWrite:
    """One acknowledged write the final audit could not find."""

    key: str
    fieldname: str | None
    concern: str
    ack_time: float
    allowed: bool  # within the concern's documented loss window
    migrated: bool = False  # the key's chunk/arc changed shards mid-run


@dataclass
class AuditReport:
    """The ledger verdict after recovery and settling."""

    acked: dict = field(default_factory=dict)       # concern -> count
    lost: list = field(default_factory=list)        # LostWrite, all of them
    checked: int = 0
    migrations: int = 0   # chunk/arc handoffs the ledger knew about
    migrated_checked: int = 0  # ledgered writes whose key changed shards

    @property
    def lost_allowed(self) -> int:
        return sum(1 for w in self.lost if w.allowed)

    @property
    def violations(self) -> list:
        return [w for w in self.lost if not w.allowed]

    @property
    def invariant_ok(self) -> bool:
        return not self.violations


class WriteLedger:
    """Every acknowledged write, keyed so the audit can find its survivor.

    Later acknowledged writes to the same key/field supersede earlier ones
    (only the latest acknowledged value is owed to the client), so the
    ledger keeps one record per key for inserts and one per (key, field)
    for updates.
    """

    #: Concerns that promise nothing (losses are informational only).
    _NO_PROMISE = ("unacked",)
    #: Concerns whose losses are allowed inside the journal flush window.
    _WINDOWED = ("safe",)

    def __init__(self):
        self.inserts: dict = {}   # key -> record
        self.updates: dict = {}   # (key, fieldname) -> record
        self.acked_counts: dict = {}
        self._migration_covers: list = []  # covers(key) of committed moves
        self.migrations = 0

    def record(self, write) -> None:
        """``write`` is a :class:`repro.replication.replicaset.LastWrite`."""
        self.acked_counts[write.concern] = (
            self.acked_counts.get(write.concern, 0) + 1
        )
        if write.op == "insert":
            self.inserts[write.key] = write
        elif write.op == "update":
            self.updates[(write.key, write.fieldname)] = write

    def note_migration(self, covers) -> None:
        """A chunk/arc handoff committed; ``covers(key)`` tests membership.

        The audit uses this to mark each checked (and each lost) write as
        migrated or not — "no write acked at its concern is lost
        mid-migration" is only falsifiable if the audit knows which writes
        actually rode a migration.
        """
        self.migrations += 1
        self._migration_covers.append(covers)

    def _migrated(self, key: str) -> bool:
        return any(covers(key) for covers in self._migration_covers)

    def _loss_allowed(self, write, loss_events: list[float]) -> bool:
        if write.concern in self._NO_PROMISE:
            return True
        if write.concern not in self._WINDOWED:
            return False  # journaled/replicated/mirrored promise zero loss
        window = WriteConcern.parse(write.concern).loss_window
        return any(
            -1e-9 <= event - write.ack_time <= window + 1e-9
            for event in loss_events
        )

    def audit(self, read_fn, loss_events: list[float]) -> AuditReport:
        """Check every ledgered write against the recovered cluster.

        ``read_fn(key)`` returns the document (without its key field) or
        ``None``; ``loss_events`` are the logical times of kills and
        partitions, used to decide whether a ``safe``-mode loss falls in
        the documented 100 ms window.
        """
        report = AuditReport(acked=dict(self.acked_counts),
                             migrations=self.migrations)
        for key, write in sorted(self.inserts.items()):
            report.checked += 1
            migrated = self._migrated(key)
            if migrated:
                report.migrated_checked += 1
            if read_fn(key) is None:
                report.lost.append(LostWrite(
                    key=key, fieldname=None, concern=write.concern,
                    ack_time=write.ack_time,
                    allowed=self._loss_allowed(write, loss_events),
                    migrated=migrated,
                ))
        for (key, fieldname), write in sorted(self.updates.items()):
            report.checked += 1
            migrated = self._migrated(key)
            if migrated:
                report.migrated_checked += 1
            document = read_fn(key)
            value = document.get(fieldname) if document else None
            if value != write.value:
                report.lost.append(LostWrite(
                    key=key, fieldname=fieldname, concern=write.concern,
                    ack_time=write.ack_time,
                    allowed=self._loss_allowed(write, loss_events),
                    migrated=migrated,
                ))
        return report


class ChaosYcsbRun(FaultedYcsbRun):
    """A faulted YCSB run that maintains the acknowledged-write ledger and
    audits the safety invariant after recovery."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.ledger = WriteLedger()

    def _on_acked_write(self, write, stats: FaultedRunStats) -> None:
        self.ledger.record(write)

    # -- recovery + audit ------------------------------------------------------

    def _loss_event_times(self) -> list[float]:
        return [
            at for spec, at in self.fault_log
            if spec.startswith(("kill-", "partition-"))
        ]

    def recover_all(self) -> None:
        """Operator cleanup: heal partitions, restart everything, settle."""
        shards = getattr(self.cluster, "shards", [])
        for shard in shards:
            if hasattr(shard, "heal_member"):
                for index, member in enumerate(shard.members):
                    if member.partitioned:
                        shard.heal_member(index)
            if hasattr(shard, "restart"):
                shard.restart()
        if getattr(self.cluster, "replication", None) is not None:
            for shard in shards:
                shard.settle(self.now + 1.0)
            self.now = max(self.now, max(s.now for s in shards))

    def audit(self) -> AuditReport:
        """Recover the cluster, then check the ledger against it."""
        self.recover_all()
        return self.ledger.audit(self.cluster.read, self._loss_event_times())

"""Degraded-mode reports: healthy vs. faulted runs, side by side.

The paper's fault-tolerance discussion is qualitative (Section 2: MapReduce
restarts a task, a parallel DBMS restarts the query; Section 3.4.1: MongoDB
ran without replica sets).  This module makes it quantitative:

* :func:`dss_fault_report` injects one node fault into a TPC-H query and
  compares Hive's task-level recovery against PDW's whole-query restart —
  the headline number is the *amplification ratio* (PDW's delay over
  Hive's);
* :func:`oltp_fault_report` runs a YCSB workload while shards die (the
  functional clusters) or stations degrade (the event simulator) and
  reports availability, error/retry counts, backoff cost, and p95
  inflation.

Reports serialize to deterministic JSON (sorted keys, fixed separators, no
wall-clock anything): the same seed and plan always produce byte-identical
output, which the determinism test suite locks in.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.common.errors import FaultPlanError
from repro.faults.plan import MEMBER_KINDS, FaultPlan
from repro.faults.retry import RetryPolicy
from repro.faults.runner import FaultedYcsbRun
from repro.ycsb.workloads import WORKLOADS, make_key

SCHEMA = "repro-faults/1"


def _round(value: float, digits: int = 6) -> float:
    """Stable rounding so report JSON is robust to float formatting noise."""
    return round(float(value), digits)


@dataclass
class FaultReport:
    """One healthy-vs-faulted comparison, JSON-serializable."""

    kind: str  # "dss" | "oltp"
    scenario: dict = field(default_factory=dict)
    healthy: dict = field(default_factory=dict)
    faulted: dict = field(default_factory=dict)
    comparison: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "kind": self.kind,
            "scenario": self.scenario,
            "healthy": self.healthy,
            "faulted": self.faulted,
            "comparison": self.comparison,
        }


def dumps_fault_report(report: FaultReport) -> str:
    """Deterministic JSON: sorted keys, fixed separators, trailing newline."""
    return json.dumps(report.to_dict(), sort_keys=True,
                      separators=(",", ":")) + "\n"


def write_fault_report(report: FaultReport, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_fault_report(report))


def render_fault_report(report: FaultReport) -> str:
    """Human-readable summary block for the CLI."""
    lines = [f"fault report [{report.kind}]  plan: {report.scenario.get('plan', '')}"]
    for section in ("healthy", "faulted"):
        data = getattr(report, section)
        pairs = ", ".join(
            f"{key}={value}" for key, value in sorted(data.items())
            if not isinstance(value, (dict, list))
        )
        lines.append(f"  {section:8s} {pairs}")
    for key, value in sorted(report.comparison.items()):
        lines.append(f"  {key}: {value}")
    return "\n".join(lines)


# -- DSS: Hive task recovery vs. PDW query restart -----------------------------


def dss_fault_report(study, number: int, scale_factor: float,
                     plan: FaultPlan, tracer=None, metrics=None,
                     sampler=None) -> FaultReport:
    """Inject one node fault into TPC-H query ``number`` on both DSS engines.

    ``study`` is a :class:`repro.core.dss.DssStudy` (anything with ``.hive``
    and ``.pdw`` engines works).  The plan must contain exactly one ``crash``
    or ``straggler`` fault; both engines receive the *same* fault, so the
    comparison isolates the recovery semantics.
    """
    node_faults = plan.of_kind("crash", "straggler")
    if len(node_faults) != 1:
        raise FaultPlanError(
            "DSS fault report needs exactly one crash or straggler fault "
            f"(got {len(node_faults)})"
        )
    fault = node_faults[0]

    hive = study.hive.run_query_faulted(
        number, scale_factor, fault,
        tracer=tracer, metrics=metrics, sampler=sampler,
    )
    pdw = study.pdw.run_query_faulted(
        number, scale_factor, fault,
        tracer=tracer, metrics=metrics, sampler=sampler,
    )

    hive_delay = hive.delay
    pdw_delay = pdw.delay
    report = FaultReport(
        kind="dss",
        scenario={
            "plan": plan.spec_string(),
            "seed": plan.seed,
            "query": number,
            "scale_factor": scale_factor,
            "fault": fault.to_dict(),
        },
        healthy={
            "hive_seconds": _round(hive.healthy.total_time),
            "pdw_seconds": _round(pdw.healthy.total_time),
        },
        faulted={
            "hive_seconds": _round(hive.faulted_total),
            "pdw_seconds": _round(pdw.faulted_total),
            "hive_killed_attempts": hive.killed_attempts,
            "hive_reexecuted_tasks": hive.reexecuted_tasks,
            "hive_speculative_copies": hive.speculative_copies,
            "hive_affected_jobs": list(hive.affected_jobs),
            "pdw_query_restarts": pdw.restarts,
        },
        comparison={
            "hive_delay_seconds": _round(hive_delay),
            "pdw_delay_seconds": _round(pdw_delay),
            # Re-execution cost: slot-seconds Hive burned on attempts whose
            # output was discarded.  Restart cost: seconds of PDW progress
            # thrown away by the abort.
            "hive_reexecution_cost_seconds": _round(hive.wasted_task_seconds),
            "pdw_query_restart_cost_seconds": _round(pdw.wasted_seconds),
            "amplification_ratio": _round(
                pdw_delay / hive_delay if hive_delay > 0 else float("inf"), 3
            ),
        },
    )
    return report


# -- OLTP: shard kills (functional) and station faults (event sim) -------------

_CLUSTERS = ("mongo-as", "mongo-cs", "sql-cs")


def _build_cluster(system: str, shard_count: int, record_count: int,
                   replication=None, seed: int = 0):
    """A small functional cluster with keys spread evenly across shards.

    ``replication`` (a :class:`repro.replication.config.ReplicationConfig`)
    turns every Mongo shard into a replica set and every SQL Server node
    into a mirrored pair; ``None`` keeps the paper's bare deployments.
    """
    if system == "mongo-as":
        from repro.docstore.cluster import MongoAsCluster

        cluster = MongoAsCluster(shard_count=shard_count,
                                 max_chunk_docs=10 * record_count,
                                 mongos_count=2,
                                 replication=replication, seed=seed)
        # Pre-split so each shard owns ~1/shard_count of the key range (the
        # paper's load strategy, §3.4.2); chunks round-robin across shards.
        chunks = 8 * shard_count
        boundaries = [
            make_key(i * record_count // chunks) for i in range(1, chunks)
        ]
        cluster.pre_split(boundaries)
        return cluster
    if system == "mongo-cs":
        from repro.docstore.cluster import MongoCsCluster

        return MongoCsCluster(shard_count=shard_count,
                              replication=replication, seed=seed)
    if system == "sql-cs":
        from repro.sqlstore.cluster import SqlCsCluster

        return SqlCsCluster(shard_count=shard_count,
                            mirrored=replication is not None)
    raise FaultPlanError(
        f"unknown OLTP system {system!r}; expected one of {', '.join(_CLUSTERS)}"
    )


def _stats_dict(stats) -> dict:
    out = {
        "attempted": stats.attempted,
        "succeeded": stats.succeeded,
        "availability": _round(stats.availability),
        "errors": {cls: count for cls, count in sorted(stats.errors.items())},
        "retries": stats.retries,
        "backoff_seconds": _round(stats.backoff_seconds),
        "duration_seconds": _round(stats.duration),
        "p95_ms": {
            cls: _round(histogram.percentile(95) * 1000.0, 3)
            for cls, histogram in sorted(stats.histograms.items())
        },
        "mean_ms": {
            cls: _round(histogram.mean * 1000.0, 3)
            for cls, histogram in sorted(stats.histograms.items())
        },
    }
    return out


def oltp_fault_report(plan: FaultPlan, workload: str = "A",
                      system: str = "mongo-as", shard_count: int = 8,
                      record_count: int = 2000, operations: int = 4000,
                      policy: RetryPolicy | None = None,
                      target: float = 40_000.0, duration: float = 120.0,
                      study=None, replication=None,
                      tracer=None, metrics=None, sampler=None) -> FaultReport:
    """YCSB under faults: availability and latency degradation.

    Two scenario families, chosen by the plan's contents:

    * **shard faults** (``kill-shard`` / ``restart-shard``) run the
      *functional* path: a real (scaled-down) cluster — Mongo-AS by default
      — driven by :class:`~repro.faults.runner.FaultedYcsbRun` with
      retry/backoff.  Killing 1 of ``shard_count`` shards under workload A
      yields ~``1/shard_count`` unavailability, because the paper's
      deployment had no replica sets.
    * **station faults** (``disk-stall`` / ``net-spike`` / ``op-error`` /
      ``crash``) re-measure one figure point on the event simulator
      (``study`` defaults to a fresh :class:`repro.core.oltp.OltpStudy`)
      with the fault windows applied to the named stations.
    """
    if workload not in WORKLOADS:
        raise FaultPlanError(
            f"unknown workload {workload!r}; expected one of "
            f"{', '.join(sorted(WORKLOADS))}"
        )
    shard_faults = plan.shard_faults + plan.member_faults
    station_faults = plan.station_faults
    if shard_faults and station_faults:
        raise FaultPlanError(
            "mix of shard-level and station-level faults; run them as "
            "separate plans"
        )
    if not shard_faults and not station_faults:
        raise FaultPlanError("OLTP fault report needs at least one fault")

    if shard_faults:
        if plan.member_faults and replication is None:
            raise FaultPlanError(
                "member-level faults need --replication (the paper's bare "
                "deployments have no replica-set members to target)"
            )
        for fault in shard_faults:
            if fault.kind in MEMBER_KINDS:
                index, _member = fault.member_target()
            else:
                index = fault.target_index()
            if not 0 <= index < shard_count:
                raise FaultPlanError(
                    f"fault targets shard {index}, cluster has {shard_count}"
                )
        policy = policy or RetryPolicy()
        spec = WORKLOADS[workload]

        def run(with_plan: FaultPlan) -> object:
            cluster = _build_cluster(system, shard_count, record_count,
                                     replication=replication,
                                     seed=plan.seed or 7)
            runner = FaultedYcsbRun(
                cluster, spec, record_count=record_count,
                operations=operations, plan=with_plan, policy=policy,
                seed=plan.seed or 7,
                tracer=tracer if with_plan else None,
                metrics=metrics if with_plan else None,
            )
            runner.load()
            return runner.run()

        healthy = run(FaultPlan())
        faulted = run(plan)
        healthy_d = _stats_dict(healthy)
        faulted_d = _stats_dict(faulted)
        comparison = {
            "availability_drop": _round(
                healthy.availability - faulted.availability
            ),
            "error_rate": _round(faulted.error_count / faulted.attempted),
            "retried_ops": faulted.retries,
            "backoff_seconds": _round(faulted.backoff_seconds),
            "p95_inflation": {
                cls: _round(
                    faulted_d["p95_ms"][cls] / healthy_d["p95_ms"][cls], 3
                )
                for cls in sorted(faulted_d["p95_ms"])
                if healthy_d["p95_ms"].get(cls, 0.0) > 0.0
            },
        }
        scenario = {
            "plan": plan.spec_string(),
            "seed": plan.seed,
            "mode": "functional",
            "system": system,
            "workload": workload,
            "shard_count": shard_count,
            "record_count": record_count,
            "operations": operations,
            "replication": (replication.spec_string()
                            if replication is not None else "off"),
            "retry_policy": {
                "max_attempts": policy.max_attempts,
                "base_backoff": policy.base_backoff,
                "backoff_cap": policy.backoff_cap,
                "op_timeout": policy.op_timeout,
            },
        }
        return FaultReport(kind="oltp", scenario=scenario,
                           healthy=healthy_d, faulted=faulted_d,
                           comparison=comparison)

    # Station faults: event-simulation path.
    if study is None:
        from repro.core.oltp import OltpStudy

        study = OltpStudy()
    seed = plan.seed or 1234
    _point, healthy_sim = study.event_sim_point(
        system, workload, target, duration=duration, seed=seed,
    )
    _point, faulted_sim = study.event_sim_point(
        system, workload, target, duration=duration, seed=seed,
        tracer=tracer, metrics=metrics, sampler=sampler,
        faults=station_faults, retry_policy=policy,
    )

    def sim_dict(sim) -> dict:
        return {
            "throughput": _round(sim.throughput, 3),
            "completed_ops": sim.completed_ops,
            "availability": _round(sim.availability),
            "errors": {c: n for c, n in sorted(sim.errors.items())},
            "retried_ops": sim.retried_ops,
            "backoff_seconds": _round(sim.backoff_seconds),
            "p95_ms": {
                c: _round(v * 1000.0, 3)
                for c, v in sorted(sim.latency_p95.items())
            },
        }

    healthy_d = sim_dict(healthy_sim)
    faulted_d = sim_dict(faulted_sim)
    comparison = {
        "throughput_ratio": _round(
            faulted_sim.throughput / healthy_sim.throughput
            if healthy_sim.throughput else 0.0, 3
        ),
        "availability_drop": _round(
            healthy_sim.availability - faulted_sim.availability
        ),
        "retried_ops": faulted_sim.retried_ops,
        "backoff_seconds": _round(faulted_sim.backoff_seconds),
        "p95_inflation": {
            cls: _round(
                faulted_d["p95_ms"][cls] / healthy_d["p95_ms"][cls], 3
            )
            for cls in sorted(faulted_d["p95_ms"])
            if healthy_d["p95_ms"].get(cls, 0.0) > 0.0
        },
    }
    scenario = {
        "plan": plan.spec_string(),
        "seed": plan.seed,
        "mode": "event-sim",
        "system": system,
        "workload": workload,
        "target_ops_per_s": target,
        "duration_seconds": duration,
    }
    return FaultReport(kind="oltp", scenario=scenario,
                       healthy=healthy_d, faulted=faulted_d,
                       comparison=comparison)

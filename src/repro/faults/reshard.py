"""The ``repro-reshard/1`` report: elastic resharding under live traffic.

One row per system: a seeded YCSB run during which the cluster's topology
*changes* — a ``scale:shards=N`` or ``drain:shard=K`` event fires mid-stream
and a throttled :class:`~repro.docstore.reshard.MigrationEngine` moves the
data while the workload keeps running.  The row records the three-phase
story the paper's static deployments could never tell:

* **before** — steady state on the old topology;
* **during** — migration copy traffic shares the disks with foreground ops
  (the throughput dip and p99 spike), commits briefly freeze their key
  range (``ChunkMoving`` retries), routing caches go stale
  (``stale_routes``);
* **after** — steady state on the new topology (the capacity gain that
  justified the dip).

Composes with chaos (:mod:`repro.faults.chaos`): kills can land *during*
migration — including on a shard mid-commit — and the acknowledged-write
ledger is audited after recovery with per-key migration attribution, so the
row's ``invariant_ok`` certifies "no write acked at its concern was lost
mid-migration".

Range (Mongo-AS chunks) and hash (Mongo-CS / SQL-CS consistent-hash arcs)
elasticity run the same scenario, so their time-to-rebalance and dip depth
are directly comparable.  Deterministic JSON like the sibling reports.
"""

from __future__ import annotations

import json

from repro.common.errors import ConfigurationError, FaultPlanError
from repro.faults.availability import CHAOS_RETRY_POLICY
from repro.faults.chaos import ChaosConfig, ChaosYcsbRun, chaos_plan
from repro.faults.plan import TOPOLOGY_KINDS, FaultPlan
from repro.faults.report import _round
from repro.faults.retry import RetryPolicy
from repro.obs.live import LiveTelemetry
from repro.replication.config import ReplicationConfig
from repro.replication.writeconcern import WriteConcern
from repro.ycsb.workloads import WORKLOADS, make_key

SCHEMA = "repro-reshard/1"

#: Systems a reshard report covers by default (range vs hash elasticity).
RESHARD_SYSTEMS = ("mongo-as", "mongo-cs", "sql-cs")

#: Telemetry slice width for phase metrics.  Window queries merge whole
#: slices, so the before/during/after boundaries are only as sharp as the
#: slice — the functional runs last a couple of logical seconds, hence
#: much finer than the dashboard default (1 s).
RESHARD_SLICE_S = 0.02

_ROW_REQUIRED = {
    "system": str, "sharding": str, "workload": str, "operations": int,
    "shards_before": int, "shards_after": int, "migrations": int,
    "migrated_docs": int, "aborted_commits": int,
    "chunk_moving_retries": int, "stale_routes": int,
    "time_to_rebalance_s": float,
    "throughput_before": float, "throughput_during": float,
    "throughput_after": float, "throughput_dip_pct": float,
    "p99_before_ms": float, "p99_during_ms": float, "p99_after_ms": float,
    "p99_spike": float, "steady_state_gain_pct": float,
    "attempted": int, "succeeded": int, "availability": float,
    "errors": int, "retries": int, "acked_writes": int,
    "checked_writes": int, "migrated_writes_checked": int,
    "lost_writes": int, "violations": int, "invariant_ok": bool,
    "plan": str,
}


class ReshardYcsbRun(ChaosYcsbRun):
    """A chaos run whose fault plan also reshapes the cluster topology.

    Beyond the inherited ledger, it owns the migration engine's end-of-run
    semantics: after the op stream (and operator recovery), outstanding
    migrations are driven to completion on the virtual clock — aborted
    commits retry until they land — and every committed handoff is noted in
    the ledger so the audit can attribute losses to migrations.
    """

    def __init__(self, *args, engine=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.engine = engine

    def topology_fire_time(self) -> float | None:
        """Logical time the first scale/drain event fired, if any."""
        for spec, at in self.fault_log:
            if spec.split(":", 1)[0] in TOPOLOGY_KINDS:
                return at
        return None

    def finish_migrations(self) -> None:
        """Drive queued/active migrations to commit and run stray cleanup."""
        if self.engine is None:
            return
        if not self.engine.idle:
            self.now = self.engine.run_to_completion(self.now)
        self._tick_cluster()  # post-flip source cleanup (deferred deletes)
        for migration in self.engine.completed:
            self.ledger.note_migration(migration.covers)

    def audit(self):
        """Recover, finish the rebalance, then check the ledger."""
        self.recover_all()
        self.finish_migrations()
        return self.ledger.audit(self.cluster.read, self._loss_event_times())


def _build_elastic_cluster(system: str, shard_count: int, record_count: int,
                           replication, seed: int, tracer=None):
    """The chaos-cluster builders, with live resharding switched on."""
    if system == "mongo-as":
        from repro.docstore.cluster import MongoAsCluster

        cluster = MongoAsCluster(
            shard_count=shard_count, max_chunk_docs=10 * record_count,
            mongos_count=2, replication=replication, seed=seed,
            tracer=tracer,
        )
        chunks = 8 * shard_count
        cluster.pre_split([
            make_key(i * record_count // chunks) for i in range(1, chunks)
        ])
        return cluster
    if system == "mongo-cs":
        from repro.docstore.cluster import MongoCsCluster

        return MongoCsCluster(shard_count=shard_count,
                              replication=replication, seed=seed,
                              tracer=tracer, elastic=True)
    if system == "sql-cs":
        from repro.sqlstore.cluster import SqlCsCluster

        return SqlCsCluster(shard_count=shard_count,
                            mirrored=replication is not None,
                            tracer=tracer, elastic=True)
    raise FaultPlanError(
        f"unknown OLTP system {system!r}; expected one of "
        f"{', '.join(RESHARD_SYSTEMS)}"
    )


def _reshard_plan(reshard: str, chaos: ChaosConfig | None, operations: int,
                  shard_count: int, replicas: int, seed: int) -> FaultPlan:
    """The topology events, optionally interleaved with seeded chaos."""
    topology = FaultPlan.parse(reshard, seed=seed)
    if not topology.topology_faults:
        raise FaultPlanError(
            f"reshard plan {reshard!r} contains no scale/drain event"
        )
    specs = list(topology.faults)
    if chaos is not None:
        specs.extend(chaos_plan(chaos, operations, shard_count,
                                replicas, seed).faults)
    specs.sort(key=lambda s: (s.at, s.kind, s.target))
    return FaultPlan(faults=tuple(specs), seed=seed)


def _phase_stats(live: LiveTelemetry, start: float, end: float) -> tuple:
    """(throughput ops/s, p99 ms) over one phase window."""
    digest = live.window(start, end)
    width = max(end - start, 1e-9)
    return digest.count / width, digest.percentile(99) * 1000.0


def reshard_row(
    system: str,
    reshard: str,
    *,
    throttle: float = 0.5,
    offered_load: float = 0.7,
    chaos: ChaosConfig | None = None,
    concern: WriteConcern | None = None,
    workload: str = "A",
    shard_count: int = 4,
    record_count: int = 300,
    operations: int = 600,
    replicas: int = 3,
    seed: int = 11,
    policy: RetryPolicy | None = None,
    replication: ReplicationConfig | None = None,
    tracer=None,
    live=None,
) -> dict:
    """Run one seeded elastic-resharding scenario into a report row.

    ``reshard`` is a fault-plan string whose scale/drain events reshape the
    topology (e.g. ``"scale:shards=6@0.3"``).  ``chaos`` layers seeded
    kills/partitions on top; ``concern``/``replication`` enable replica
    sets (Mongo) or mirroring (SQL) so the write ledger has durability
    promises to audit.
    """
    if workload not in WORKLOADS:
        raise FaultPlanError(
            f"unknown workload {workload!r}; expected one of "
            f"{', '.join(sorted(WORKLOADS))}"
        )
    policy = policy or CHAOS_RETRY_POLICY
    if replication is not None:
        replicas = replication.replicas
    if system == "sql-cs":
        if concern is not None or replication is not None:
            replication = replication or ReplicationConfig(
                replicas=max(replicas, 2))
    elif concern is not None:
        base = replication or ReplicationConfig(replicas=replicas)
        replication = base.with_concern(concern)
    # Mirrored SQL pairs fail over on shard-level kills; member-level chaos
    # only exists for Mongo replica sets.
    chaos_replicas = (replicas if system != "sql-cs"
                      and replication is not None else 0)
    plan = _reshard_plan(reshard, chaos, operations, shard_count,
                         chaos_replicas, seed)
    cluster = _build_elastic_cluster(
        system, shard_count, record_count, replication, seed, tracer=tracer
    )
    engine = cluster.attach_reshard(throttle=throttle,
                                    offered_load=offered_load)
    live = live or LiveTelemetry(slice_s=RESHARD_SLICE_S)
    runner = ReshardYcsbRun(
        cluster, WORKLOADS[workload], record_count=record_count,
        operations=operations, plan=plan, policy=policy, seed=seed,
        tracer=tracer, live=live, engine=engine,
    )
    runner.load()
    stats = runner.run()
    stream_end = runner.now
    audit = runner.audit()

    t0 = runner.topology_fire_time()
    if t0 is None:
        raise FaultPlanError(
            f"reshard plan {reshard!r} never fired within {operations} ops"
        )
    committed_in_stream = (engine.completed_at is not None
                           and engine.completed_at < stream_end)
    t1 = engine.completed_at if committed_in_stream else stream_end
    tput_before, p99_before = _phase_stats(live, 0.0, t0)
    tput_during, p99_during = _phase_stats(live, t0, t1)
    tput_after, p99_after = _phase_stats(live, t1, stream_end)
    dip_pct = (100.0 * (tput_before - tput_during) / tput_before
               if tput_before > 0 else 0.0)
    spike = p99_during / p99_before if p99_before > 0 else 0.0
    gain_pct = (100.0 * (tput_after - tput_before) / tput_before
                if tput_before > 0 and tput_after > 0 else 0.0)
    shards_after = len(cluster.shards) - len(cluster.retired_shards)
    return {
        "system": system,
        "sharding": "range" if system == "mongo-as" else "hash",
        "workload": workload,
        "operations": operations,
        "shards_before": shard_count,
        "shards_after": shards_after,
        "migrations": engine.migrations,
        "migrated_docs": engine.moved_docs,
        "aborted_commits": engine.aborted_commits,
        "chunk_moving_retries": stats.chunk_moving_retries,
        "stale_routes": int(getattr(cluster, "stale_routes", 0)),
        "time_to_rebalance_s": _round(engine.time_to_rebalance or 0.0),
        "throughput_before": _round(tput_before, 3),
        "throughput_during": _round(tput_during, 3),
        "throughput_after": _round(tput_after, 3),
        "throughput_dip_pct": _round(dip_pct, 3),
        "p99_before_ms": _round(p99_before, 6),
        "p99_during_ms": _round(p99_during, 6),
        "p99_after_ms": _round(p99_after, 6),
        "p99_spike": _round(spike, 6),
        "steady_state_gain_pct": _round(gain_pct, 3),
        "attempted": stats.attempted,
        "succeeded": stats.succeeded,
        "availability": _round(stats.availability),
        "errors": stats.error_count,
        "retries": stats.retries,
        "acked_writes": sum(audit.acked.values()),
        "checked_writes": audit.checked,
        "migrated_writes_checked": audit.migrated_checked,
        "lost_writes": len(audit.lost),
        "violations": len(audit.violations),
        "invariant_ok": audit.invariant_ok,
        "plan": plan.spec_string(),
    }


def reshard_report(
    systems=None,
    reshard: str = "scale:shards=6@0.3",
    *,
    throttle: float = 0.5,
    offered_load: float = 0.7,
    chaos: ChaosConfig | None = None,
    concern: WriteConcern | None = None,
    workload: str = "A",
    shard_count: int = 4,
    record_count: int = 300,
    operations: int = 600,
    replicas: int = 3,
    seed: int = 11,
    policy: RetryPolicy | None = None,
    replication: ReplicationConfig | None = None,
    tracer=None,
) -> dict:
    """Run the same elastic-resharding scenario across systems."""
    systems = tuple(systems) if systems else RESHARD_SYSTEMS
    rows = [
        reshard_row(
            system, reshard, throttle=throttle, offered_load=offered_load,
            chaos=chaos, concern=concern, workload=workload,
            shard_count=shard_count, record_count=record_count,
            operations=operations, replicas=replicas, seed=seed,
            policy=policy, replication=replication, tracer=tracer,
        )
        for system in systems
    ]
    return {
        "schema": SCHEMA,
        "scenario": {
            "reshard": reshard,
            "throttle": throttle,
            "chaos": chaos.spec_string() if chaos else None,
            "concern": concern.name if concern else None,
            "workload": workload,
            "shard_count": shard_count,
            "record_count": record_count,
            "operations": operations,
            "seed": seed,
        },
        "rows": rows,
        "invariant_ok": all(row["invariant_ok"] for row in rows),
    }


def validate_reshard_report(data: dict) -> None:
    """Schema check; raises :class:`ConfigurationError` on any mismatch."""
    if not isinstance(data, dict):
        raise ConfigurationError("reshard report must be an object")
    if data.get("schema") != SCHEMA:
        raise ConfigurationError(
            f"reshard report schema is {data.get('schema')!r}, "
            f"expected {SCHEMA!r}"
        )
    scenario = data.get("scenario")
    if not isinstance(scenario, dict):
        raise ConfigurationError("reshard report needs a scenario object")
    for field in ("reshard", "throttle", "workload", "operations", "seed"):
        if field not in scenario:
            raise ConfigurationError(f"scenario is missing {field!r}")
    rows = data.get("rows")
    if not isinstance(rows, list) or not rows:
        raise ConfigurationError("reshard report needs a non-empty rows list")
    for index, row in enumerate(rows):
        if not isinstance(row, dict):
            raise ConfigurationError(f"row {index} is not an object")
        for field, kind in _ROW_REQUIRED.items():
            if field not in row:
                raise ConfigurationError(f"row {index} is missing {field!r}")
            value = row[field]
            if kind is float:
                ok = isinstance(value, (int, float)) and not isinstance(value, bool)
            elif kind is int:
                ok = isinstance(value, int) and not isinstance(value, bool)
            else:
                ok = isinstance(value, kind)
            if not ok:
                raise ConfigurationError(
                    f"row {index} field {field!r} has type "
                    f"{type(value).__name__}, expected {kind.__name__}"
                )
        if row["sharding"] not in ("range", "hash"):
            raise ConfigurationError(
                f"row {index} sharding must be range or hash"
            )
        if row["migrations"] < 1:
            raise ConfigurationError(
                f"row {index} reports no migrations — the topology event "
                "never moved data"
            )
        if row["violations"] and row["invariant_ok"]:
            raise ConfigurationError(
                f"row {index} reports violations but claims invariant_ok"
            )
    if "invariant_ok" not in data or not isinstance(data["invariant_ok"], bool):
        raise ConfigurationError("reshard report needs invariant_ok")
    if data["invariant_ok"] != all(r["invariant_ok"] for r in rows):
        raise ConfigurationError(
            "top-level invariant_ok disagrees with the rows"
        )


def dumps_reshard_report(data: dict) -> str:
    """Deterministic JSON: sorted keys, fixed separators, trailing newline."""
    return json.dumps(data, sort_keys=True, separators=(",", ":")) + "\n"


def write_reshard_report(data: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_reshard_report(data))


def render_reshard_report(data: dict) -> str:
    """Human-readable table for the CLI."""
    scenario = data["scenario"]
    chaos = scenario.get("chaos") or "none"
    lines = [
        f"reshard report  plan: {scenario['reshard']}  "
        f"throttle {scenario['throttle']:g}  chaos: {chaos}  "
        f"workload {scenario['workload']}  seed {scenario['seed']}"
    ]
    header = (
        f"  {'system':9s} {'shard':6s} {'N':>5s} {'moves':>5s} "
        f"{'docs':>6s} {'dip%':>6s} {'p99x':>6s} {'gain%':>6s} "
        f"{'t_rebal':>8s} {'bounce':>6s} {'viol':>4s} {'ok':>3s}"
    )
    lines.append(header)
    for row in data["rows"]:
        shards = f"{row['shards_before']}->{row['shards_after']}"
        lines.append(
            f"  {row['system']:9s} {row['sharding']:6s} {shards:>5s} "
            f"{row['migrations']:5d} {row['migrated_docs']:6d} "
            f"{row['throughput_dip_pct']:6.1f} {row['p99_spike']:6.2f} "
            f"{row['steady_state_gain_pct']:6.1f} "
            f"{row['time_to_rebalance_s']:7.3f}s "
            f"{row['chunk_moving_retries']:6d} {row['violations']:4d} "
            f"{'yes' if row['invariant_ok'] else 'NO':>3s}"
        )
    verdict = "holds" if data["invariant_ok"] else "VIOLATED"
    lines.append(f"  write-safety invariant across migration: {verdict}")
    return "\n".join(lines)

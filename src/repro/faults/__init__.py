"""``repro.faults`` — deterministic fault injection and recovery semantics.

The paper's fault-tolerance argument (§2, §5) is architectural: Hadoop
restarts only the failed task while a parallel RDBMS like PDW must restart
the whole query, and the paper's MongoDB deployment ran *without* replica
sets, so a dead mongod means lost availability rather than failover.  This
package makes those mechanisms executable:

* a :class:`FaultPlan` schedules faults (node crash, straggler, disk stall,
  transient op error, network latency spike, shard kill/restart) on the
  simulated clock, parsed from a compact CLI spec string;
* each system responds with its real-world recovery semantics — MapReduce
  re-executes lost tasks and speculates on stragglers
  (:func:`repro.mapreduce.jobs.schedule_tasks_recovering`), PDW aborts and
  restarts the whole query (:meth:`repro.pdw.engine.PdwEngine.run_query_faulted`),
  Mongo-AS mongos retries with capped exponential backoff and surfaces
  degraded availability (:class:`repro.faults.retry.RetryPolicy`,
  :class:`repro.faults.runner.FaultedYcsbRun`);
* a degraded-mode report compares healthy vs. faulted runs (availability,
  p95 inflation, re-execution cost, query-restart cost) with deterministic
  JSON export (:mod:`repro.faults.report`).

Everything here is strictly opt-in: with no :class:`FaultPlan` every
existing figure, report, and benchmark output is byte-identical to the
fault-free code path.
"""

from repro.faults.availability import (
    AVAILABILITY_SYSTEMS,
    availability_report,
    availability_row,
    dumps_availability_report,
    render_availability_report,
    validate_availability_report,
    write_availability_report,
)
from repro.faults.chaos import (
    AuditReport,
    ChaosConfig,
    ChaosYcsbRun,
    LostWrite,
    WriteLedger,
    chaos_plan,
)
from repro.faults.plan import (
    FAULT_KINDS,
    MEMBER_KINDS,
    TOPOLOGY_KINDS,
    FaultPlan,
    FaultSpec,
    StationFaults,
)
from repro.faults.reshard import (
    RESHARD_SYSTEMS,
    ReshardYcsbRun,
    dumps_reshard_report,
    render_reshard_report,
    reshard_report,
    reshard_row,
    validate_reshard_report,
    write_reshard_report,
)
from repro.faults.report import (
    FaultReport,
    dss_fault_report,
    dumps_fault_report,
    oltp_fault_report,
    render_fault_report,
    write_fault_report,
)
from repro.faults.retry import RetryPolicy, backoff_delay
from repro.faults.runner import FaultedRunStats, FaultedYcsbRun

__all__ = [
    "AVAILABILITY_SYSTEMS",
    "AuditReport",
    "ChaosConfig",
    "ChaosYcsbRun",
    "LostWrite",
    "WriteLedger",
    "availability_report",
    "availability_row",
    "chaos_plan",
    "dumps_availability_report",
    "render_availability_report",
    "validate_availability_report",
    "write_availability_report",
    "FAULT_KINDS",
    "MEMBER_KINDS",
    "TOPOLOGY_KINDS",
    "FaultSpec",
    "FaultPlan",
    "StationFaults",
    "RESHARD_SYSTEMS",
    "ReshardYcsbRun",
    "reshard_report",
    "reshard_row",
    "dumps_reshard_report",
    "render_reshard_report",
    "validate_reshard_report",
    "write_reshard_report",
    "RetryPolicy",
    "backoff_delay",
    "FaultedYcsbRun",
    "FaultedRunStats",
    "FaultReport",
    "dss_fault_report",
    "oltp_fault_report",
    "dumps_fault_report",
    "write_fault_report",
    "render_fault_report",
]

"""Client retry/timeout/backoff policy (the YCSB-driver recovery layer).

The paper's deployments had no server-side failover for MongoDB (no replica
sets), so availability under partial failure is decided entirely by the
client: how many times it retries a failed op, how long it backs off, and
when it gives up.  :class:`RetryPolicy` models the standard capped
exponential backoff loop deterministically — no wall clock, no jitter — so
the same fault plan always yields the same retry schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import ConfigurationError


def backoff_delay(attempt: int, base: float, cap: float) -> float:
    """Capped exponential backoff: ``min(cap, base * 2**attempt)``.

    ``attempt`` counts completed failures (0 -> first retry waits ``base``).
    Large attempts short-circuit to ``cap``: ``2.0**1024`` overflows a C
    double, so the doubling stops as soon as it can no longer change the
    answer.
    """
    if base <= 0.0:
        return 0.0
    # base * 2**attempt >= cap  <=>  attempt >= log2(cap / base).
    if cap <= base or attempt >= math.log2(cap / base):
        return cap
    return min(cap, base * (2.0 ** attempt))


@dataclass(frozen=True)
class RetryPolicy:
    """How a client treats a failed operation.

    * ``max_attempts`` — total tries including the first (1 = no retry);
    * ``base_backoff`` / ``backoff_cap`` — capped exponential delays between
      tries, on the run's logical clock;
    * ``op_timeout`` — end-to-end deadline across *all* attempts; once the
      accumulated latency (service + backoff) reaches it — or the next
      backoff could not complete inside it — the client stops retrying even
      if attempts remain.
    """

    max_attempts: int = 4
    base_backoff: float = 0.05
    backoff_cap: float = 1.0
    op_timeout: float = 5.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigurationError("retry policy needs max_attempts >= 1")
        if self.base_backoff < 0 or self.backoff_cap < self.base_backoff:
            raise ConfigurationError(
                "retry policy needs 0 <= base_backoff <= backoff_cap"
            )
        if self.op_timeout <= 0:
            raise ConfigurationError("retry policy needs op_timeout > 0")

    def delay(self, attempt: int) -> float:
        return backoff_delay(attempt, self.base_backoff, self.backoff_cap)

    def gives_up(self, attempts_made: int, elapsed: float) -> bool:
        """True when the client abandons the op after ``attempts_made`` tries.

        ``op_timeout`` is a cross-attempt deadline, not a per-attempt
        budget: a retry whose backoff alone would push the op past the
        deadline is never started, so worst-case op latency stays within
        ``op_timeout`` plus a single service time (it used to overshoot by
        the whole remaining backoff schedule).
        """
        if attempts_made >= self.max_attempts or elapsed >= self.op_timeout:
            return True
        return elapsed + self.delay(attempts_made - 1) >= self.op_timeout


NO_RETRY = RetryPolicy(max_attempts=1)

"""Fault plans: deterministic, seed-driven schedules of injected faults.

A :class:`FaultSpec` is one fault — *what* happens (``kind``), *where*
(``target``), *when* on the simulated clock (``at``), for *how long*
(``duration``), and *how hard* (``magnitude``).  A :class:`FaultPlan` is an
ordered tuple of specs plus the seed that any stochastic consumer (the
transient-op-error path) must derive its randomness from, so the same plan
and seed always produce the same faulted schedule.

Specs parse from a compact CLI string, entries separated by ``;``::

    kind:target@at[+duration][xmagnitude]

    crash:n3@0.5            # node 3 crashes at 50% query progress
    straggler:n1@0x4        # node 1 runs 4x slow from the start
    disk-stall:disk@20+10x8 # disk service 8x slower over [20s, 30s)
    op-error:cpu@30+20x0.2  # 20% transient op errors over [30s, 50s)
    net-spike:log@5+5x3     # log/network latency 3x over [5s, 10s)
    kill-shard:0@0.25       # shard 0 dies 25% into the op stream
    restart-shard:0@0.75    # ... and comes back at 75%

Time semantics are consumer-documented: the DSS engines read ``at <= 1`` as
a fraction of the healthy runtime (else absolute seconds); the functional
YCSB runner reads ``at <= 1`` as a fraction of the operation count (else an
absolute op index); the event simulator reads ``at`` as simulated seconds.

Malformed specs raise :class:`~repro.common.errors.FaultPlanError` (a
:class:`~repro.common.errors.ConfigurationError`), which the CLI turns into
a one-line nonzero exit.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.common.errors import FaultPlanError

# The five mechanism families of the tentpole plus the shard-level pair the
# Mongo-AS availability scenario uses.
FAULT_KINDS = frozenset({
    "crash",          # node crash: lost tasks / full query restart / capacity
    "straggler",      # slow node: speculative re-execution (MapReduce only)
    "disk-stall",     # disk service-time inflation over a window
    "op-error",       # transient op errors at a station over a window
    "net-spike",      # network/log latency inflation over a window
    "kill-shard",     # one shard process dies (no replica sets, §3.4.1)
    "restart-shard",  # ... and is manually restarted
    # Replica-set member faults (PR 5): target is "shard.member", e.g.
    # ``kill-member:2.0@0.5`` kills member 0 of shard 2's replica set.
    "kill-member",       # one replica-set member process dies
    "restart-member",    # ... and is restarted (journal-durable state back)
    "partition-member",  # member unreachable (state intact, no traffic)
    "heal-member",       # the partition heals
    "lag-spike",         # replication lag x magnitude over the duration
    # Topology events (PR 8): live elastic resharding.  ``scale:shards=6@0.3``
    # grows the cluster to six shards 30% into the op stream (chunks / hash-
    # ring ranges migrate on the virtual clock); ``drain:shard=2@0.5`` moves
    # everything off shard 2 and retires it.
    "scale",          # grow the cluster to target="shards=N" total shards
    "drain",          # evacuate and retire target="shard=K"
    # Overload trigger (PR 10): ``arrival-spike:clients@20+10x2.5`` multiplies
    # the open-loop arrival rate by 2.5 over [20s, 30s).  Consumed by the
    # overload-aware open-loop simulator; the target is conventionally
    # ``clients`` (it names the arrival process, not a station).
    "arrival-spike",
})

# Kinds that operate on one member of a replica-set shard.
MEMBER_KINDS = frozenset({
    "kill-member", "restart-member", "partition-member", "heal-member",
    "lag-spike",
})

# Kinds that inflate service times / error ops at an event-sim station.
# ``arrival-spike`` rides along so :class:`StationFaults` can expose its
# windows to the overload-aware open-loop simulator.
STATION_KINDS = frozenset({
    "disk-stall", "net-spike", "op-error", "crash", "arrival-spike",
})

# Kinds that change cluster topology mid-run (elastic resharding).
TOPOLOGY_KINDS = frozenset({"scale", "drain"})

_SPEC_RE = re.compile(
    r"^(?P<kind>[a-z-]+):(?P<target>[A-Za-z0-9_.=-]+)@(?P<at>\d+(?:\.\d+)?)"
    r"(?:\+(?P<duration>\d+(?:\.\d+)?))?"
    r"(?:x(?P<magnitude>\d+(?:\.\d+)?))?$"
)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault."""

    kind: str
    target: str
    at: float
    duration: float = 0.0
    magnitude: float = 1.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {', '.join(sorted(FAULT_KINDS))}"
            )
        if self.at < 0:
            raise FaultPlanError(f"fault time must be >= 0, got {self.at}")
        if self.duration < 0:
            raise FaultPlanError(f"fault duration must be >= 0, got {self.duration}")
        if self.magnitude <= 0:
            raise FaultPlanError(f"fault magnitude must be > 0, got {self.magnitude}")
        # Topology targets are validated eagerly so a malformed spec string
        # fails at parse time (CLI exit 2), not mid-run.
        if self.kind == "scale":
            self.scale_target()
        elif self.kind == "drain":
            self.drain_target()

    @property
    def end(self) -> float:
        return self.at + self.duration

    def target_index(self) -> int:
        """The target parsed as an index (``n3`` -> 3, ``3`` -> 3)."""
        digits = re.sub(r"^[A-Za-z_.-]+", "", self.target)
        if not digits.isdigit():
            raise FaultPlanError(
                f"fault target {self.target!r} does not name an index"
            )
        return int(digits)

    def scale_target(self) -> int:
        """The target parsed as ``shards=N`` -> N (total shard count)."""
        match = re.fullmatch(r"shards=(\d+)", self.target)
        if match is None:
            raise FaultPlanError(
                f"scale target {self.target!r} must look like shards=N"
            )
        count = int(match.group(1))
        if count < 1:
            raise FaultPlanError(
                f"scale target must name at least one shard, got {count}"
            )
        return count

    def drain_target(self) -> int:
        """The target parsed as ``shard=K`` -> K (shard index to retire)."""
        match = re.fullmatch(r"shard=(\d+)", self.target)
        if match is None:
            raise FaultPlanError(
                f"drain target {self.target!r} must look like shard=K"
            )
        return int(match.group(1))

    def member_target(self) -> tuple[int, int]:
        """The target parsed as ``shard.member`` (``2.0`` -> (2, 0))."""
        parts = self.target.split(".")
        if len(parts) != 2 or not all(p.isdigit() for p in parts):
            raise FaultPlanError(
                f"fault target {self.target!r} does not name shard.member"
            )
        return int(parts[0]), int(parts[1])

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "target": self.target,
            "at": self.at,
            "duration": self.duration,
            "magnitude": self.magnitude,
        }

    def spec_string(self) -> str:
        out = f"{self.kind}:{self.target}@{self.at:g}"
        if self.duration:
            out += f"+{self.duration:g}"
        if self.magnitude != 1.0:
            out += f"x{self.magnitude:g}"
        return out


@dataclass(frozen=True)
class FaultPlan:
    """An ordered schedule of faults plus the seed consumers derive RNG from."""

    faults: tuple = ()
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, FaultSpec):
                raise FaultPlanError(f"not a FaultSpec: {fault!r}")

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def of_kind(self, *kinds: str) -> list[FaultSpec]:
        return [f for f in self.faults if f.kind in kinds]

    def first(self, kind: str) -> Optional[FaultSpec]:
        for fault in self.faults:
            if fault.kind == kind:
                return fault
        return None

    @property
    def station_faults(self) -> list[FaultSpec]:
        return self.of_kind(*STATION_KINDS)

    @property
    def shard_faults(self) -> list[FaultSpec]:
        return self.of_kind("kill-shard", "restart-shard")

    @property
    def member_faults(self) -> list[FaultSpec]:
        return self.of_kind(*MEMBER_KINDS)

    @property
    def topology_faults(self) -> list[FaultSpec]:
        return self.of_kind(*TOPOLOGY_KINDS)

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse the CLI spec DSL; raises :class:`FaultPlanError` on bad input."""
        if not isinstance(text, str) or not text.strip():
            raise FaultPlanError("empty fault plan")
        specs = []
        for entry in re.split(r"[;,]", text):
            entry = entry.strip()
            if not entry:
                continue
            match = _SPEC_RE.match(entry)
            if match is None:
                raise FaultPlanError(
                    f"bad fault spec {entry!r}; expected "
                    f"kind:target@at[+duration][xmagnitude]"
                )
            specs.append(FaultSpec(
                kind=match.group("kind"),
                target=match.group("target"),
                at=float(match.group("at")),
                duration=float(match.group("duration") or 0.0),
                magnitude=float(match.group("magnitude") or 1.0),
            ))
        if not specs:
            raise FaultPlanError("fault plan contains no specs")
        return cls(faults=tuple(specs), seed=seed)

    def to_dicts(self) -> list[dict]:
        return [f.to_dict() for f in self.faults]

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "faults": self.to_dicts()},
            sort_keys=True, separators=(",", ":"),
        )

    def spec_string(self) -> str:
        return ";".join(f.spec_string() for f in self.faults)


class StationFaults:
    """Adapter from a plan to per-station fault queries for the event sim.

    ``slowdown(station, now)`` multiplies service times (disk stalls and
    network latency spikes); ``error_probability(station, now)`` drives the
    transient-op-error retry path; ``capacity_factor(station)`` returns the
    crash windows as ``(at, end, surviving_fraction)`` tuples so the
    simulation can shrink and restore station capacity on the simulated
    clock.  Only faults whose ``target`` matches the station name apply.
    """

    def __init__(self, faults: Iterable[FaultSpec]):
        self._slow: list[FaultSpec] = []
        self._error: list[FaultSpec] = []
        self._crash: list[FaultSpec] = []
        self._spike: list[FaultSpec] = []
        for fault in faults:
            if fault.kind in ("disk-stall", "net-spike"):
                self._slow.append(fault)
            elif fault.kind == "op-error":
                if fault.magnitude > 1.0:
                    raise FaultPlanError(
                        "op-error magnitude is a probability; must be <= 1"
                    )
                self._error.append(fault)
            elif fault.kind == "crash":
                if fault.magnitude > 1.0:
                    raise FaultPlanError(
                        "event-sim crash magnitude is the lost capacity "
                        "fraction; must be <= 1"
                    )
                self._crash.append(fault)
            elif fault.kind == "arrival-spike":
                if fault.magnitude < 1.0:
                    raise FaultPlanError(
                        "arrival-spike magnitude is a rate multiplier; "
                        "must be >= 1"
                    )
                self._spike.append(fault)

    def __bool__(self) -> bool:
        return bool(self._slow or self._error or self._crash or self._spike)

    def slowdown(self, station: str, now: float) -> float:
        factor = 1.0
        for fault in self._slow:
            if fault.target == station and fault.at <= now < fault.end:
                factor *= fault.magnitude
        return factor

    def error_probability(self, station: str, now: float) -> float:
        prob = 0.0
        for fault in self._error:
            if fault.target == station and fault.at <= now < fault.end:
                prob = max(prob, fault.magnitude)
        return prob

    def crash_windows(self, station: str) -> list[tuple[float, float, float]]:
        """``(at, end, lost_fraction)`` crash windows for one station."""
        return [
            (fault.at, fault.end, fault.magnitude)
            for fault in self._crash
            if fault.target == station
        ]

    def arrival_windows(self) -> list[tuple[float, float, float]]:
        """``(at, end, rate_factor)`` arrival-spike windows, in time order."""
        return sorted(
            (fault.at, fault.end, fault.magnitude) for fault in self._spike
        )

    @property
    def windows(self) -> list[FaultSpec]:
        """Every windowed fault, for trace/series annotation."""
        return sorted(
            self._slow + self._error + self._crash + self._spike,
            key=lambda f: (f.at, f.kind, f.target),
        )

"""The ``repro-availability/1`` report: durability cost vs. safety, measured.

One row per (system, write concern): a seeded chaos run
(:mod:`repro.faults.chaos`) drives the functional cluster through kills,
partitions, and lag spikes, then audits the acknowledged-write ledger after
full recovery.  The row records what the concern *cost* (throughput, ack
latency folded into duration, retries/backoff, seconds of unavailability)
against what it *bought* (acknowledged writes lost, whether each loss was
inside the concern's documented window, and the safety-invariant verdict).

The report serializes to deterministic JSON like ``repro-faults/1`` and
validates against a lightweight schema check so CI can gate on it.
"""

from __future__ import annotations

import json

from repro.common.errors import ConfigurationError, FaultPlanError
from repro.faults.chaos import ChaosConfig, ChaosYcsbRun, chaos_plan
from repro.faults.report import _round
from repro.faults.retry import RetryPolicy
from repro.replication.config import ReplicationConfig
from repro.replication.writeconcern import SPECTRUM, WriteConcern
from repro.ycsb.workloads import WORKLOADS, make_key

SCHEMA = "repro-availability/1"

#: Systems an availability report covers by default.
AVAILABILITY_SYSTEMS = ("mongo-as", "mongo-cs", "sql-cs")

#: Chaos runs retry long enough to ride out an election (default timeout
#: 0.25 s: 8 attempts with capped backoff give > 2 s of budget).
CHAOS_RETRY_POLICY = RetryPolicy(
    max_attempts=8, base_backoff=0.05, backoff_cap=0.5, op_timeout=10.0
)

_ROW_REQUIRED = {
    "system": str, "concern": str, "workload": str, "operations": int,
    "attempted": int, "succeeded": int, "availability": float,
    "errors": int, "retries": int, "backoff_seconds": float,
    "duration_seconds": float, "throughput_ops_per_s": float,
    "acked_writes": int, "checked_writes": int, "lost_writes": int,
    "lost_allowed": int, "violations": int, "invariant_ok": bool,
    "loss_window_seconds": float, "unavailable_seconds": float,
    "elections": int, "failovers": int, "rolled_back_writes": int,
    "recovered_writes": int, "stale_reads": int, "plan": str,
}


def _build_chaos_cluster(system: str, shard_count: int, record_count: int,
                         replication, seed: int, tracer=None):
    if system == "mongo-as":
        from repro.docstore.cluster import MongoAsCluster

        cluster = MongoAsCluster(
            shard_count=shard_count, max_chunk_docs=10 * record_count,
            mongos_count=2, replication=replication, seed=seed,
            tracer=tracer,
        )
        chunks = 8 * shard_count
        cluster.pre_split([
            make_key(i * record_count // chunks) for i in range(1, chunks)
        ])
        return cluster
    if system == "mongo-cs":
        from repro.docstore.cluster import MongoCsCluster

        return MongoCsCluster(shard_count=shard_count,
                              replication=replication, seed=seed,
                              tracer=tracer)
    if system == "sql-cs":
        from repro.sqlstore.cluster import SqlCsCluster

        return SqlCsCluster(shard_count=shard_count,
                            mirrored=replication is not None)
    raise FaultPlanError(
        f"unknown OLTP system {system!r}; expected one of "
        f"{', '.join(AVAILABILITY_SYSTEMS)}"
    )


def availability_row(
    system: str,
    concern: WriteConcern | None,
    *,
    chaos: ChaosConfig,
    workload: str = "A",
    shard_count: int = 4,
    record_count: int = 300,
    operations: int = 500,
    replicas: int = 3,
    seed: int = 11,
    policy: RetryPolicy | None = None,
    replication: ReplicationConfig | None = None,
    tracer=None,
    live=None,
    prof=None,
    overload=None,
) -> dict:
    """Run one seeded chaos scenario and audit it into a report row.

    ``concern=None`` means the system's non-Mongo durability story: for
    ``sql-cs`` that is synchronous mirroring (concern name ``mirrored``).
    ``replication`` overrides the replica-set topology (lag, election
    timeout, member count); its concern is replaced per cell.
    """
    if workload not in WORKLOADS:
        raise FaultPlanError(
            f"unknown workload {workload!r}; expected one of "
            f"{', '.join(sorted(WORKLOADS))}"
        )
    policy = policy or CHAOS_RETRY_POLICY
    if replication is not None:
        replicas = replication.replicas
    if system == "sql-cs":
        replication = replication or ReplicationConfig(
            replicas=max(replicas, 2)
        )
        concern_name = "mirrored"
        loss_window = 0.0
        plan = chaos_plan(chaos, operations, shard_count, 0, seed)
    else:
        if concern is None:
            raise ConfigurationError(
                f"system {system!r} needs a write concern"
            )
        base = replication or ReplicationConfig(replicas=replicas)
        replication = base.with_concern(concern)
        concern_name = concern.name
        loss_window = concern.loss_window
        plan = chaos_plan(chaos, operations, shard_count, replicas, seed)
    cluster = _build_chaos_cluster(
        system, shard_count, record_count, replication, seed, tracer=tracer
    )
    runner = ChaosYcsbRun(
        cluster, WORKLOADS[workload], record_count=record_count,
        operations=operations, plan=plan, policy=policy, seed=seed,
        tracer=tracer, live=live, prof=prof, overload=overload,
    )
    runner.load()
    stats = runner.run()
    audit = runner.audit()

    elections = failovers = rolled_back = recovered = stale = 0
    unavailable = 0.0
    for shard in getattr(cluster, "shards", []):
        if hasattr(shard, "elections"):
            elections += shard.elections
            rolled_back += len(shard.rolled_back)
            recovered += sum(1 for r in shard.rolled_back if r.recovered)
            stale += shard.stale_reads
            unavailable += shard.unavailable_seconds(runner.now)
        if hasattr(shard, "failovers"):
            failovers += shard.failovers
    duration = stats.duration or 1e-9
    row = {
        "system": system,
        "concern": concern_name,
        "workload": workload,
        "operations": operations,
        "attempted": stats.attempted,
        "succeeded": stats.succeeded,
        "availability": _round(stats.availability),
        "errors": stats.error_count,
        "retries": stats.retries,
        "backoff_seconds": _round(stats.backoff_seconds),
        "duration_seconds": _round(stats.duration),
        "throughput_ops_per_s": _round(stats.attempted / duration, 3),
        "acked_writes": sum(audit.acked.values()),
        "checked_writes": audit.checked,
        "lost_writes": len(audit.lost),
        "lost_allowed": audit.lost_allowed,
        "violations": len(audit.violations),
        "invariant_ok": audit.invariant_ok,
        "loss_window_seconds": _round(loss_window),
        "unavailable_seconds": _round(unavailable),
        "elections": elections,
        "failovers": failovers,
        "rolled_back_writes": rolled_back,
        "recovered_writes": recovered,
        "stale_reads": stale,
        "plan": plan.spec_string(),
    }
    if overload is not None:
        # Overload keys appear only on protected runs, so unprotected
        # report bytes stay identical to the pre-overload output.
        row.update({
            "overload": overload.spec_string(),
            "shed": stats.shed_count,
            "shed_reasons": {r: n for r, n in sorted(stats.shed.items())},
            "budget_denied": stats.budget_denied,
            "breaker_fast_failures": stats.breaker_fast_failures,
        })
    return row


def availability_report(
    systems=None,
    concerns=None,
    *,
    chaos: ChaosConfig | None = None,
    workload: str = "A",
    shard_count: int = 4,
    record_count: int = 300,
    operations: int = 500,
    replicas: int = 3,
    seed: int = 11,
    policy: RetryPolicy | None = None,
    replication: ReplicationConfig | None = None,
    tracer=None,
    overload=None,
) -> dict:
    """Sweep systems x write concerns under identical seeded chaos."""
    systems = tuple(systems) if systems else AVAILABILITY_SYSTEMS
    concerns = tuple(concerns) if concerns else SPECTRUM
    chaos = chaos or ChaosConfig()
    if replication is not None:
        replicas = replication.replicas
    rows = []
    for system in systems:
        if system == "sql-cs":
            rows.append(availability_row(
                system, None, chaos=chaos, workload=workload,
                shard_count=shard_count, record_count=record_count,
                operations=operations, replicas=replicas, seed=seed,
                policy=policy, replication=replication, tracer=tracer,
                overload=overload,
            ))
            continue
        for concern in concerns:
            rows.append(availability_row(
                system, concern, chaos=chaos, workload=workload,
                shard_count=shard_count, record_count=record_count,
                operations=operations, replicas=replicas, seed=seed,
                policy=policy, replication=replication, tracer=tracer,
                overload=overload,
            ))
    scenario_overload = (
        {"overload": overload.spec_string()} if overload is not None else {})
    return {
        "schema": SCHEMA,
        "scenario": {
            "chaos": chaos.spec_string(),
            "workload": workload,
            "shard_count": shard_count,
            "record_count": record_count,
            "operations": operations,
            "replicas": replicas,
            "seed": seed,
            **scenario_overload,
        },
        "rows": rows,
        "invariant_ok": all(row["invariant_ok"] for row in rows),
    }


def validate_availability_report(data: dict) -> None:
    """Schema check; raises :class:`ConfigurationError` on any mismatch."""
    if not isinstance(data, dict):
        raise ConfigurationError("availability report must be an object")
    if data.get("schema") != SCHEMA:
        raise ConfigurationError(
            f"availability report schema is {data.get('schema')!r}, "
            f"expected {SCHEMA!r}"
        )
    scenario = data.get("scenario")
    if not isinstance(scenario, dict):
        raise ConfigurationError("availability report needs a scenario object")
    for field in ("chaos", "workload", "operations", "seed"):
        if field not in scenario:
            raise ConfigurationError(f"scenario is missing {field!r}")
    rows = data.get("rows")
    if not isinstance(rows, list) or not rows:
        raise ConfigurationError("availability report needs a non-empty rows list")
    for index, row in enumerate(rows):
        if not isinstance(row, dict):
            raise ConfigurationError(f"row {index} is not an object")
        for field, kind in _ROW_REQUIRED.items():
            if field not in row:
                raise ConfigurationError(f"row {index} is missing {field!r}")
            value = row[field]
            if kind is float:
                ok = isinstance(value, (int, float)) and not isinstance(value, bool)
            elif kind is int:
                ok = isinstance(value, int) and not isinstance(value, bool)
            else:
                ok = isinstance(value, kind)
            if not ok:
                raise ConfigurationError(
                    f"row {index} field {field!r} has type "
                    f"{type(value).__name__}, expected {kind.__name__}"
                )
        if row["violations"] and row["invariant_ok"]:
            raise ConfigurationError(
                f"row {index} reports violations but claims invariant_ok"
            )
    if "invariant_ok" not in data or not isinstance(data["invariant_ok"], bool):
        raise ConfigurationError("availability report needs invariant_ok")
    if data["invariant_ok"] != all(r["invariant_ok"] for r in rows):
        raise ConfigurationError(
            "top-level invariant_ok disagrees with the rows"
        )


def dumps_availability_report(data: dict) -> str:
    """Deterministic JSON: sorted keys, fixed separators, trailing newline."""
    return json.dumps(data, sort_keys=True, separators=(",", ":")) + "\n"


def write_availability_report(data: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_availability_report(data))


def render_availability_report(data: dict) -> str:
    """Human-readable table for the CLI."""
    lines = [
        f"availability report  chaos: {data['scenario']['chaos']}  "
        f"workload {data['scenario']['workload']}  "
        f"seed {data['scenario']['seed']}"
    ]
    header = (
        f"  {'system':9s} {'concern':10s} {'avail':>6s} {'err':>4s} "
        f"{'acked':>6s} {'lost':>5s} {'viol':>4s} {'downtime':>9s} "
        f"{'elect':>5s} {'ok':>3s}"
    )
    lines.append(header)
    for row in data["rows"]:
        lines.append(
            f"  {row['system']:9s} {row['concern']:10s} "
            f"{row['availability']:6.3f} {row['errors']:4d} "
            f"{row['acked_writes']:6d} {row['lost_writes']:5d} "
            f"{row['violations']:4d} {row['unavailable_seconds']:8.3f}s "
            f"{row['elections']:5d} {'yes' if row['invariant_ok'] else 'NO':>3s}"
        )
    verdict = "holds" if data["invariant_ok"] else "VIOLATED"
    lines.append(f"  safety invariant: {verdict}")
    return "\n".join(lines)

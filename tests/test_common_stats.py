"""Tests for the Table-3-style statistics helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.stats import (
    arithmetic_mean,
    geometric_mean,
    harmonic_number,
    percentile,
    scaling_factors,
    std_deviation,
    std_error,
)

positive_floats = st.lists(
    st.floats(min_value=0.01, max_value=1e6, allow_nan=False), min_size=1, max_size=30
)


class TestMeans:
    def test_arithmetic_mean(self):
        assert arithmetic_mean([1, 2, 3]) == 2.0

    def test_geometric_mean_known_value(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            arithmetic_mean([])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(positive_floats)
    @settings(max_examples=50)
    def test_am_gm_inequality(self, values):
        assert geometric_mean(values) <= arithmetic_mean(values) * (1 + 1e-9)

    def test_paper_table3_am_gm_sf250(self):
        # Table 3 reports AM=605, GM=474 for Hive at SF 250 over these times.
        hive_250 = [207, 411, 508, 367, 536, 79, 1007, 967, 2033, 489, 242,
                    253, 392, 154, 444, 460, 654, 786, 376, 606, 1431, 908]
        assert round(arithmetic_mean(hive_250)) == 605
        assert round(geometric_mean(hive_250)) == 474


class TestDispersion:
    def test_std_deviation_known(self):
        assert std_deviation([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.138, abs=1e-3)

    def test_std_error_scales_with_n(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert std_error(values) == pytest.approx(std_deviation(values) / 2.0)

    def test_single_value_has_zero_spread(self):
        assert std_deviation([5.0]) == 0.0
        assert std_error([5.0]) == 0.0


class TestPercentile:
    def test_bounds(self):
        values = [1, 2, 3, 4, 5]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 5
        assert percentile(values, 50) == 3

    def test_interpolation(self):
        assert percentile([10, 20], 50) == pytest.approx(15.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestScalingFactors:
    def test_paper_like_series(self):
        # Hive Q1: 207 -> 443 -> 1376 -> 5357 gives factors ~2.1, 3.1, 3.9.
        factors = scaling_factors([207, 443, 1376, 5357])
        assert [round(f, 1) for f in factors] == [2.1, 3.1, 3.9]

    def test_short_series(self):
        assert scaling_factors([5.0]) == []

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scaling_factors([0.0, 1.0])


class TestHarmonicNumber:
    def test_exact_small(self):
        assert harmonic_number(1) == 1.0
        assert harmonic_number(3) == pytest.approx(1 + 0.5 + 1 / 3)

    def test_large_matches_log_growth(self):
        # H_n ~ ln(n) + gamma for s = 1.
        n = 10_000_000
        approx = harmonic_number(n)
        assert approx == pytest.approx(math.log(n) + 0.5772156649, rel=1e-4)

    def test_generalized_converges(self):
        # H_{n,2} -> pi^2/6.
        assert harmonic_number(5_000_000, s=2.0) == pytest.approx(math.pi**2 / 6, rel=1e-4)

    def test_zipfian_exponent_large_n(self):
        # The YCSB zipfian constant 0.99: check monotonicity and sanity.
        h1 = harmonic_number(1_000_000, s=0.99)
        h2 = harmonic_number(2_000_000, s=0.99)
        assert h2 > h1 > 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            harmonic_number(0)

"""Tests for pages, buffer pool, WAL, locks, the server, and SQL-CS."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import StorageError, TransactionAborted
from repro.sqlstore import (
    BufferPool,
    IsolationLevel,
    LockManager,
    LockMode,
    PAGE_SIZE,
    Page,
    SqlCsCluster,
    SqlServerNode,
    WriteAheadLog,
    decode_row,
    encode_row,
)
from repro.sqlstore.wal import LogOp
from repro.ycsb.workloads import make_key, make_record
from repro.common.rng import TpchRandom64


class TestRowCodec:
    def test_roundtrip(self):
        row = {"field0": "abc", "field1": "x" * 100}
        assert decode_row(encode_row(row)) == row

    def test_rejects_non_strings(self):
        with pytest.raises(StorageError):
            encode_row({"a": 1})

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=8), st.text(max_size=200), max_size=12
        )
    )
    @settings(max_examples=50)
    def test_roundtrip_property(self, row):
        assert decode_row(encode_row(row)) == row


class TestPage:
    def test_put_get_delete(self):
        page = Page(0)
        page.put("k", b"data")
        assert page.get("k") == b"data"
        assert page.delete("k")
        assert not page.delete("k")

    def test_capacity_about_seven_1kb_rows(self):
        """A 1 KB YCSB record fits ~7 times into an 8 KB page."""
        page = Page(0)
        rng = TpchRandom64(3)
        data = encode_row(make_record(rng))
        count = 0
        while page.fits(data):
            page.put(f"key{count}", data)
            count += 1
        assert 6 <= count <= 8

    def test_overflow_rejected(self):
        page = Page(0)
        with pytest.raises(StorageError):
            page.put("k", b"x" * PAGE_SIZE)


class TestBufferPool:
    def test_hit_miss_lru(self):
        pool = BufferPool(2)
        assert not pool.access(1)
        assert not pool.access(2)
        assert pool.access(1)  # hit
        assert not pool.access(3)  # evicts 2 (LRU)
        assert not pool.access(2)
        assert pool.evictions == 2

    def test_dirty_writeback_on_eviction(self):
        pool = BufferPool(1)
        pool.access(1, dirty=True)
        pool.access(2)
        assert pool.dirty_writebacks == 1

    def test_flush_all(self):
        pool = BufferPool(10)
        pool.access(1, dirty=True)
        pool.access(2, dirty=True)
        pool.access(3)
        assert pool.flush_all() == 2
        assert pool.flush_all() == 0

    def test_hit_rate(self):
        pool = BufferPool(10)
        pool.access(1)
        pool.access(1)
        assert pool.hit_rate == pytest.approx(0.5)


class TestWal:
    def test_commit_flushes(self):
        wal = WriteAheadLog()
        wal.append(1, LogOp.BEGIN)
        wal.append(1, LogOp.UPDATE, key="k", before=b"a", after=b"b")
        wal.append(1, LogOp.COMMIT)
        wal.flush()
        assert wal.flushed_lsn == 3
        assert wal.bytes_written > 0

    def test_replay_ignores_uncommitted(self):
        """Crash recovery: only committed transactions' effects survive."""
        wal = WriteAheadLog()
        wal.append(1, LogOp.BEGIN)
        wal.append(1, LogOp.UPDATE, key="a", before=b"", after=b"committed")
        wal.append(1, LogOp.COMMIT)
        wal.flush()
        wal.append(2, LogOp.BEGIN)
        wal.append(2, LogOp.UPDATE, key="b", before=b"", after=b"lost")
        # tx 2 never commits; crash here.
        images = wal.replay_committed()
        assert images == {"a": b"committed"}

    def test_checkpoint_truncates(self):
        wal = WriteAheadLog()
        for i in range(10):
            wal.append(1, LogOp.UPDATE, key=f"k{i}", after=b"x")
        wal.checkpoint()
        assert wal.record_count == 1
        assert wal.checkpoints == 1


class TestLockManager:
    def test_shared_locks_compatible(self):
        lm = LockManager()
        lm.acquire(1, "k", LockMode.SHARED)
        lm.acquire(2, "k", LockMode.SHARED)
        assert lm.shared_acquired == 2

    def test_exclusive_conflicts(self):
        lm = LockManager()
        lm.acquire(1, "k", LockMode.EXCLUSIVE)
        with pytest.raises(TransactionAborted):
            lm.acquire(2, "k", LockMode.SHARED)
        with pytest.raises(TransactionAborted):
            lm.acquire(2, "k", LockMode.EXCLUSIVE)
        assert lm.conflicts == 2

    def test_same_tx_reentrant_and_upgrade(self):
        lm = LockManager()
        lm.acquire(1, "k", LockMode.SHARED)
        lm.acquire(1, "k", LockMode.EXCLUSIVE)  # upgrade allowed, sole owner
        with pytest.raises(TransactionAborted):
            lm.acquire(2, "k", LockMode.SHARED)

    def test_release_all(self):
        lm = LockManager()
        lm.acquire(1, "a", LockMode.EXCLUSIVE)
        lm.acquire(1, "b", LockMode.SHARED)
        lm.release_all(1)
        assert lm.active_locks == 0
        lm.acquire(2, "a", LockMode.EXCLUSIVE)


class TestSqlServerNode:
    def test_insert_read_update(self):
        node = SqlServerNode()
        rng = TpchRandom64(1)
        node.insert(make_key(1), make_record(rng))
        record = node.read(make_key(1))
        assert len(record) == 10
        assert node.update(make_key(1), "field3", "updated")
        assert node.read(make_key(1))["field3"] == "updated"
        assert node.read(make_key(404)) is None
        assert not node.update(make_key(404), "field0", "x")

    def test_duplicate_insert_rejected(self):
        node = SqlServerNode()
        node.insert("k", {"f": "v"})
        with pytest.raises(StorageError):
            node.insert("k", {"f": "w"})

    def test_scan_ordered(self):
        node = SqlServerNode()
        for i in (5, 2, 9, 1, 7):
            node.insert(make_key(i), {"f": str(i)})
        rows = node.scan(make_key(2), 3)
        assert [r["f"] for r in rows] == ["2", "5", "7"]

    def test_wal_grows_and_checkpoint_resets(self):
        node = SqlServerNode(checkpoint_interval_ops=50)
        for i in range(60):
            node.insert(make_key(i), {"f": "v"})
        assert node.wal.checkpoints >= 1
        assert node.pool.dirty_writebacks >= 0

    def test_locks_released_after_autocommit(self):
        node = SqlServerNode()
        node.insert("k", {"f": "v"})
        node.read("k")
        node.update("k", "f", "w")
        assert node.locks.active_locks == 0

    def test_read_uncommitted_takes_no_shared_locks(self):
        node = SqlServerNode(isolation=IsolationLevel.READ_UNCOMMITTED)
        node.insert("k", {"f": "v"})
        before = node.locks.shared_acquired
        node.read("k")
        assert node.locks.shared_acquired == before

    def test_buffer_pool_sees_traffic(self):
        node = SqlServerNode(pool_pages=16)
        rng = TpchRandom64(2)
        for i in range(500):
            node.insert(make_key(i), make_record(rng))
        for i in range(0, 500, 7):
            node.read(make_key(i))
        assert node.pool.misses > 0
        assert node.pool.hits > 0


class TestSqlCsCluster:
    def test_routing_and_crud(self):
        cluster = SqlCsCluster(shard_count=4)
        for i in range(200):
            cluster.insert(make_key(i), {"field0": str(i)})
        assert cluster.row_count == 200
        counts = [s.row_count for s in cluster.shards]
        assert min(counts) > 20
        assert cluster.read(make_key(77))["field0"] == "77"
        assert cluster.update(make_key(77), "field0", "new")
        assert cluster.read(make_key(77))["field0"] == "new"

    def test_scan_broadcasts_and_merges(self):
        cluster = SqlCsCluster(shard_count=4)
        for i in range(300):
            cluster.insert(make_key(i), {"f": str(i)})
        rows = cluster.scan(make_key(50), 10)
        assert [r["_key"] for r in rows] == [make_key(i) for i in range(50, 60)]
        assert cluster.shards_touched_by_scan(make_key(50), 10) == 4


class TestBlockingLocksOption:
    def test_node_with_blocking_lock_manager(self):
        from repro.sqlstore.locks import BlockingLockManager

        node = SqlServerNode(blocking_locks=True)
        assert isinstance(node.locks, BlockingLockManager)
        node.insert(make_key(1), {"field0": "v"})
        assert node.read(make_key(1))["field0"] == "v"
        assert node.update(make_key(1), "field0", "w")
        assert node.locks.deadlocks == 0

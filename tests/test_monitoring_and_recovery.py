"""Tests for mongostat-style monitoring, crash recovery, and fault injection."""

import pytest

from repro.common.errors import ServerCrashed
from repro.docstore import MongoAsCluster, MongoCsCluster, Mongod
from repro.docstore.mongostat import (
    cluster_snapshot,
    format_mongostat,
    snapshot,
    summarize,
)
from repro.sqlstore.recovery import crash
from repro.sqlstore.server import SqlServerNode
from repro.sqlstore.wal import LogOp
from repro.ycsb import WORKLOADS, YcsbClient, make_key


class TestMongostat:
    def _loaded_cluster(self):
        cluster = MongoAsCluster(shard_count=4, max_chunk_docs=100)
        client = YcsbClient(cluster, WORKLOADS["A"], record_count=400, seed=21)
        client.load()
        client.run(800)
        return cluster

    def test_snapshot_counts(self):
        m = Mongod("m0")
        m.insert("c", {"_id": "a", "v": 1})
        m.find_one("c", "a")
        stats = snapshot(m)
        assert stats.ops == 2
        assert stats.writes == 1 and stats.reads == 1
        assert stats.write_fraction == pytest.approx(0.5)

    def test_lock_percent_estimate(self):
        m = Mongod("m0")
        for i in range(100):
            m.insert("c", {"_id": make_key(i), "v": 1})
        stats = snapshot(m)
        # 100 writes x 3 ms hold over 1 second of wall clock: 30%.
        assert stats.lock_percent(avg_write_hold=0.003, elapsed=1.0) == pytest.approx(30.0)
        assert stats.lock_percent(0.003, 0.0) == 0.0
        # 30% is inside the paper's 25-45% mongostat band; 10% is not.
        assert stats.lock_in_paper_band(avg_write_hold=0.003, elapsed=1.0)
        assert not stats.lock_in_paper_band(avg_write_hold=0.001, elapsed=1.0)

    def test_cluster_summary(self):
        cluster = self._loaded_cluster()
        summary = summarize(cluster.shards)
        assert summary.total_ops > 1000  # load + run
        assert summary.total_writes > 0
        assert 0.0 < summary.hottest_share <= 1.0
        assert summary.imbalance >= 1.0
        assert summary.hottest_shard.startswith("mongod-")

    def test_format_table(self):
        cluster = self._loaded_cluster()
        text = format_mongostat(cluster.shards, top=3)
        assert "process" in text
        assert text.count("mongod-") == 3

    def test_snapshot_is_nondestructive(self):
        m = Mongod("m0")
        m.insert("c", {"_id": "a", "v": 1})
        before = snapshot(m)
        after = snapshot(m)
        assert before == after
        assert len(cluster_snapshot([m])) == 1


class TestCrashRecovery:
    def test_committed_work_survives(self):
        node = SqlServerNode(checkpoint_interval_ops=10**9)  # no checkpoints
        node.insert(make_key(1), {"field0": "a"})
        node.insert(make_key(2), {"field0": "b"})
        node.update(make_key(1), "field0", "a2")
        image = crash(node)
        recovered, report = image.recover()
        assert recovered.read(make_key(1))["field0"] == "a2"
        assert recovered.read(make_key(2))["field0"] == "b"
        assert report.redone_keys == 2
        assert report.final_row_count == 2

    def test_uncommitted_work_is_discarded(self):
        node = SqlServerNode(checkpoint_interval_ops=10**9)
        node.insert(make_key(1), {"field0": "committed"})
        # An in-flight transaction that never commits (crash mid-update).
        node.wal.append(777, LogOp.BEGIN)
        node.wal.append(777, LogOp.UPDATE, key=make_key(1),
                        before=b"", after=b"\x00\x00")
        recovered, report = crash(node).recover()
        assert recovered.read(make_key(1))["field0"] == "committed"
        assert report.discarded_records >= 1

    def test_recovery_is_idempotent(self):
        node = SqlServerNode(checkpoint_interval_ops=10**9)
        for i in range(20):
            node.insert(make_key(i), {"field0": str(i)})
        first, _ = crash(node).recover()
        second, _ = crash(node).recover()
        for i in range(20):
            assert first.read(make_key(i)) == second.read(make_key(i))


class TestFaultInjection:
    def test_dead_mongod_raises(self):
        m = Mongod("m0")
        m.insert("c", {"_id": "a", "v": 1})
        m.kill()
        with pytest.raises(ServerCrashed):
            m.find_one("c", "a")
        with pytest.raises(ServerCrashed):
            m.insert("c", {"_id": "b", "v": 2})
        m.restart()
        assert m.find_one("c", "a") is not None

    def test_mongo_as_without_failover_loses_chunk_ranges(self):
        """No replica sets (the paper's deployment): a dead shard takes its
        chunks' keys offline while other chunks keep working."""
        cluster = MongoAsCluster(shard_count=2, max_chunk_docs=50,
                                 balancer_threshold=2)
        for i in range(200):
            cluster.insert(make_key(i), {"f": "v"})
        cluster.run_balancer()
        cluster.kill_shard(0)
        dead_keys, alive_keys = 0, 0
        for i in range(0, 200, 10):
            try:
                cluster.read(make_key(i))
                alive_keys += 1
            except ServerCrashed:
                dead_keys += 1
        assert dead_keys > 0 and alive_keys > 0

    def test_hash_sharded_scan_fails_if_any_shard_is_down(self):
        """Broadcast scans make hash sharding fragile to single failures."""
        cluster = MongoCsCluster(shard_count=4)
        for i in range(100):
            cluster.insert(make_key(i), {"f": "v"})
        cluster.kill_shard(2)
        with pytest.raises(ServerCrashed):
            cluster.scan(make_key(0), 10)
        # Point reads to other shards still work.
        survivors = 0
        for i in range(20):
            try:
                cluster.read(make_key(i))
                survivors += 1
            except ServerCrashed:
                pass
        assert survivors > 0

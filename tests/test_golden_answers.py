"""Golden regression answers: exact query results at seed 42, SF 0.01.

These values were computed once and pinned; any change to the generator,
the RNG, the expression semantics, or the operators that silently alters
query answers fails here.  (The engine *cost* models are pinned separately
by tests/test_scorecard.py.)
"""

import pytest

from repro.tpch.queries import run_query


class TestGoldenAnswers:
    def test_q1_pinned(self, small_db):
        rows = run_query(1, small_db)
        got = [
            (r["l_returnflag"], r["l_linestatus"], r["count_order"],
             round(r["sum_qty"], 1))
            for r in rows
        ]
        assert got == [
            ("A", "F", 15128, 389437.0),
            ("N", "F", 385, 9535.0),
            ("N", "O", 28852, 734337.0),
            ("R", "F", 14984, 381436.0),
        ]

    def test_q5_pinned(self, small_db):
        rows = run_query(5, small_db)
        got = [(r["n_name"], round(r["revenue"], 2)) for r in rows]
        assert got == [
            ("VIETNAM", 795538.22),
            ("INDIA", 776559.24),
            ("INDONESIA", 427637.38),
            ("JAPAN", 371932.24),
            ("CHINA", 334962.16),
        ]

    def test_q6_pinned(self, small_db):
        assert run_query(6, small_db)[0]["revenue"] == pytest.approx(
            1_109_471.6321, abs=0.01
        )

    def test_q14_pinned(self, small_db):
        assert run_query(14, small_db)[0]["promo_revenue"] == pytest.approx(
            16.6548, abs=1e-3
        )

    def test_q22_pinned(self, small_db):
        rows = run_query(22, small_db)
        got = [(r["cntrycode"], r["numcust"]) for r in rows]
        assert got == [
            ("13", 10), ("17", 9), ("18", 7), ("23", 11),
            ("29", 8), ("30", 8), ("31", 7),
        ]

"""Tests for the discrete-event kernel and hardware resource models."""

import pytest

from repro.common.units import MB
from repro.simcluster import (
    Cluster,
    Environment,
    HardwareProfile,
    Resource,
    oltp_testbed,
    paper_testbed,
)
from repro.simcluster.resources import Cpu, Disk, DiskArray, NetworkLink
from repro.common.errors import ConfigurationError, SimulationError


class TestEventLoop:
    def test_timeout_advances_clock(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(5.0)
            log.append(env.now)
            yield env.timeout(2.5)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [5.0, 7.5]

    def test_run_until_stops_early(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(10.0)
            log.append("late")

        env.process(proc())
        env.run(until=3.0)
        assert log == []
        assert env.now == 3.0
        env.run()
        assert log == ["late"]

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_process_join_returns_value(self):
        env = Environment()
        results = []

        def child():
            yield env.timeout(1.0)
            return 42

        def parent():
            value = yield env.process(child())
            results.append((env.now, value))

        env.process(parent())
        env.run()
        assert results == [(1.0, 42)]

    def test_all_of_waits_for_every_event(self):
        env = Environment()
        results = []

        def child(delay, value):
            yield env.timeout(delay)
            return value

        def parent():
            procs = [env.process(child(d, d * 10)) for d in (3.0, 1.0, 2.0)]
            values = yield env.all_of(procs)
            results.append((env.now, values))

        env.process(parent())
        env.run()
        assert results == [(3.0, [30.0, 10.0, 20.0])]

    def test_deterministic_tie_breaking(self):
        env = Environment()
        order = []

        def proc(tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in "abc":
            env.process(proc(tag))
        env.run()
        assert order == ["a", "b", "c"]


class TestResource:
    def test_fifo_queueing_serializes(self):
        env = Environment()
        res = Resource(env, capacity=1)
        finish = []

        def proc(tag):
            yield from res.use(2.0)
            finish.append((tag, env.now))

        for tag in ("a", "b", "c"):
            env.process(proc(tag))
        env.run()
        assert finish == [("a", 2.0), ("b", 4.0), ("c", 6.0)]

    def test_capacity_two_runs_in_parallel(self):
        env = Environment()
        res = Resource(env, capacity=2)
        finish = []

        def proc(tag):
            yield from res.use(2.0)
            finish.append((tag, env.now))

        for tag in ("a", "b", "c"):
            env.process(proc(tag))
        env.run()
        assert finish == [("a", 2.0), ("b", 2.0), ("c", 4.0)]

    def test_release_without_request_errors(self):
        env = Environment()
        res = Resource(env, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_bad_capacity(self):
        with pytest.raises(SimulationError):
            Resource(Environment(), capacity=0)


class TestDevices:
    def test_disk_sequential_vs_random(self):
        env = Environment()
        disk = Disk(env, seq_bandwidth=100 * MB, seek_time=0.008)
        assert disk.service_time(100 * MB, sequential=True) == pytest.approx(1.0)
        assert disk.service_time(8192, sequential=False) == pytest.approx(
            0.008 + 8192 / (100 * MB)
        )

    def test_disk_array_balances_load(self):
        env = Environment()
        array = DiskArray(env, spindles=2, per_disk_bandwidth=100 * MB)
        done = []

        def proc(tag):
            yield from array.read(100 * MB, sequential=True)
            done.append((tag, env.now))

        for tag in ("a", "b"):
            env.process(proc(tag))
        env.run()
        # Two spindles: both 1-second reads run in parallel.
        assert done == [("a", 1.0), ("b", 1.0)]
        assert array.bytes_read == 200 * MB
        assert array.aggregate_bandwidth == 200 * MB

    def test_cpu_tracks_busy_time(self):
        env = Environment()
        cpu = Cpu(env, cores=2)

        def proc():
            yield from cpu.consume(3.0)

        env.process(proc())
        env.process(proc())
        env.process(proc())
        env.run()
        assert env.now == pytest.approx(6.0)
        assert cpu.busy_seconds == pytest.approx(9.0)

    def test_network_link_transfer_time(self):
        env = Environment()
        link = NetworkLink(env, bandwidth=125 * MB, latency=0.0)
        assert link.transfer_time(125 * MB) == pytest.approx(1.0)


class TestProfileAndCluster:
    def test_paper_testbed_matches_section_3_1(self):
        profile = paper_testbed()
        assert profile.nodes == 16
        assert profile.cores_per_node == 16
        assert profile.memory_per_node == 32 * 1024**3
        assert profile.data_disks_per_node == 8
        assert profile.aggregate_disk_bandwidth == pytest.approx(800 * MB)

    def test_oltp_testbed_has_eight_servers(self):
        assert oltp_testbed().nodes == 8

    def test_with_override(self):
        profile = paper_testbed().with_(nodes=4)
        assert profile.nodes == 4
        assert paper_testbed().nodes == 16

    def test_invalid_profile(self):
        with pytest.raises(ConfigurationError):
            HardwareProfile(nodes=0)

    def test_cluster_builds_nodes(self):
        env = Environment()
        cluster = Cluster(env, paper_testbed().with_(nodes=3))
        assert len(cluster) == 3
        assert cluster[0].cpu.cores == 16
        assert [n.name for n in cluster] == ["cluster.n0", "cluster.n1", "cluster.n2"]

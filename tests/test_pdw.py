"""Tests for the PDW catalog, movement-planning optimizer, and cost model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.pdw import PdwEngine, PdwParams, distribution_of
from repro.pdw.catalog import REPLICATED, total_distributions
from repro.tpch.volumes import calibrate


@pytest.fixture(scope="module")
def calibration():
    return calibrate(0.01, 42)


@pytest.fixture(scope="module")
def engine(calibration):
    return PdwEngine(calibration)


class TestCatalog:
    def test_table1_distribution_columns(self):
        assert distribution_of("lineitem") == "l_orderkey"
        assert distribution_of("customer") == "c_custkey"
        assert distribution_of("nation") == REPLICATED
        assert distribution_of("region") == REPLICATED

    def test_unknown_table(self):
        with pytest.raises(ConfigurationError):
            distribution_of("widgets")

    def test_128_distributions(self):
        assert total_distributions(16) == 128


class TestMovementPlanning:
    def test_all_specs_resolve(self, engine):
        for number in range(1, 23):
            engine.validate_spec(number)

    def test_q5_reproduces_paper_plan(self, engine):
        """Section 3.3.4.1: shuffle orders on o_custkey; lineitem stays local."""
        result = engine.run_query(5, 16000)
        # customer x (nation x region): replicated dims, no movement.
        cust = result.step("join.q5.cust")
        assert cust.kind == "local_join"
        # orders x customer: customer is aligned on c_custkey, orders is
        # distributed on o_orderkey -> shuffle orders.
        orders_join = result.step("join.q5.join_orders")
        assert orders_join.kind == "shuffle_join"
        assert orders_join.moved_bytes > 0
        # The lineitem join shuffles the (smaller) intermediate, never the
        # lineitem base table.
        line_join = result.step("join.q5.join_lineitem")
        assert line_join.kind == "shuffle_join"
        line_bytes = engine.volumes.bytes("q5.lineitem", 16000)
        assert line_join.moved_bytes < line_bytes * 0.5

    def test_q19_replicates_filtered_part(self, engine):
        """Section 3.3.4.1: PDW replicates the part side rather than shuffle
        the lineitem table."""
        result = engine.run_query(19, 16000)
        join = result.step("join.q19.join")
        assert join.kind == "replicate_right"
        assert "replicated" in join.note
        # The replicated volume is the predicate-pushed subset, far smaller
        # than the full part table.
        assert join.moved_bytes < engine.volumes.bytes("part", 16000)

    def test_colocated_orderkey_join_is_local(self, engine):
        # Q12: lineitem x orders, both distributed on their order keys.
        result = engine.run_query(12, 1000)
        join = result.step("join.q12.join")
        assert join.kind == "local_join"
        assert join.moved_bytes == 0


class TestCostModel:
    def test_memory_cliff(self, engine):
        """SF 250 fits the buffer pool; SF 1000 does not (Q6: 5 s -> 41 s)."""
        assert engine.scan_bandwidth(250) > engine.scan_bandwidth(1000) * 3

    def test_times_grow_with_sf(self, engine):
        for number in (1, 5, 9, 13):
            times = [engine.query_time(number, sf) for sf in (250, 1000, 4000, 16000)]
            assert times == sorted(times)
            assert times[0] > 0

    def test_network_bytes_accounted(self, engine):
        result = engine.run_query(5, 4000)
        assert result.network_bytes > 0

    def test_load_time_linear_and_slower_than_hive(self, engine, calibration):
        from repro.hive import HiveEngine

        hive = HiveEngine(calibration)
        for sf in (250, 1000, 4000):
            assert engine.load_time(sf) > hive.load_time(sf)
        assert engine.load_time(250) / 60 == pytest.approx(79, rel=0.15)

    def test_spill_io_kicks_in_beyond_memory(self, engine):
        no_spill = engine._spill_io(1e9)
        big = engine._spill_io(engine.profile.cluster_memory)
        assert no_spill == 0.0
        assert big > 0.0

    def test_cpu_weight_scales_cpu_only(self, calibration):
        slow = PdwEngine(calibration, cpu_weights={1: 4.0})
        fast = PdwEngine(calibration, cpu_weights={1: 0.5})
        s = slow.run_query(1, 250)
        f = fast.run_query(1, 250)
        assert s.total_time > f.total_time
        assert s.step("scan.q1.scan").io_time == f.step("scan.q1.scan").io_time

    def test_custom_params(self, calibration):
        params = PdwParams(storage_compression=1.0)
        engine = PdwEngine(calibration, params=params)
        assert engine.query_time(6, 4000) > 0


class TestQ5PhaseNarrative:
    """Section 3.3.4.1 gives PDW's Q5 phase times at 16 TB: shuffle orders
    ~258 s, customer-side join+shuffle ~86 s, lineitem join+shuffle ~665 s,
    final joins+aggregation ~40 s (total 1060 s).  The model's steps must
    land in the same order of magnitude."""

    def test_phase_magnitudes(self, engine):
        result = engine.run_query(5, 16000)

        def elapsed(name):
            return result.step(name).elapsed(engine.params.step_overhead)

        orders_shuffle = elapsed("join.q5.join_orders")
        lineitem_phase = elapsed("join.q5.join_lineitem")
        final_phase = elapsed("join.q5.join_supplier") + elapsed(
            "agg.q5.join_supplier"
        )
        # Within ~4x of the paper's phases (the weights are fitted at SF 250).
        assert 258 / 4 < orders_shuffle + elapsed("scan.q5.orders") < 258 * 4
        assert 665 / 4 < lineitem_phase + elapsed("scan.q5.lineitem") < 665 * 4
        assert final_phase < 40 * 6
        # The lineitem phase dominates, as in the paper.
        assert lineitem_phase > orders_shuffle

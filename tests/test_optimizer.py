"""Tests for predicate pushdown: same answers, less data moved."""

import pytest

from repro.relational import (
    ExecutionContext,
    Filter,
    HashJoin,
    Scan,
    col,
    lit,
    run,
)
from repro.relational.optimizer import (
    and_together,
    columns_of,
    optimize,
    output_columns,
    split_conjuncts,
)


class TestExprHelpers:
    def test_split_conjuncts(self):
        expr = (col("a") > lit(1)) & (col("b") < lit(2)) & (col("c") == lit(3))
        parts = split_conjuncts(expr)
        assert len(parts) == 3

    def test_or_is_not_split(self):
        expr = (col("a") > lit(1)) | (col("b") < lit(2))
        assert len(split_conjuncts(expr)) == 1

    def test_and_together_roundtrip(self):
        parts = split_conjuncts((col("a") > lit(1)) & (col("b") < lit(2)))
        rebuilt = and_together(parts)
        assert rebuilt.eval({"a": 5, "b": 0}) is True
        assert rebuilt.eval({"a": 0, "b": 0}) is False
        assert and_together([]) is None

    def test_columns_of(self):
        expr = (col("a") + col("b") > lit(1)) & col("c").like("x%")
        assert columns_of(expr) == {"a", "b", "c"}

    def test_output_columns(self):
        scan = Scan("t", columns=["x", "y"])
        assert output_columns(scan) == {"x", "y"}
        join = HashJoin(Scan("a", columns=["k", "v"]),
                        Scan("b", columns=["k2", "w"]), ["k"], ["k2"])
        assert output_columns(join) == {"k", "v", "k2", "w"}


class TestPushdownEquivalence:
    def _plan(self):
        """orders JOIN customer with a post-join filter touching both sides."""
        join = HashJoin(
            Scan("orders", columns=["o_orderkey", "o_custkey", "o_totalprice"],
                 tag="scan.orders"),
            Scan("customer", columns=["c_custkey", "c_mktsegment"],
                 tag="scan.customer"),
            ["o_custkey"],
            ["c_custkey"],
            tag="join",
        )
        predicate = (col("o_totalprice") > lit(200_000)) & (
            col("c_mktsegment") == lit("BUILDING")
        )
        return Filter(join, predicate)

    def test_same_answers(self, small_db):
        original = run(self._plan(), small_db)
        rewritten = run(optimize(self._plan()), small_db)
        key = lambda r: (r["o_orderkey"],)
        assert sorted(original, key=key) == sorted(rewritten, key=key)
        assert original  # non-trivial

    def test_less_data_through_the_join(self, small_db):
        ctx_orig = ExecutionContext(small_db)
        run(self._plan(), small_db, ctx_orig)
        ctx_opt = ExecutionContext(small_db)
        run(optimize(self._plan()), small_db, ctx_opt)
        # After pushdown the join sees only filtered rows.
        assert ctx_opt.stats["join"].rows < ctx_orig.stats["join"].rows
        # And equals the final answer size (both conjuncts were pushed).
        assert ctx_opt.stats["join"].rows < ctx_orig.stats["join"].rows * 0.5

    def test_mixed_conjunct_stays_above_join(self, small_db):
        join = HashJoin(
            Scan("orders", columns=["o_orderkey", "o_custkey", "o_totalprice"]),
            Scan("customer", columns=["c_custkey", "c_acctbal"]),
            ["o_custkey"],
            ["c_custkey"],
        )
        # References columns from BOTH sides: cannot be pushed.
        predicate = col("o_totalprice") > col("c_acctbal") * lit(10)
        plan = Filter(join, predicate)
        original = run(plan, small_db)
        rewritten_plan = optimize(plan)
        rewritten = run(rewritten_plan, small_db)
        assert isinstance(rewritten_plan, Filter)  # the filter survived
        key = lambda r: r["o_orderkey"]
        assert sorted(original, key=key) == sorted(rewritten, key=key)

    def test_pushdown_into_existing_scan_predicate(self, small_db):
        plan = Filter(
            Scan("orders", predicate=col("o_totalprice") > lit(100_000)),
            col("o_orderkey") < lit(1000),
        )
        original = run(plan, small_db)
        rewritten_plan = optimize(plan)
        rewritten = run(rewritten_plan, small_db)
        assert isinstance(rewritten_plan, Scan)  # fully absorbed
        assert sorted(r["o_orderkey"] for r in original) == sorted(
            r["o_orderkey"] for r in rewritten
        )

    def test_semi_join_pushdown(self, small_db):
        plan = Filter(
            HashJoin(
                Scan("customer", columns=["c_custkey", "c_acctbal"]),
                Scan("orders", columns=["o_custkey"]),
                ["c_custkey"],
                ["o_custkey"],
                how="semi",
            ),
            col("c_acctbal") > lit(5000),
        )
        original = run(plan, small_db)
        rewritten = run(optimize(plan), small_db)
        key = lambda r: r["c_custkey"]
        assert sorted(original, key=key) == sorted(rewritten, key=key)


class TestHiveQlIntegration:
    def test_optimized_hiveql_plan_agrees(self, small_db):
        from repro.hive.hiveql import compile_plan, parse

        sql = (
            "SELECT o_orderkey, c_mktsegment FROM orders o "
            "JOIN customer c ON o.o_custkey = c.c_custkey "
            "WHERE o_totalprice > 300000 AND c_mktsegment = 'BUILDING'"
        )
        plan = compile_plan(parse(sql))
        original = run(plan, small_db)
        rewritten = run(optimize(plan), small_db)
        key = lambda r: r["o_orderkey"]
        assert sorted(original, key=key) == sorted(rewritten, key=key)

"""Tests for the RCFile format, the metastore layouts, and the Hive engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, StorageError
from repro.hive import (
    HiveEngine,
    HiveTableLayout,
    Metastore,
    TPCH_LAYOUTS,
    decode,
    encode,
    measure_compression_ratio,
    read_column,
)
from repro.tpch.volumes import calibrate


@pytest.fixture(scope="module")
def calibration():
    return calibrate(0.01, 42)


@pytest.fixture(scope="module")
def engine(calibration):
    return HiveEngine(calibration)


class TestRcFile:
    ROWS = [
        {"k": 1, "name": "alpha", "price": 1.5, "note": None},
        {"k": 2, "name": "beta", "price": -2.25, "note": "x"},
        {"k": 3, "name": "gamma gamma", "price": 0.0, "note": "yy"},
    ]
    COLS = ["k", "name", "price", "note"]

    def test_roundtrip(self):
        data = encode(self.ROWS, self.COLS)
        cols, rows = decode(data)
        assert cols == self.COLS
        assert rows == self.ROWS

    def test_roundtrip_multiple_row_groups(self):
        rows = [{"i": i, "s": f"value-{i % 7}"} for i in range(1000)]
        data = encode(rows, ["i", "s"], row_group_size=128)
        _, decoded = decode(data)
        assert decoded == rows

    def test_read_single_column_skips_others(self):
        data = encode(self.ROWS, self.COLS)
        assert read_column(data, "name") == ["alpha", "beta", "gamma gamma"]
        with pytest.raises(StorageError):
            read_column(data, "nope")

    def test_bad_magic(self):
        with pytest.raises(StorageError):
            decode(b"not an rcfile")

    def test_compression_on_repetitive_data(self):
        rows = [{"flag": "AAAA", "v": 1} for _ in range(5000)]
        ratio = measure_compression_ratio(rows, ["flag", "v"], raw_width=12)
        assert ratio < 0.5

    def test_tpch_lineitem_compresses(self, small_db):
        from repro.tpch.schema import LINEITEM

        rows = small_db.table("lineitem").rows[:2000]
        ratio = measure_compression_ratio(rows, LINEITEM.names, LINEITEM.row_width)
        assert 0.1 < ratio < 0.8

    @given(
        st.lists(
            st.fixed_dictionaries(
                {
                    "a": st.integers(min_value=-(2**40), max_value=2**40),
                    "b": st.one_of(st.none(), st.text(max_size=20)),
                    "c": st.floats(allow_nan=False, allow_infinity=False, width=32),
                }
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=30)
    def test_roundtrip_property(self, rows):
        data = encode(rows, ["a", "b", "c"], row_group_size=16)
        _, decoded = decode(data)
        assert decoded == rows


class TestMetastore:
    def test_table1_layouts(self):
        assert TPCH_LAYOUTS["lineitem"].bucket_count == 512
        assert TPCH_LAYOUTS["customer"].partition_count == 25
        assert TPCH_LAYOUTS["customer"].bucket_count == 8
        assert TPCH_LAYOUTS["customer"].file_count == 200
        assert TPCH_LAYOUTS["nation"].file_count == 1

    def test_lineitem_has_128_nonempty_files(self):
        ms = Metastore()
        sizes = ms.file_sizes("lineitem", 250)
        assert len(sizes) == 512
        nonempty = [s for s in sizes if s > 0]
        assert len(nonempty) == 128
        # Non-empty files are interleaved (ids = 1..8 mod 32), not contiguous.
        first_32 = sizes[:32]
        assert sum(1 for s in first_32 if s > 0) == 8
        assert first_32[0] == 0.0 and first_32[1] > 0

    def test_total_bytes_match_compression(self):
        ms = Metastore(compression_ratios={"part": 0.3})
        from repro.tpch.schema import table_bytes

        assert ms.compressed_bytes("part", 100) == pytest.approx(
            table_bytes("part", 100) * 0.3
        )

    def test_bucket_compatibility(self):
        ms = Metastore()
        assert ms.buckets_compatible("lineitem", "orders")  # 512 vs 512
        assert ms.buckets_compatible("lineitem", "part")  # 512 vs 8
        assert ms.buckets_compatible("customer", "part")  # 8 vs 8

    def test_invalid_layout(self):
        with pytest.raises(ConfigurationError):
            HiveTableLayout("x", bucket_count=0)
        with pytest.raises(ConfigurationError):
            HiveTableLayout("x", nonempty_bucket_fraction=0.0)
        with pytest.raises(ConfigurationError):
            Metastore().layout("nope")


class TestHiveEngine:
    def test_all_specs_resolve(self, engine):
        for number in range(1, 23):
            engine.validate_spec(number)

    def test_query_times_positive_and_grow_with_sf(self, engine):
        for number in (1, 5, 6, 19):
            t250 = engine.query_time(number, 250)
            t1000 = engine.query_time(number, 1000)
            assert 0 < t250 < t1000

    def test_q1_has_map_heavy_agg_job(self, engine):
        result = engine.run_query(1, 250)
        agg = result.job("agg.q1.agg")
        # 384 empty bucket files plus the 128 non-empty ones (each split into
        # one task per 256 MB block).
        assert agg.map_tasks >= 512
        assert agg.map_time > 60

    def test_q22_structure_matches_paper(self, engine):
        result = engine.run_query(22, 250)
        names = [j.name for j in result.jobs]
        assert "mat.q22.candidates" in names  # sub-query 1
        assert "fs.0" in names  # the filesystem job
        assert any(n.startswith("agg.q22.avg") for n in names)  # sub-query 2
        assert any(n.startswith("agg.q22.orders") for n in names)  # sub-query 3

    def test_q22_map_join_always_fails(self, engine):
        """Table 5: the sub-query 4 map join fails at every scale factor."""
        for sf in (250, 1000, 4000, 16000):
            result = engine.run_query(22, sf)
            join = result.job("join.q22.anti")
            assert join.failed_mapjoin
            assert join.map_time >= engine.base_params.mapjoin_failure_delay

    def test_small_dimension_map_joins_succeed(self, engine):
        result = engine.run_query(5, 250)
        nr = result.job("join.q5.nation_region")
        assert not nr.failed_mapjoin
        assert "map-side join succeeded" in nr.notes

    def test_q5_hive_order_uses_common_joins_on_lineitem(self, engine):
        result = engine.run_query(5, 1000)
        job = result.job("join.q5.hive.join_lineitem")
        assert "common join" in job.notes
        assert job.shuffle_time > 0

    def test_customer_bucket_splits_at_16tb(self, engine):
        """Q22 sub-query 1: 200 map tasks at small SFs, 600 at 16 TB."""
        small = engine.run_query(22, 250).job("mat.q22.candidates")
        big = engine.run_query(22, 16000).job("mat.q22.candidates")
        assert small.map_tasks == 200
        assert big.map_tasks == 600

    def test_load_time_roughly_linear(self, engine):
        t = [engine.load_time(sf) / 60 for sf in (250, 1000, 4000, 16000)]
        assert 30 < t[0] < 50  # paper: 38 minutes
        assert t[3] / t[2] == pytest.approx(4.0, rel=0.15)

    def test_cpu_weight_slows_query(self, calibration):
        slow = HiveEngine(calibration, cpu_weights={1: 4.0})
        fast = HiveEngine(calibration, cpu_weights={1: 1.0})
        assert slow.query_time(1, 1000) > fast.query_time(1, 1000)

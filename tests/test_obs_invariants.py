"""Trace invariants over real simulator runs.

Every trace the stack emits must be structurally sound (children nest inside
parents, capacity-1 hold spans never overlap) and must *reconcile*: the
mechanism attribution in the spans has to add up to the headline numbers the
study reports — Q1's map-phase spans against Table 4, hot-lock waits against
the workload A latency gap, PDW step spans against the query total.
"""

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    nesting_violations,
    overlap_violations,
    reconcile,
)

SF = 250


@pytest.fixture(scope="module")
def study():
    from repro.core.dss import DssStudy

    return DssStudy()


class TestHiveTraceInvariants:
    @pytest.fixture(scope="class")
    def q1(self, study):
        result, tracer, metrics = study.trace_query(1, SF, engine="hive")
        return result, tracer, metrics

    def test_nesting_is_sound(self, q1):
        _, tracer, _ = q1
        assert nesting_violations(tracer) == []

    def test_root_span_equals_reported_total(self, q1):
        result, tracer, _ = q1
        root = tracer.find(name="hive.q1")[0]
        assert root.duration == pytest.approx(result.total_time, rel=1e-9)

    def test_job_spans_tile_the_query(self, q1):
        """Jobs run back to back: their spans partition [0, total]."""
        result, tracer, _ = q1
        jobs = sorted(tracer.find(cat="job"), key=lambda s: s.start)
        assert jobs[0].start == 0.0
        for a, b in zip(jobs, jobs[1:]):
            assert b.start == pytest.approx(a.end)
        reconcile(result.total_time, jobs)

    def test_phase_spans_tile_each_job(self, q1):
        _, tracer, _ = q1
        for job_span in tracer.find(cat="job"):
            phases = sorted(
                (s for s in tracer.find(cat="phase")
                 if s.parent == job_span.span_id),
                key=lambda s: s.start,
            )
            assert phases, f"job {job_span.name} has no phase spans"
            reconcile(job_span.duration, phases)

    def test_map_phase_span_matches_table4(self, study, q1):
        """Table 4 reports Q1's map-phase time; the trace must agree."""
        _, tracer, _ = q1
        table4 = study.table4(scale_factors=[SF])[0]
        map_phase = tracer.find(name="agg.q1.agg.map")[0]
        assert map_phase.duration == pytest.approx(table4, rel=1e-9)

    def test_map_task_spans_stay_inside_their_wave_window(self, q1):
        """Task attempts sit inside the map phase and no slot double-books."""
        _, tracer, _ = q1
        tasks = tracer.find(cat="task", prefix="map-task")
        assert tasks
        assert overlap_violations(tasks) == []

    def test_task_makespan_equals_raw_schedule(self, study):
        """The detailed (traced) scheduler must agree with the plain one."""
        from repro.mapreduce.jobs import schedule_tasks, schedule_tasks_detailed

        durations = [6.0 + 0.5 * (i % 7) for i in range(40)]
        plain = schedule_tasks(durations, 8)
        detailed, spans = schedule_tasks_detailed(durations, 8)
        assert detailed == pytest.approx(plain)
        assert len(spans) == len(durations)
        assert max(end for _, _, end in spans) == pytest.approx(plain)

    def test_metrics_reconcile_with_job_results(self, q1):
        result, _, metrics = q1
        assert metrics.value("hive.jobs") == len(result.jobs)
        assert metrics.value("hive.map_tasks") == sum(
            j.map_tasks for j in result.jobs
        )
        assert metrics.value("hive.shuffle_bytes") == pytest.approx(
            sum(j.shuffle_bytes for j in result.jobs)
        )

    def test_q22_mapjoin_failure_visible_in_trace(self, study):
        """Q22's failed map-side join must be attributed in span args."""
        result, tracer, metrics = study.trace_query(22, SF, engine="hive")
        failed = [s for s in tracer.find(cat="job") if s.args["failed_mapjoin"]]
        assert len(failed) == sum(1 for j in result.jobs if j.failed_mapjoin)
        assert len(failed) >= 1
        assert metrics.value("hive.failed_mapjoins") == len(failed)
        assert nesting_violations(tracer) == []


class TestPdwTraceInvariants:
    @pytest.fixture(scope="class")
    def q5(self, study):
        return study.trace_query(5, 1000, engine="pdw")

    def test_nesting_is_sound(self, q5):
        _, tracer, _ = q5
        assert nesting_violations(tracer) == []

    def test_steps_plus_overhead_reconcile(self, q5):
        result, tracer, _ = q5
        steps = tracer.find(cat="step")
        reconcile(result.total_time - result.plan_overhead, steps)
        root = tracer.find(name="pdw.q5")[0]
        assert root.duration == pytest.approx(result.total_time, rel=1e-9)

    def test_steps_are_serial(self, q5):
        _, tracer, _ = q5
        assert overlap_violations(tracer.find(cat="step")) == []

    def test_dms_spans_carry_all_moved_bytes(self, q5):
        result, tracer, metrics = q5
        dms_bytes = sum(s.args["bytes"] for s in tracer.find(cat="dms"))
        moved_with_net = sum(
            s.moved_bytes for s in result.steps if s.net_time > 0
        )
        assert dms_bytes == pytest.approx(moved_with_net)
        assert metrics.value("pdw.dms_bytes") == pytest.approx(
            result.network_bytes
        )

    def test_q5_shuffles_q19_replicates(self, study):
        """The paper's two flagship plans show up as DMS span kinds."""
        _, tr5, _ = study.trace_query(5, 1000, engine="pdw")
        _, tr19, _ = study.trace_query(19, 1000, engine="pdw")
        kinds5 = {s.args["kind"] for s in tr5.find(cat="dms")}
        kinds19 = {s.args["kind"] for s in tr19.find(cat="dms")}
        assert "shuffle_join" in kinds5
        assert any(k.startswith("replicate") for k in kinds19)


class TestOltpTraceInvariants:
    @pytest.fixture(scope="class")
    def workload_a(self):
        from repro.core.oltp import OltpStudy

        tracer, metrics = Tracer(), MetricsRegistry()
        point, sim = OltpStudy().event_sim_point(
            "mongo-as", "A", 20_000, duration=30.0,
            tracer=tracer, metrics=metrics,
        )
        return point, sim, tracer, metrics

    def test_measured_request_spans_reconcile_with_completions(self, workload_a):
        _, sim, tracer, metrics = workload_a
        requests = tracer.find(cat="request")
        measured = [s for s in requests if s.end >= 10.0]  # warmup default
        assert len(measured) == sim.completed_ops
        assert metrics.value("ycsb.measured_ops") == sim.completed_ops

    def test_hold_spans_mutually_exclusive_on_capacity_one(self, workload_a):
        """The hot-lock station has one server: holds must never overlap."""
        _, _, tracer, _ = workload_a
        holds = tracer.find(cat="resource", node="hotlock")
        assert holds
        assert overlap_violations(holds) == []

    def test_lock_wait_spans_explain_workload_a_write_penalty(self, workload_a):
        """The paper blames workload A's update latency on the global write
        lock; in the trace that is hot-lock wait time, which must (a) exist
        and (b) match the wait-time histogram exactly."""
        _, _, tracer, metrics = workload_a
        waits = tracer.find(cat="resource-wait", node="hotlock")
        assert waits, "workload A must queue on the hot lock"
        span_total = sum(s.duration for s in waits)
        hist = metrics.histogram("resource.hotlock.wait_time")
        assert hist.count == len(waits)
        assert hist.total == pytest.approx(span_total)
        assert span_total > 0.0

    def test_cache_gauges_record_the_32kb_story(self, workload_a):
        """Mongo fetches 32 KB per miss — the workload C differentiator."""
        _, _, _, metrics = workload_a
        assert metrics.value("oltp.cache.read_io_bytes") == 32 * 1024
        assert 0.0 < metrics.value("oltp.cache.miss_rate") < 1.0


class TestStoreTraceInvariants:
    def test_docstore_lock_spans_count_every_op(self):
        from repro.docstore.cluster import MongoAsCluster

        tracer, metrics = Tracer(), MetricsRegistry()
        cluster = MongoAsCluster(
            shard_count=4, max_chunk_docs=10, balancer_threshold=2,
            tracer=tracer, metrics=metrics,
        )
        for i in range(150):
            cluster.insert(f"user{i:04d}", {"field0": "v"})
        moved = cluster.run_balancer()
        cluster.read("user0007")

        total_ops = sum(s.ops for s in cluster.shards)
        assert len(tracer.find(cat="lock")) == total_ops
        write_holds = metrics.value("docstore.lock.write_holds")
        read_holds = metrics.value("docstore.lock.read_holds")
        assert write_holds + read_holds == total_ops
        # Per-shard logical clocks never double-book.
        for shard in cluster.shards:
            assert overlap_violations(tracer.find(node=shard.name)) == []

        migrations = tracer.find(cat="migration")
        assert len(migrations) == moved
        assert metrics.value("docstore.migrations") == moved
        assert sum(s.args["docs"] for s in migrations) == (
            metrics.value("docstore.migrated_docs")
        ) == cluster.config.migrated_docs

    def test_sqlstore_page_reads_and_checkpoints(self):
        from repro.sqlstore.server import SqlServerNode

        tracer, metrics = Tracer(), MetricsRegistry()
        node = SqlServerNode(pool_pages=4, checkpoint_interval_ops=40,
                             tracer=tracer, metrics=metrics)
        for i in range(60):
            node.insert(f"key{i:03d}", {"field0": "x" * 200})
        for i in range(60):
            node.read(f"key{i:03d}")

        page_reads = tracer.find(name="page.read")
        assert page_reads, "a 4-page pool must miss"
        assert len(page_reads) == node.pool.misses
        assert metrics.value("sqlstore.page_reads") == node.pool.misses
        assert metrics.value("sqlstore.read_io_bytes") == (
            node.pool.misses * 8192
        )
        checkpoints = tracer.find(name="checkpoint")
        assert len(checkpoints) == 3  # 120 ops / 40-op interval
        assert metrics.value("sqlstore.checkpoints") == 3
        assert metrics.value("sqlstore.ops") == node.ops

    def test_sqlstore_lock_wait_span_on_conflict(self):
        from repro.common.errors import TransactionAborted
        from repro.sqlstore.locks import LockMode
        from repro.sqlstore.server import SqlServerNode

        tracer, metrics = Tracer(), MetricsRegistry()
        node = SqlServerNode(tracer=tracer, metrics=metrics)
        node.insert("k1", {"f": "v"})
        # Simulate a concurrent writer holding k1, then a conflicting reader.
        node.locks.acquire(999, "k1", LockMode.EXCLUSIVE)
        with pytest.raises(TransactionAborted):
            node.read("k1")
        waits = tracer.find(name="lock.wait")
        assert len(waits) == 1
        assert waits[0].args["key"] == "k1"
        assert metrics.value("sqlstore.lock_waits") == 1

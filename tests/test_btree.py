"""Tests for the shared B+-tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.btree import BTree
from repro.common.errors import StorageError


class TestBasics:
    def test_insert_get(self):
        tree = BTree()
        assert tree.insert("b", 2)
        assert tree.insert("a", 1)
        assert tree.get("a") == 1
        assert tree.get("b") == 2
        assert tree.get("c") is None
        assert tree.get("c", default=-1) == -1

    def test_overwrite(self):
        tree = BTree()
        assert tree.insert("k", 1) is True
        assert tree.insert("k", 2) is False  # update, not new
        assert tree.get("k") == 2
        assert len(tree) == 1

    def test_contains_and_len(self):
        tree = BTree()
        for i in range(100):
            tree.insert(i, i * 10)
        assert len(tree) == 100
        assert 50 in tree
        assert 101 not in tree

    def test_delete(self):
        tree = BTree()
        for i in range(50):
            tree.insert(i, i)
        assert tree.delete(25)
        assert not tree.delete(25)
        assert 25 not in tree
        assert len(tree) == 49

    def test_min_max(self):
        tree = BTree()
        with pytest.raises(StorageError):
            tree.min_key()
        for i in (5, 1, 9, 3):
            tree.insert(i, i)
        assert tree.min_key() == 1
        assert tree.max_key() == 9

    def test_invalid_order(self):
        with pytest.raises(StorageError):
            BTree(order=2)


class TestSplitsAndScans:
    def test_many_inserts_force_splits(self):
        tree = BTree(order=8)
        n = 5000
        for i in range(n):
            tree.insert(i, i * 2)
        assert len(tree) == n
        assert tree.height > 2
        for probe in (0, 1, 2500, 4999):
            assert tree.get(probe) == probe * 2

    def test_reverse_and_shuffled_inserts(self):
        from repro.common.rng import TpchRandom64

        tree = BTree(order=8)
        keys = list(range(2000))
        TpchRandom64(5).shuffle(keys)
        for k in keys:
            tree.insert(k, k)
        assert list(k for k, _ in tree.items()) == sorted(keys)

    def test_range_scan(self):
        tree = BTree(order=8)
        for i in range(0, 1000, 2):  # even keys only
            tree.insert(i, i)
        scan = tree.range_scan(100, 5)
        assert [k for k, _ in scan] == [100, 102, 104, 106, 108]
        # Start between keys.
        scan = tree.range_scan(101, 3)
        assert [k for k, _ in scan] == [102, 104, 106]

    def test_range_scan_crosses_leaves(self):
        tree = BTree(order=4)
        for i in range(200):
            tree.insert(i, i)
        scan = tree.range_scan(0, 200)
        assert len(scan) == 200
        assert [k for k, _ in scan] == list(range(200))

    def test_range_scan_edge_cases(self):
        tree = BTree()
        tree.insert(1, "a")
        assert tree.range_scan(2, 10) == []
        assert tree.range_scan(1, 0) == []
        assert tree.range_scan(0, 10) == [(1, "a")]

    @given(st.sets(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_sorted_iteration_property(self, keys):
        tree = BTree(order=6)
        for k in keys:
            tree.insert(k, str(k))
        assert [k for k, _ in tree.items()] == sorted(keys)
        assert len(tree) == len(keys)

    @given(
        st.lists(st.tuples(st.integers(0, 500), st.integers(0, 500)), min_size=1, max_size=200)
    )
    @settings(max_examples=30)
    def test_matches_dict_semantics(self, ops):
        tree = BTree(order=6)
        reference = {}
        for key, value in ops:
            tree.insert(key, value)
            reference[key] = value
        for key, value in reference.items():
            assert tree.get(key) == value
        assert len(tree) == len(reference)

"""Fixed-vs-variable decomposition: fitting, growth factors, paper's finding."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.obs import (
    Tracer,
    decompose_query,
    dumps_decomposition,
    fit_fixed_variable,
    render_decomposition,
)
from repro.obs.decompose import DecompositionReport, phase_times


class TestFitFixedVariable:
    def test_exact_linear_points(self):
        points = [(250.0, 35.0), (1000.0, 110.0), (4000.0, 410.0)]
        fixed, per_sf = fit_fixed_variable(points)
        assert fixed == pytest.approx(10.0)
        assert per_sf == pytest.approx(0.1)

    def test_pure_fixed_phase(self):
        fixed, per_sf = fit_fixed_variable([(250.0, 28.0), (1000.0, 28.0),
                                            (4000.0, 28.0)])
        assert fixed == pytest.approx(28.0)
        assert per_sf == 0.0

    def test_superlinear_phase_clamps_intercept_at_zero(self):
        # Growth faster than the SF ratio fits a negative intercept; the
        # clamp refits the slope through the origin instead.
        points = [(250.0, 10.0), (1000.0, 80.0), (4000.0, 1400.0)]
        fixed, per_sf = fit_fixed_variable(points)
        assert fixed == 0.0
        assert per_sf > 0.0

    def test_single_point_is_all_slope(self):
        assert fit_fixed_variable([(250.0, 50.0)]) == (0.0, 0.2)

    def test_empty_points(self):
        assert fit_fixed_variable([]) == (0.0, 0.0)


class TestDecomposeQuery:
    def _tracer(self, engine, phase_seconds):
        tracer = Tracer()
        t, root_end = 0.0, sum(phase_seconds.values())
        if engine == "hive":
            root = tracer.add("hive.q1", 0.0, root_end, cat="query",
                              node="hive")
            for name, seconds in phase_seconds.items():
                tracer.add(name, t, t + seconds, cat="phase", node="hive",
                           parent=root.span_id)
                t += seconds
        return tracer

    def test_missing_sfs_are_skipped_not_fitted(self):
        runs = {
            250.0: self._tracer("hive", {"j.map": 30.0, "j.overhead": 28.0}),
            1000.0: self._tracer("hive", {"j.map": 120.0, "j.overhead": 28.0}),
            16000.0: None,  # DNF
        }
        q = decompose_query("hive", 1, runs)
        assert q.sfs == [250.0, 1000.0]
        assert q.skipped_sfs == [16000.0]
        assert q.phases["j.overhead"]["fixed"] == pytest.approx(28.0)

    def test_all_runs_missing_rejected(self):
        with pytest.raises(ConfigurationError):
            decompose_query("hive", 1, {250.0: None})

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            phase_times(Tracer(), "sparkle")

    def test_backup_phases_fold_into_stable_keys(self):
        tracer = Tracer()
        root = tracer.add("hive.q7", 0.0, 20.0, cat="query", node="hive")
        tracer.add("join.a.map", 0.0, 10.0, cat="phase", node="hive",
                   parent=root.span_id)
        tracer.add("join.a.map.backup", 10.0, 20.0, cat="phase", node="hive",
                   parent=root.span_id)
        assert phase_times(tracer, "hive") == {"join.a.map": 20.0}


class TestPaperGrowthFactorFinding:
    """The tentpole assertion: Hive's fixed share shrinks with SF, PDW's
    was never large — mechanically reproducing the paper's Table 3 story."""

    @pytest.fixture(scope="class")
    def report(self, causal_study):
        return causal_study.decomposition([1, 22])

    def test_hive_fixed_share_shrinks_with_sf(self, report):
        for number in (1, 22):
            q = report.find("hive", number)
            assert q.fixed_share(250.0) > q.fixed_share(16000.0)
            assert q.fixed_share(250.0) > 0.4  # a large fixed cost at SF 250

    def test_pdw_fixed_share_is_small_and_stays_small(self, report):
        hive = report.find("hive", 1)
        pdw = report.find("pdw", 1)
        assert pdw.fixed_share(250.0) < 0.2
        hive_drop = hive.fixed_share(250.0) - hive.fixed_share(16000.0)
        pdw_drop = pdw.fixed_share(250.0) - pdw.fixed_share(16000.0)
        assert hive_drop > pdw_drop

    def test_growth_factors_reproduce_the_table(self, report):
        # PDW tracks the 4x data growth; Hive starts well below it because
        # the fixed costs amortize (Section 4.2's argument).
        pdw = report.find("pdw", 1).growth_factors()
        hive = report.find("hive", 1).growth_factors()
        assert pdw["250->1000"] > 3.4
        assert pdw["4000->16000"] > 3.8
        assert hive["250->1000"] < 2.5
        assert hive["250->1000"] < hive["4000->16000"] <= 4.0

    def test_q9_hive_dnf_at_16tb_is_skipped(self, causal_study):
        report = causal_study.decomposition([9])
        q9 = report.find("hive", 9)
        assert 16000.0 in q9.skipped_sfs
        assert 16000.0 not in q9.sfs
        assert report.find("pdw", 9).skipped_sfs == []

    def test_totals_match_traced_runtimes(self, report, causal_study):
        q = report.find("hive", 1)
        assert q.totals[250.0] == pytest.approx(
            causal_study.hive_time(1, 250.0), rel=1e-6)
        pdw = report.find("pdw", 1)
        assert pdw.totals[1000.0] == pytest.approx(
            causal_study.pdw_time(1, 1000.0), rel=1e-6)

    def test_serialization_and_render(self, report):
        text = dumps_decomposition(report)
        assert text == dumps_decomposition(report)
        doc = json.loads(text)
        assert doc["schema"] == "repro-decompose/1"
        assert len(doc["queries"]) == 4  # {hive,pdw} x {1,22}
        rendered = render_decomposition(report)
        assert "growth factors" in rendered
        assert "hive" in rendered and "pdw" in rendered

    def test_find_unknown_query_raises(self, report):
        with pytest.raises(KeyError):
            report.find("hive", 13)

    def test_empty_report_serializes(self):
        report = DecompositionReport(sfs=[250.0])
        doc = json.loads(dumps_decomposition(report))
        assert doc["queries"] == []

"""Tests for the EXPLAIN renderings."""

import pytest

from repro.core.explain import explain_hive, explain_pdw, explain_query
from repro.hive.engine import HiveEngine
from repro.pdw.engine import PdwEngine
from repro.tpch.volumes import calibrate


@pytest.fixture(scope="module")
def calibration():
    return calibrate(0.01, 42)


class TestExplainPdw:
    def test_q5_narrative(self, calibration):
        result = PdwEngine(calibration).run_query(5, 16000)
        text = explain_pdw(result)
        assert "PDW plan for Q5" in text
        assert "shuffle_join" in text
        assert "co-located join against a replicated table" in text
        assert "DMS moved" in text
        assert "total network traffic" in text

    def test_q19_shows_replication(self, calibration):
        result = PdwEngine(calibration).run_query(19, 16000)
        text = explain_pdw(result)
        assert "replicate" in text

    def test_q12_colocated(self, calibration):
        result = PdwEngine(calibration).run_query(12, 1000)
        text = explain_pdw(result)
        assert "local_join" in text


class TestExplainHive:
    def test_q5_shows_common_joins_and_waves(self, calibration):
        result = HiveEngine(calibration).run_query(5, 16000)
        text = explain_hive(result)
        assert "Hive plan for Q5" in text
        assert "common join" in text
        assert "map-side join succeeded" in text
        assert "wave(s)" in text
        assert "128 reducers" in text

    def test_q22_flags_map_join_failure(self, calibration):
        result = HiveEngine(calibration).run_query(22, 1000)
        text = explain_hive(result)
        assert "MAP JOIN FAILED" in text

    def test_job_count_matches(self, calibration):
        result = HiveEngine(calibration).run_query(1, 250)
        text = explain_hive(result)
        assert f"{len(result.jobs)} MR jobs" in text


class TestExplainQuery:
    def test_combined_output(self, calibration):
        text = explain_query(6, 1000, calibration)
        assert "Hive plan for Q6" in text
        assert "PDW plan for Q6" in text

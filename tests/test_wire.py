"""Tests for the MongoDB wire protocol framing and server dispatch."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import StorageError
from repro.docstore.mongod import Mongod
from repro.docstore.wire import (
    OP_INSERT,
    OP_QUERY,
    OP_REPLY,
    OP_UPDATE,
    WireServer,
    decode_message,
    encode_insert,
    encode_query,
    encode_reply,
    encode_update,
    parse_header,
)


class TestFraming:
    def test_insert_roundtrip(self):
        frame = encode_insert(7, "usertable", {"_id": "k1", "field0": "v"})
        header, payload = decode_message(frame)
        assert header.op_code == OP_INSERT
        assert header.request_id == 7
        assert header.length == len(frame)
        assert payload == {
            "collection": "usertable",
            "document": {"_id": "k1", "field0": "v"},
        }

    def test_query_roundtrip(self):
        frame = encode_query(9, "usertable", {"_id": "k1"}, n_to_return=1)
        header, payload = decode_message(frame)
        assert header.op_code == OP_QUERY
        assert payload["query"] == {"_id": "k1"}
        assert payload["n_to_return"] == 1

    def test_update_roundtrip(self):
        frame = encode_update(3, "c", {"_id": "k"}, {"$set": {"f": "v2"}})
        header, payload = decode_message(frame)
        assert header.op_code == OP_UPDATE
        assert payload["selector"] == {"_id": "k"}
        assert payload["update"] == {"$set": {"f": "v2"}}

    def test_reply_roundtrip(self):
        frame = encode_reply(9, [{"_id": "a"}, {"_id": "b"}])
        header, payload = decode_message(frame)
        assert header.op_code == OP_REPLY
        assert header.response_to == 9
        assert [d["_id"] for d in payload["documents"]] == ["a", "b"]

    def test_corrupt_frames_rejected(self):
        with pytest.raises(StorageError):
            parse_header(b"short")
        good = encode_insert(1, "c", {"_id": "k"})
        with pytest.raises(StorageError):
            decode_message(good[:-2])  # truncated

    @given(
        st.text(min_size=1, max_size=20).filter(
            lambda s: "\x00" not in s and s.isprintable()
        ),
        st.dictionaries(
            st.sampled_from(["_id", "field0", "field1"]),
            st.text(max_size=40).filter(lambda s: "\x00" not in s),
            min_size=1,
        ),
    )
    @settings(max_examples=40)
    def test_insert_roundtrip_property(self, collection, document):
        frame = encode_insert(1, collection, document)
        _, payload = decode_message(frame)
        assert payload["collection"] == collection
        assert payload["document"] == document


class TestWireServer:
    def test_full_protocol_session(self):
        """Insert, update, and query one record purely through wire frames."""
        server = WireServer(Mongod("m0"))
        assert server.handle(
            encode_insert(1, "usertable", {"_id": "k1", "field0": "v1"})
        ) is None
        assert server.handle(
            encode_update(2, "usertable", {"_id": "k1"}, {"$set": {"field0": "v2"}})
        ) is None
        reply = server.handle(encode_query(3, "usertable", {"_id": "k1"}))
        header, payload = decode_message(reply)
        assert header.op_code == OP_REPLY
        assert header.response_to == 3
        assert payload["documents"][0]["field0"] == "v2"
        assert server.messages_handled == 3

    def test_query_miss_returns_empty_reply(self):
        server = WireServer(Mongod("m0"))
        reply = server.handle(encode_query(1, "usertable", {"_id": "nope"}))
        _, payload = decode_message(reply)
        assert payload["documents"] == []

    def test_safe_mode_getlasterror(self):
        """The paper's safe mode: each write is acked via getLastError —
        an acknowledgement of receipt, not of durability."""
        server = WireServer(Mongod("m0"))
        server.handle(encode_insert(1, "usertable", {"_id": "k", "f": "v"}))
        ack = server.handle(encode_query(2, "admin.$cmd", {"getlasterror": 1}))
        _, payload = decode_message(ack)
        assert payload["documents"][0]["ok"] == 1
        assert payload["documents"][0]["err"] is None

    def test_unknown_command_rejected(self):
        server = WireServer(Mongod("m0"))
        with pytest.raises(StorageError):
            server.handle(encode_query(1, "admin.$cmd", {"shutdown": 1}))

    def test_unsupported_update_shape_rejected(self):
        server = WireServer(Mongod("m0"))
        with pytest.raises(StorageError):
            server.handle(
                encode_update(1, "c", {"_id": "k"}, {"replace": {"a": "b"}})
            )

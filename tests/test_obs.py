"""Unit tests for the repro.obs subsystem: tracer, metrics, exporters."""

import json

import pytest

from repro.common.errors import SimulationError
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    Tracer,
    ascii_timeline,
    chrome_trace,
    chrome_trace_events,
    dumps_chrome_trace,
    nesting_violations,
    overlap_violations,
    reconcile,
    write_chrome_trace,
    write_metrics,
)


class TestTracer:
    def test_add_records_span(self):
        tr = Tracer()
        span = tr.add("work", 1.0, 3.0, cat="phase", node="n1", lane="l1", rows=42)
        assert span.duration == 2.0
        assert span.args == {"rows": 42}
        assert span.span_id == 1
        assert tr.spans == [span]

    def test_backwards_span_rejected(self):
        tr = Tracer()
        with pytest.raises(SimulationError):
            tr.add("bad", 5.0, 4.0)

    def test_zero_length_span_allowed(self):
        tr = Tracer()
        span = tr.add("instant", 2.0, 2.0)
        assert span.duration == 0.0

    def test_span_ids_sequential(self):
        tr = Tracer()
        ids = [tr.add(f"s{i}", 0.0, 1.0).span_id for i in range(5)]
        assert ids == [1, 2, 3, 4, 5]

    def test_begin_end_nesting(self):
        tr = Tracer()
        outer = tr.begin("outer", 0.0)
        inner = tr.begin("inner", 1.0)
        assert inner.parent == outer.span_id
        assert tr.end(2.0) is inner
        assert tr.end(3.0) is outer
        assert inner.end == 2.0 and outer.end == 3.0

    def test_add_autoparents_to_open_span(self):
        tr = Tracer()
        outer = tr.begin("outer", 0.0)
        child = tr.add("child", 0.5, 0.8)
        tr.end(1.0)
        assert child.parent == outer.span_id

    def test_end_without_begin_raises(self):
        tr = Tracer()
        with pytest.raises(SimulationError):
            tr.end(1.0)

    def test_end_before_start_raises(self):
        tr = Tracer()
        tr.begin("x", 5.0)
        with pytest.raises(SimulationError):
            tr.end(4.0)

    def test_find_filters(self):
        tr = Tracer()
        tr.add("a.one", 0, 1, cat="x", node="n1", lane="l1")
        tr.add("a.two", 1, 2, cat="x", node="n2", lane="l1")
        tr.add("b.one", 2, 3, cat="y", node="n1", lane="l2")
        assert len(tr.find(cat="x")) == 2
        assert len(tr.find(node="n1")) == 2
        assert len(tr.find(prefix="a.")) == 2
        assert len(tr.find(name="b.one")) == 1
        assert len(tr.find(cat="x", node="n1")) == 1
        assert tr.find(lane="l2")[0].name == "b.one"

    def test_total_duration_and_nodes(self):
        tr = Tracer()
        tr.add("a", 0, 1, node="z")
        tr.add("b", 0, 2, node="a")
        tr.add("c", 0, 4, node="z")
        assert tr.total_duration(node="z") == 5.0
        # First-seen order, not sorted.
        assert tr.nodes == ["z", "a"]

    def test_children_of(self):
        tr = Tracer()
        parent = tr.add("p", 0, 10)
        kids = [tr.add(f"k{i}", i, i + 1, parent=parent.span_id) for i in range(3)]
        assert tr.children_of(parent) == kids


class TestNullTracer:
    def test_falsy_and_inert(self):
        assert not NULL_TRACER
        assert not NullTracer()
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.add("x", 0, 1) is None
        assert NULL_TRACER.begin("x", 0) is None
        assert NULL_TRACER.end(1.0) is None
        assert NULL_TRACER.find(name="x") == []
        assert NULL_TRACER.total_duration() == 0.0

    def test_real_tracer_truthy_even_when_empty(self):
        assert Tracer()
        assert len(Tracer()) == 0


class TestMetrics:
    def test_counter(self):
        mx = MetricsRegistry()
        mx.counter("c").inc()
        mx.counter("c").inc(2.5)
        assert mx.value("c") == 3.5

    def test_counter_rejects_negative(self):
        mx = MetricsRegistry()
        with pytest.raises(SimulationError):
            mx.counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        mx = MetricsRegistry()
        mx.gauge("g").set(1.0)
        mx.gauge("g").set(9.0)
        assert mx.value("g") == 9.0

    def test_histogram_summary_stats(self):
        mx = MetricsRegistry()
        h = mx.histogram("h")
        for v in (0.5, 1.5, 100.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(102.0)
        assert h.min == 0.5 and h.max == 100.0
        assert h.mean == pytest.approx(34.0)

    def test_histogram_value_shortcut_rejected(self):
        mx = MetricsRegistry()
        mx.histogram("h").observe(1.0)
        with pytest.raises(SimulationError):
            mx.value("h")

    def test_type_mismatch_rejected(self):
        mx = MetricsRegistry()
        mx.counter("m")
        with pytest.raises(SimulationError):
            mx.gauge("m")

    def test_names_sorted_and_as_dict(self):
        mx = MetricsRegistry()
        mx.counter("z.count").inc()
        mx.gauge("a.gauge").set(2.0)
        assert mx.names() == ["a.gauge", "z.count"]
        d = mx.as_dict()
        assert list(d) == ["a.gauge", "z.count"]
        assert d["z.count"] == {"type": "counter", "value": 1.0}

    def test_to_json_deterministic(self):
        mx = MetricsRegistry()
        mx.counter("b").inc()
        mx.counter("a").inc()
        my = MetricsRegistry()
        my.counter("a").inc()
        my.counter("b").inc()
        assert mx.to_json() == my.to_json()


class TestExport:
    def _sample(self):
        tr = Tracer()
        root = tr.add("root", 0.0, 10.0, cat="query", node="engine", lane="q")
        tr.add("step", 1.0, 2.0, cat="phase", node="engine", lane="steps",
               parent=root.span_id, rows=7)
        tr.add("hold", 0.0, 1.0, cat="resource", node="disk", lane="hold")
        return tr

    def test_chrome_events_structure(self):
        tr = self._sample()
        events = chrome_trace_events(tr)
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 3
        # 2 process names + 3 thread names (engine has 2 lanes, disk 1).
        assert len(meta) == 5
        names = {(e["name"], e["args"]["name"]) for e in meta}
        assert ("process_name", "engine") in names
        assert ("process_name", "disk") in names
        step = next(e for e in spans if e["name"] == "step")
        assert step["ts"] == pytest.approx(1e6)
        assert step["dur"] == pytest.approx(1e6)
        assert step["args"]["rows"] == 7
        assert step["args"]["parent"] == 1

    def test_pids_first_seen_order(self):
        tr = self._sample()
        events = chrome_trace_events(tr)
        pid_of = {
            e["args"]["name"]: e["pid"]
            for e in events if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert pid_of == {"engine": 1, "disk": 2}

    def test_metrics_ride_along(self):
        tr = self._sample()
        mx = MetricsRegistry()
        mx.counter("events").inc(3)
        doc = chrome_trace(tr, mx)
        assert doc["otherData"]["metrics"]["events"]["value"] == 3.0
        assert "otherData" not in chrome_trace(tr)

    def test_dumps_is_valid_sorted_json(self):
        payload = dumps_chrome_trace(self._sample())
        doc = json.loads(payload)
        assert len(doc["traceEvents"]) == 8
        # Deterministic encoding: re-dumping parses identically.
        assert json.dumps(doc, sort_keys=True, separators=(",", ":")) == payload

    def test_write_roundtrip(self, tmp_path):
        tr = self._sample()
        mx = MetricsRegistry()
        mx.gauge("g").set(4.0)
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert write_chrome_trace(str(trace_path), tr, mx) == 3
        assert write_metrics(str(metrics_path), mx) == 1
        doc = json.loads(trace_path.read_text())
        assert doc["otherData"]["metrics"]["g"]["value"] == 4.0
        assert json.loads(metrics_path.read_text())["g"]["type"] == "gauge"

    def test_ascii_timeline_renders(self):
        art = ascii_timeline(self._sample(), width=40)
        assert "engine:" in art and "disk:" in art
        assert "#" in art
        assert ascii_timeline(Tracer()) == "(no spans)"

    def test_ascii_timeline_cat_filter_and_lane_cap(self):
        tr = Tracer()
        for i in range(20):
            tr.add("h", i, i + 1, cat="resource", node="disk", lane=f"l{i}")
        tr.add("q", 0, 20, cat="query", node="e", lane="q")
        art = ascii_timeline(tr, cat="resource", max_lanes_per_node=4)
        assert "16 more lane(s)" in art
        assert "e:" not in art


class TestCounterExport:
    """Edge cases for the counter-track exporter and empty observers."""

    def _sampler(self):
        from repro.obs import UtilizationSampler

        s = UtilizationSampler(interval=1.0)
        s.accumulate("engine", "cpu", 0.0, 2.0, level=0.5)
        s.accumulate("nic", "network", 0.0, 2.0, level=0.25)
        s.finish()
        return s

    def test_empty_tracer_is_a_valid_empty_trace(self):
        doc = json.loads(dumps_chrome_trace(Tracer()))
        assert doc["traceEvents"] == []
        assert doc["displayTimeUnit"] == "ms"

    def test_gauges_only_registry_rides_along(self, tmp_path):
        mx = MetricsRegistry()
        mx.gauge("hit_rate").set(0.97)
        doc = json.loads(dumps_chrome_trace(Tracer(), mx))
        assert doc["traceEvents"] == []
        assert doc["otherData"]["metrics"]["hit_rate"]["type"] == "gauge"
        path = tmp_path / "m.json"
        assert write_metrics(str(path), mx) == 1

    def test_counter_events_round_trip(self):
        from repro.obs import chrome_counter_events

        events = chrome_counter_events(self._sampler())
        assert events == json.loads(json.dumps(events))
        assert {e["ph"] for e in events} == {"C"}
        cpu = [e for e in events if e["name"] == "cpu (busy)"]
        assert [e["args"]["busy"] for e in cpu] == [0.5, 0.5]
        assert [e["ts"] for e in cpu] == [0.0, 1e6]

    def test_counter_pids_align_with_span_pids(self):
        tr = Tracer()
        tr.add("q", 0.0, 2.0, cat="query", node="engine", lane="q")
        doc = json.loads(dumps_chrome_trace(tr, sampler=self._sampler()))
        events = doc["traceEvents"]
        span_pid = next(e["pid"] for e in events if e["ph"] == "X")
        cpu_pid = next(e["pid"] for e in events
                       if e["ph"] == "C" and e["name"] == "cpu (busy)")
        # The sampled node the tracer also saw shares its process id...
        assert cpu_pid == span_pid
        # ...and the sampler-only node gets the next first-seen pid.
        nic_pid = next(e["pid"] for e in events
                       if e["ph"] == "C" and e["name"] == "network (busy)")
        assert nic_pid == span_pid + 1

    def test_trace_without_sampler_has_no_counters(self):
        tr = Tracer()
        tr.add("q", 0.0, 1.0, cat="query", node="engine", lane="q")
        doc = chrome_trace(tr)
        assert not [e for e in doc["traceEvents"] if e["ph"] == "C"]


class TestInvariantHelpers:
    def test_nesting_violation_detected(self):
        tr = Tracer()
        parent = tr.add("p", 0.0, 5.0)
        tr.add("ok", 1.0, 2.0, parent=parent.span_id)
        tr.add("escapee", 4.0, 9.0, parent=parent.span_id)
        problems = nesting_violations(tr)
        assert len(problems) == 1
        assert "escapee" in problems[0]

    def test_dangling_parent_detected(self):
        tr = Tracer()
        tr.add("orphan", 0.0, 1.0, parent=999)
        assert "dangling" in nesting_violations(tr)[0]

    def test_overlap_detected_on_same_track_only(self):
        tr = Tracer()
        tr.add("a", 0.0, 2.0, node="n", lane="l")
        tr.add("b", 1.0, 3.0, node="n", lane="l")
        tr.add("c", 1.0, 3.0, node="n", lane="other")
        problems = overlap_violations(tr.spans)
        assert len(problems) == 1
        assert "n/l" in problems[0]

    def test_touching_spans_do_not_overlap(self):
        tr = Tracer()
        tr.add("a", 0.0, 1.0, node="n", lane="l")
        tr.add("b", 1.0, 2.0, node="n", lane="l")
        assert overlap_violations(tr.spans) == []

    def test_reconcile(self):
        tr = Tracer()
        tr.add("a", 0.0, 1.5)
        tr.add("b", 1.5, 4.0)
        assert reconcile(4.0, tr.spans) == pytest.approx(4.0)
        with pytest.raises(AssertionError):
            reconcile(5.0, tr.spans)

"""Tests for the paper-artifact rendering functions."""

import pytest

from repro.core.dss import DssStudy
from repro.core.oltp import OltpStudy
from repro.core.report import (
    render_figure1,
    render_oltp_load_times,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_ycsb_figure,
)


@pytest.fixture(scope="module")
def dss():
    return DssStudy()


@pytest.fixture(scope="module")
def oltp():
    return OltpStudy()


class TestDssRendering:
    def test_table2_mentions_both_systems(self, dss):
        text = render_table2(dss)
        assert "HIVE" in text and "PDW" in text
        assert "38" in text  # the paper's 250 GB Hive load

    def test_table3_has_all_queries_and_summaries(self, dss):
        text = render_table3(dss.table3())
        for q in range(1, 23):
            assert f"Q{q} " in text or f"Q{q}\n" in text or f"Q{q}" in text
        assert "AM-9" in text and "GM-9" in text
        assert "--" in text  # the Q9 DNF cell

    def test_figure1_normalizes_to_one(self, dss):
        text = render_figure1(dss)
        assert "pdw_am" in text and "hive_gm" in text

    def test_table4_and_5(self, dss):
        assert "map-phase" in render_table4(dss)
        t5 = render_table5(dss)
        for sub in (1, 2, 3, 4):
            assert f"Sub-query {sub}" in t5


class TestOltpRendering:
    def test_ycsb_figure_lists_systems_and_crashes(self, oltp):
        text = render_ycsb_figure(
            oltp, "D", [20_000, 40_000], ["read", "insert"]
        )
        assert "sql-cs" in text and "mongo-as" in text and "mongo-cs" in text
        assert "CRASH" in text  # Mongo-AS above 20k

    def test_ycsb_figure_latency_sections(self, oltp):
        text = render_ycsb_figure(oltp, "B", [5_000], ["read", "update"])
        assert "-- read latency --" in text
        assert "-- update latency --" in text

    def test_load_times_text(self, oltp):
        text = render_oltp_load_times(oltp)
        assert "mongo-as" in text and "146" in text
        assert "pre-split" in text

"""Tests for the relational operators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import PlanError
from repro.relational import (
    Agg,
    Aggregate,
    Database,
    Distinct,
    ExecutionContext,
    Filter,
    HashJoin,
    Limit,
    Project,
    Rows,
    Scan,
    Schema,
    Column,
    Sort,
    TableData,
    col,
    lit,
    run,
)


def make_db():
    db = Database()
    orders = TableData(
        "orders",
        Schema.of(Column.int_("o_id"), Column.int_("o_cust"), Column.float_("o_total")),
        [
            {"o_id": 1, "o_cust": 10, "o_total": 100.0},
            {"o_id": 2, "o_cust": 10, "o_total": 50.0},
            {"o_id": 3, "o_cust": 20, "o_total": 75.0},
            {"o_id": 4, "o_cust": 30, "o_total": 20.0},
        ],
    )
    customers = TableData(
        "customers",
        Schema.of(Column.int_("c_id"), Column.str_("c_name", 10)),
        [
            {"c_id": 10, "c_name": "alice"},
            {"c_id": 20, "c_name": "bob"},
            {"c_id": 40, "c_name": "carol"},
        ],
    )
    db.add(orders)
    db.add(customers)
    return db


class TestScanFilterProject:
    def test_scan_all(self):
        assert len(run(Scan("orders"), make_db())) == 4

    def test_scan_with_predicate_and_columns(self):
        rows = run(
            Scan("orders", predicate=col("o_total") > lit(40), columns=["o_id"]),
            make_db(),
        )
        assert rows == [{"o_id": 1}, {"o_id": 2}, {"o_id": 3}]

    def test_unknown_table(self):
        with pytest.raises(PlanError):
            run(Scan("nope"), make_db())

    def test_filter(self):
        rows = run(Filter(Scan("orders"), col("o_cust") == lit(10)), make_db())
        assert [r["o_id"] for r in rows] == [1, 2]

    def test_project_expressions(self):
        rows = run(
            Project(Scan("orders"), {"id": "o_id", "double": col("o_total") * lit(2)}),
            make_db(),
        )
        assert rows[0] == {"id": 1, "double": 200.0}


class TestHashJoin:
    def test_inner(self):
        plan = HashJoin(
            Scan("orders"), Scan("customers"), ["o_cust"], ["c_id"], how="inner"
        )
        rows = run(plan, make_db())
        assert len(rows) == 3  # order 4 has no customer 30
        assert {r["o_id"] for r in rows} == {1, 2, 3}
        assert rows[0]["c_name"] == "alice"

    def test_left_outer_fills_none(self):
        plan = HashJoin(Scan("orders"), Scan("customers"), ["o_cust"], ["c_id"], how="left")
        rows = run(plan, make_db())
        assert len(rows) == 4
        missing = [r for r in rows if r["o_id"] == 4][0]
        assert missing["c_name"] is None

    def test_semi(self):
        plan = HashJoin(Scan("customers"), Scan("orders"), ["c_id"], ["o_cust"], how="semi")
        rows = run(plan, make_db())
        assert {r["c_name"] for r in rows} == {"alice", "bob"}

    def test_anti(self):
        plan = HashJoin(Scan("customers"), Scan("orders"), ["c_id"], ["o_cust"], how="anti")
        rows = run(plan, make_db())
        assert [r["c_name"] for r in rows] == ["carol"]

    def test_one_to_many_expands(self):
        plan = HashJoin(Scan("customers"), Scan("orders"), ["c_id"], ["o_cust"])
        rows = run(plan, make_db())
        assert sum(1 for r in rows if r["c_name"] == "alice") == 2

    def test_invalid_join(self):
        with pytest.raises(PlanError):
            HashJoin(Scan("a"), Scan("b"), ["x"], ["y"], how="cross")
        with pytest.raises(PlanError):
            HashJoin(Scan("a"), Scan("b"), [], [])


class TestAggregate:
    def test_group_by(self):
        plan = Aggregate(
            Scan("orders"),
            keys=["o_cust"],
            aggs={
                "total": Agg("sum", col("o_total")),
                "n": Agg("count"),
                "biggest": Agg("max", col("o_total")),
            },
        )
        rows = {r["o_cust"]: r for r in run(plan, make_db())}
        assert rows[10] == {"o_cust": 10, "total": 150.0, "n": 2, "biggest": 100.0}
        assert rows[30]["n"] == 1

    def test_global_aggregate(self):
        plan = Aggregate(Scan("orders"), keys=[], aggs={"avg": Agg("avg", col("o_total"))})
        rows = run(plan, make_db())
        assert len(rows) == 1
        assert rows[0]["avg"] == pytest.approx(61.25)

    def test_global_aggregate_on_empty_input(self):
        plan = Aggregate(
            Filter(Scan("orders"), col("o_total") > lit(1e9)),
            keys=[],
            aggs={"n": Agg("count"), "s": Agg("sum", col("o_total"))},
        )
        rows = run(plan, make_db())
        assert rows == [{"n": 0, "s": None}]

    def test_count_distinct(self):
        plan = Aggregate(
            Scan("orders"), keys=[], aggs={"custs": Agg("count_distinct", col("o_cust"))}
        )
        assert run(plan, make_db())[0]["custs"] == 3

    def test_invalid_agg(self):
        with pytest.raises(PlanError):
            Agg("median", col("x"))
        with pytest.raises(PlanError):
            Agg("sum")


class TestSortLimitDistinct:
    def test_sort_multi_key(self):
        plan = Sort(Scan("orders"), [("o_cust", False), ("o_total", True)])
        rows = run(plan, make_db())
        assert [(r["o_cust"], r["o_total"]) for r in rows] == [
            (10, 100.0),
            (10, 50.0),
            (20, 75.0),
            (30, 20.0),
        ]

    def test_limit(self):
        assert len(run(Limit(Scan("orders"), 2), make_db())) == 2
        with pytest.raises(PlanError):
            Limit(Scan("orders"), -1)

    def test_distinct(self):
        rows = run(Distinct(Scan("orders"), columns=["o_cust"]), make_db())
        assert sorted(r["o_cust"] for r in rows) == [10, 20, 30]

    @given(st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=40))
    @settings(max_examples=40)
    def test_sort_property(self, values):
        rows_in = [{"v": v} for v in values]
        rows = run(Sort(Rows(rows_in), [("v", False)]), Database())
        assert [r["v"] for r in rows] == sorted(values)


class TestTagsAndStats:
    def test_tagged_operator_records_stats(self):
        db = make_db()
        ctx = ExecutionContext(db)
        plan = Filter(Scan("orders", tag="scan"), col("o_total") > lit(40), tag="filtered")
        run(plan, db, ctx)
        assert ctx.stats["scan"].rows == 4
        assert ctx.stats["filtered"].rows == 3
        assert ctx.stats["filtered"].bytes > 0
        assert ctx.stats["filtered"].avg_width > 0

    def test_rows_operator(self):
        rows = run(Rows([{"x": 1}]), Database())
        assert rows == [{"x": 1}]

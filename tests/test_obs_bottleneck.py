"""Bottleneck attribution: the paper's two headline claims, mechanized.

Acceptance tests for :mod:`repro.obs.bottleneck`:

* Section 4.3 — Q1's map phase at SF 250 is **CPU-bound on RCFile decode**
  (~70 MB/s consumed per node vs the 400 MB/s HDFS could deliver), and the
  slot-occupancy series reconciles against the task spans the same run
  traced.
* Section 5.3 — under workload A the mongods spend **25-45% of their time
  holding the global write lock** (mongostat band), in both the analytic
  MVA fractions and the full-scale event-sim measurement.
"""

import pytest

from repro.core.dss import DssStudy
from repro.core.oltp import OltpStudy
from repro.obs import (
    UtilizationSampler,
    attribute_phases,
    attribute_window,
    lock_band_note,
    render_report,
)
from repro.obs.bottleneck import SATURATED, Attribution


@pytest.fixture(scope="module")
def dss():
    return DssStudy()


@pytest.fixture(scope="module")
def q1_report(dss):
    return dss.bottleneck_report(1, 250.0, engine="hive")


class TestAttributeWindow:
    def _sampler(self):
        s = UtilizationSampler(interval=1.0)
        s.accumulate("hive", "cpu", 0.0, 10.0, level=0.9)
        s.accumulate("hive", "disk", 0.0, 10.0, level=0.2)
        s.finish()
        return s

    def test_argmax_and_note(self):
        att = attribute_window(self._sampler(), "q.map", 0.0, 10.0,
                               node="hive", notes={"cpu": "decode bound"})
        assert att.bottleneck == "cpu"
        assert att.busy == pytest.approx(0.9)
        assert att.note == "decode bound"
        assert att.saturated  # 0.9 >= SATURATED
        assert att.utilizations["disk"] == pytest.approx(0.2)
        assert "q.map" in att.describe() and "SATURATED" in att.describe()

    def test_no_overlap_returns_none(self):
        assert attribute_window(self._sampler(), "late", 50.0, 60.0,
                                node="hive") is None
        assert attribute_window(UtilizationSampler(), "empty", 0.0, 1.0) is None

    def test_tie_breaks_deterministically(self):
        s = UtilizationSampler(interval=1.0)
        s.accumulate("n", "zeta", 0.0, 2.0, level=0.5)
        s.accumulate("n", "alpha", 0.0, 2.0, level=0.5)
        s.finish()
        att = attribute_window(s, "p", 0.0, 2.0, node="n")
        assert att.bottleneck == "alpha"  # label order on exact ties

    def test_min_duration_skips_sub_bucket_phases(self):
        from repro.obs import Tracer

        tracer = Tracer()
        tracer.add("long", 0.0, 5.0, cat="phase", node="hive")
        tracer.add("blip", 5.0, 5.0, cat="phase", node="hive")
        atts = attribute_phases(tracer, self._sampler(), min_duration=1.0)
        assert [a.phase for a in atts] == ["long"]


class TestLockBandNote:
    def test_inside_and_outside(self):
        assert "inside" in lock_band_note(0.38)
        assert "25-45%" in lock_band_note(0.38)
        assert "outside" in lock_band_note(0.97)
        assert "outside" in lock_band_note(0.05)


class TestRenderReport:
    def test_report_lists_ranked_utilizations(self):
        att = Attribution(phase="p", start=0.0, end=2.0, bottleneck="cpu",
                          busy=0.9, utilizations={"cpu": 0.9, "disk": 0.1},
                          note="why")
        text = render_report([att], title="t")
        assert text.splitlines()[0] == "t"
        assert "cpu 90% | disk 10%" in text
        assert "note: why" in text

    def test_empty_report(self):
        assert "no phases attributed" in render_report([])


class TestQ1MapPhaseCpuBound:
    """The Section 4.3 headline: Q1's map phase is CPU-bound on decode."""

    def test_map_phase_attributes_to_cpu(self, q1_report):
        _, attributions, _, _ = q1_report
        maps = [a for a in attributions if a.phase.endswith(".map")]
        assert maps, "Q1 must trace at least one map phase"
        first = maps[0]
        assert first.bottleneck == "cpu"
        assert first.busy > 0.5  # slots mostly pegged across the waves
        assert "RCFile" in first.note
        assert "70" in first.note and "400" in first.note  # the MB/s pair

    def test_full_waves_peg_every_core(self, q1_report):
        _, _, sampler, _ = q1_report
        # While full map waves run, every decode core is busy.
        assert sampler.get("hive", "cpu").peak() == pytest.approx(1.0)

    def test_disk_has_paper_headroom(self, q1_report):
        """HDFS could deliver several times the bandwidth decode consumes."""
        _, attributions, _, _ = q1_report
        first = next(a for a in attributions if a.phase.endswith(".map"))
        assert first.utilizations["cpu"] > 4.0 * first.utilizations["disk"]
        assert first.utilizations["disk"] < SATURATED

    def test_series_reconcile_with_task_spans(self, q1_report):
        """Slot-occupancy integral == traced task-seconds (PR 1 spans)."""
        _, _, sampler, tracer = q1_report
        task_seconds = sum(
            sp.duration for sp in tracer.find(cat="task") if sp.name == "map-task"
        )
        assert task_seconds > 0
        assert sampler.get("hive", "map-slots").integral() == pytest.approx(
            task_seconds, rel=1e-6
        )

    def test_phase_windows_match_phase_spans(self, q1_report):
        _, attributions, _, tracer = q1_report
        spans = {sp.name: sp for sp in tracer.find(cat="phase")}
        for att in attributions:
            assert att.start == pytest.approx(spans[att.phase].start)
            assert att.end == pytest.approx(spans[att.phase].end)

    def test_pdw_steps_attribute_to_hardware(self, dss):
        _, attributions, _, _ = dss.bottleneck_report(1, 250.0, engine="pdw")
        assert attributions
        assert {a.bottleneck for a in attributions} <= {"cpu", "disk", "network"}


class TestWorkloadAGlobalLock:
    """The Section 5.3 headline: mongods spend 25-45% at the global lock."""

    @pytest.fixture(scope="class")
    def study(self):
        return OltpStudy()

    def _lock_row(self, attributions):
        rows = [a for a in attributions if a.bottleneck == "global-lock"]
        assert len(rows) == 1
        return rows[0]

    def test_mva_lock_fraction_in_band(self, study):
        from repro.docstore.mongostat import in_paper_lock_band

        _, attributions, sampler = study.bottlenecks("mongo-as", "A", 6_000)
        assert sampler is None  # analytic mode needs no series
        lock = self._lock_row(attributions)
        assert in_paper_lock_band(100.0 * lock.busy)
        assert "inside the paper's 25-45% mongostat band" in lock.note

    def test_event_sim_measures_the_same_band(self, study):
        from repro.docstore.mongostat import in_paper_lock_band

        _, attributions, sampler = study.bottlenecks(
            "mongo-as", "A", 6_000, sim=True, duration=16.0, warmup=6.0
        )
        lock = self._lock_row(attributions)
        assert in_paper_lock_band(100.0 * lock.busy)
        assert "inside" in lock.note
        # The fraction really is a post-warmup series mean, not MVA output.
        measured = sampler.get("hotlock", "servers").window_mean(6.0, 16.0)
        assert lock.busy == pytest.approx(measured)

    def test_report_renders_both_rows(self, study):
        _, attributions, _ = study.bottlenecks("mongo-as", "A", 6_000)
        text = render_report(attributions, title="workload A")
        assert "global-lock" in text
        assert "mongostat band" in text

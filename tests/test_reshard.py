"""Elastic resharding: topology plans, the migration engine, ring/chunk
handoffs, write safety under chaos, and the repro-reshard/1 report."""

import json

import pytest

from repro.cli import main
from repro.common.errors import (
    ChunkMoving,
    ConfigurationError,
    FaultPlanError,
    ServerCrashed,
    ShardingError,
)
from repro.docstore.cluster import MongoAsCluster, MongoCsCluster
from repro.docstore.reshard import COMMIT_CRITICAL_S, Migration, MigrationEngine
from repro.docstore.ring import HashRing, vnode_point
from repro.faults.chaos import ChaosConfig
from repro.faults.plan import TOPOLOGY_KINDS, FaultPlan, FaultSpec
from repro.faults.reshard import (
    SCHEMA,
    dumps_reshard_report,
    render_reshard_report,
    reshard_report,
    reshard_row,
    validate_reshard_report,
)
from repro.replication import JOURNALED
from repro.sqlstore.cluster import SqlCsCluster
from repro.ycsb.workloads import make_key


class TestTopologyPlan:
    def test_scale_and_drain_parse(self):
        plan = FaultPlan.parse("scale:shards=6@0.3;drain:shard=1@0.6", seed=1)
        kinds = [f.kind for f in plan.faults]
        assert kinds == ["scale", "drain"]
        assert all(k in TOPOLOGY_KINDS for k in kinds)
        assert tuple(plan.topology_faults) == plan.faults

    def test_scale_target_extraction(self):
        spec = FaultSpec("scale", "shards=6", 0.3)
        assert spec.scale_target() == 6
        drain = FaultSpec("drain", "shard=2", 0.4)
        assert drain.drain_target() == 2

    @pytest.mark.parametrize("bad", [
        "scale:shards=x@0.3",     # non-numeric count
        "scale:shards=0@0.3",     # must grow to >= 1
        "scale:count=6@0.3",      # wrong knob name
        "drain:shards=1@0.3",     # drain takes shard=K
        "drain:shard=@0.3",       # empty index
    ])
    def test_malformed_topology_specs_rejected(self, bad):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(bad, seed=1)


class TestHashRingElasticity:
    def test_owner_of_hash_agrees_with_vnode_points(self):
        ring = HashRing(range(4))
        for node in range(4):
            for replica in range(0, ring.vnodes, 7):
                point = vnode_point(node, replica)
                assert ring.owner_of_hash(point) == node

    def test_growing_the_ring_moves_only_arcs_to_the_new_node(self):
        old = HashRing(range(4))
        new = old.with_nodes(range(5))
        keys = [make_key(i) for i in range(500)]
        moved = 0
        for key in keys:
            before, after = old.node_for(key), new.node_for(key)
            if after != before:
                assert after == 4  # minimal movement: arcs only hand *to* it
                moved += 1
        assert 0 < moved < len(keys) // 2

    def test_shrinking_moves_only_the_removed_nodes_keys(self):
        old = HashRing(range(4))
        new = old.with_nodes([0, 1, 3])
        for key in (make_key(i) for i in range(500)):
            if old.node_for(key) != 2:
                assert new.node_for(key) == old.node_for(key)
            else:
                assert new.node_for(key) != 2


class TestMigrationEngine:
    @staticmethod
    def _engine(**kwargs):
        kwargs.setdefault("throttle", 1.0)
        return MigrationEngine(lambda shard: 0.5, 2, **kwargs)

    def test_throttle_validated(self):
        with pytest.raises(ShardingError):
            self._engine(throttle=0.0)
        with pytest.raises(ShardingError):
            self._engine(throttle=1.5)

    def test_copy_catchup_commit_lifecycle(self):
        engine = self._engine()
        engine.submit(Migration(
            source=0, target=1, label="m0",
            covers=lambda key: True,
            count_docs=lambda: 64,
            commit=lambda: 64,
        ), now=0.0)
        assert not engine.idle
        end = engine.run_to_completion(0.0)
        assert engine.idle
        assert engine.migrations == 1
        assert engine.moved_docs == 64
        assert engine.aborted_commits == 0
        assert engine.time_to_rebalance == pytest.approx(end, abs=1e-6)
        assert engine.time_to_rebalance > COMMIT_CRITICAL_S

    def test_throttle_slows_the_rebalance(self):
        def runtime(throttle):
            engine = self._engine(throttle=throttle)
            engine.submit(Migration(
                source=0, target=1, label="m",
                covers=lambda key: True,
                count_docs=lambda: 256,
                commit=lambda: 256,
            ), now=0.0)
            engine.run_to_completion(0.0)
            return engine.time_to_rebalance

        assert runtime(0.25) > runtime(1.0)

    def test_copy_traffic_queues_foreground_ops(self):
        engine = self._engine()
        engine.submit(Migration(
            source=0, target=1, label="m",
            covers=lambda key: True,
            count_docs=lambda: 256,
            commit=lambda: 256,
        ), now=0.0)
        engine.advance(1e-6)  # first batch occupies both FIFOs
        quiet = engine.op_cost(3, 1e-6)   # uninvolved shard: no queueing
        busy = engine.op_cost(0, 1e-6)    # migration source: queues
        assert busy > quiet > 0.0

    def test_dead_shard_aborts_commit_then_retries(self):
        state = {"down": True, "commits": 0}

        def commit():
            if state["down"]:
                raise ServerCrashed("shard is down")
            state["commits"] += 1
            return 10

        engine = self._engine()
        engine.submit(Migration(
            source=0, target=1, label="m",
            covers=lambda key: True,
            count_docs=lambda: 10,
            commit=commit,
        ), now=0.0)
        engine.advance(0.0)   # copy batch in flight
        engine.advance(0.5)   # copy + catchup done; commit window opens
        engine.advance(1.0)   # window elapsed, shard dead: abort
        assert engine.aborted_commits >= 1
        assert engine.migrations == 0
        state["down"] = False
        engine.run_to_completion(1.0)
        assert engine.migrations == 1
        assert state["commits"] == 1
        assert engine.moved_docs == 10

    def test_note_write_becomes_catchup_work(self):
        engine = self._engine()
        migration = Migration(
            source=0, target=1, label="m",
            covers=lambda key: key.startswith("a"),
            count_docs=lambda: 64,
            commit=lambda: 64,
        )
        engine.submit(migration, now=0.0)
        engine.advance(1e-6)  # begins copying
        engine.note_write("abc")    # on the moving range
        engine.note_write("zzz")    # elsewhere: ignored
        assert migration.mods == 1
        engine.run_to_completion(0.0)
        assert engine.stats()["mods_replayed"] == 1


class TestMongoAsElastic:
    @staticmethod
    def _loaded_cluster(shard_count=2, docs=200):
        cluster = MongoAsCluster(
            shard_count=shard_count, max_chunk_docs=10_000,
            mongos_count=2, seed=7,
        )
        cluster.pre_split([make_key(i * docs // 8) for i in range(1, 8)])
        for i in range(docs):
            cluster.insert(make_key(i), {"field0": "v"})
        return cluster

    def test_scale_to_requires_an_engine(self):
        cluster = self._loaded_cluster()
        with pytest.raises(ConfigurationError):
            cluster.scale_to(4)

    def test_scale_up_levels_chunks_and_loses_nothing(self):
        cluster = self._loaded_cluster()
        engine = cluster.attach_reshard(throttle=1.0)
        queued = cluster.scale_to(4, now=0.0)
        assert queued >= 2
        end = engine.run_to_completion(0.0)
        cluster.tick(end + 1.0)  # deferred stray cleanup
        counts = cluster.config.shard_chunk_counts(4)
        assert max(counts) - min(counts) <= 1
        assert cluster.doc_count == 200  # strays deleted, nothing lost
        for i in range(0, 200, 7):
            assert cluster.read(make_key(i)) == {"field0": "v"}

    def test_drain_evacuates_and_retires_the_shard(self):
        cluster = self._loaded_cluster()
        engine = cluster.attach_reshard(throttle=1.0)
        queued = cluster.drain_shard(0, now=0.0)
        assert queued >= 1
        end = engine.run_to_completion(0.0)
        cluster.tick(end + 1.0)
        assert cluster.retired_shards == {0}
        assert all(c.shard != 0 for c in cluster.config.chunks)
        assert len(cluster.shards[0].collection(cluster.collection)) == 0
        for i in range(0, 200, 7):
            assert cluster.read(make_key(i)) == {"field0": "v"}

    def test_drain_guards(self):
        cluster = self._loaded_cluster()
        cluster.attach_reshard()
        with pytest.raises(ShardingError):
            cluster.drain_shard(9)
        cluster.drain_shard(1)
        with pytest.raises(ShardingError):
            cluster.drain_shard(1)  # already drained
        with pytest.raises(ShardingError):
            cluster.drain_shard(0)  # would leave zero active shards

    def test_scale_down_is_drain_not_scale(self):
        cluster = self._loaded_cluster(shard_count=4)
        cluster.attach_reshard()
        with pytest.raises(ShardingError):
            cluster.scale_to(2)


class TestMongoCsElastic:
    @staticmethod
    def _loaded_cluster(shard_count=2, docs=120):
        cluster = MongoCsCluster(shard_count=shard_count, seed=7,
                                 elastic=True)
        for i in range(docs):
            cluster.insert(make_key(i), {"field0": "v"})
        return cluster

    def test_attach_requires_elastic_ring(self):
        cluster = MongoCsCluster(shard_count=2)
        with pytest.raises(ConfigurationError):
            cluster.attach_reshard()

    def test_default_mode_keeps_mod_n_routing(self):
        plain = MongoCsCluster(shard_count=4)
        assert plain.ring is None
        from repro.docstore.cluster import hash_shard
        key = make_key(3)
        assert plain._shard_index(key) == hash_shard(key, 4)

    def test_scale_up_hands_off_arcs_and_loses_nothing(self):
        cluster = self._loaded_cluster()
        engine = cluster.attach_reshard(throttle=1.0)
        queued = cluster.scale_to(3, now=0.0)
        assert queued >= 1
        end = engine.run_to_completion(0.0)
        cluster.tick(end + 1.0)
        assert cluster.doc_count == 120
        new_shard = cluster.shards[2].collection(cluster.collection)
        assert len(new_shard) > 0  # the new node actually took arcs
        for i in range(120):
            assert cluster.read(make_key(i)) == {"field0": "v"}

    def test_drain_hands_arcs_to_survivors(self):
        cluster = self._loaded_cluster(shard_count=3)
        engine = cluster.attach_reshard(throttle=1.0)
        cluster.drain_shard(1, now=0.0)
        end = engine.run_to_completion(0.0)
        cluster.tick(end + 1.0)
        assert cluster.retired_shards == {1}
        assert 1 not in cluster.ring.nodes
        assert len(cluster.shards[1].collection(cluster.collection)) == 0
        for i in range(120):
            assert cluster.read(make_key(i)) == {"field0": "v"}

    def test_scan_stays_exact_mid_migration(self):
        cluster = self._loaded_cluster()
        engine = cluster.attach_reshard(throttle=1.0)
        cluster.scale_to(3, now=0.0)
        # Sample the scan at several points of the handoff, including
        # post-commit/pre-cleanup moments when strays exist.
        t = 0.0
        while not engine.idle and t < 30.0:
            cluster.tick(t)
            try:
                rows = cluster.scan(make_key(0), 10)
            except ChunkMoving:
                t += 0.004
                continue
            assert [r["_id"] for r in rows] == [make_key(i) for i in range(10)]
            t += 0.004

    def test_commit_window_bounces_with_chunk_moving(self):
        cluster = self._loaded_cluster()
        engine = cluster.attach_reshard(throttle=1.0)
        cluster.scale_to(3, now=0.0)
        keys = [make_key(i) for i in range(120)]
        frozen_key, frozen_at = None, None
        t = 0.0
        while engine.migrations < 8 and frozen_key is None and t < 30.0:
            engine.advance(t)
            for key in keys:
                if engine.frozen_shard(key, t) is not None:
                    frozen_key, frozen_at = key, t
                    break
            t += COMMIT_CRITICAL_S / 4
        assert frozen_key is not None, "no commit window covered a live key"
        cluster.tick(frozen_at)
        with pytest.raises(ChunkMoving) as exc:
            cluster.read(frozen_key)
        assert isinstance(exc.value.shard, int)


class TestSqlCsElastic:
    def test_scale_up_moves_rows_transactionally(self):
        cluster = SqlCsCluster(shard_count=2, elastic=True)
        for i in range(80):
            cluster.insert(make_key(i), {"field0": "v"})
        engine = cluster.attach_reshard(throttle=1.0)
        queued = cluster.scale_to(3, now=0.0)
        assert queued >= 1
        end = engine.run_to_completion(0.0)
        cluster.tick(end + 1.0)
        assert engine.moved_docs > 0
        for i in range(80):
            assert cluster.read(make_key(i)) == {"field0": "v"}
        rows = cluster.scan(make_key(0), 10)
        assert [r["_key"] for r in rows] == [make_key(i) for i in range(10)]

    def test_drain_and_retire(self):
        cluster = SqlCsCluster(shard_count=3, elastic=True)
        for i in range(80):
            cluster.insert(make_key(i), {"field0": "v"})
        engine = cluster.attach_reshard(throttle=1.0)
        cluster.drain_shard(2, now=0.0)
        end = engine.run_to_completion(0.0)
        cluster.tick(end + 1.0)
        assert cluster.retired_shards == {2}
        assert cluster.shards[2].keys_in_range("", "￿") == []
        for i in range(80):
            assert cluster.read(make_key(i)) == {"field0": "v"}

    def test_attach_requires_elastic(self):
        cluster = SqlCsCluster(shard_count=2)
        with pytest.raises(ConfigurationError):
            cluster.attach_reshard()


@pytest.fixture(scope="module")
def report():
    return reshard_report(
        systems=["mongo-as", "mongo-cs"], reshard="scale:shards=3@0.3",
        shard_count=2, record_count=150, operations=300, seed=11,
    )


class TestReshardReport:
    def test_validates(self, report):
        validate_reshard_report(report)
        assert report["schema"] == SCHEMA

    def test_topology_actually_changed(self, report):
        for row in report["rows"]:
            assert row["shards_before"] == 2
            assert row["shards_after"] == 3
            assert row["migrations"] >= 1
            assert row["migrated_docs"] > 0
            assert row["time_to_rebalance_s"] > 0.0

    def test_range_and_hash_elasticity_differ(self, report):
        by_system = {r["system"]: r for r in report["rows"]}
        ranged = by_system["mongo-as"]
        hashed = by_system["mongo-cs"]
        assert ranged["sharding"] == "range"
        assert hashed["sharding"] == "hash"
        assert (ranged["migrations"], ranged["migrated_docs"],
                ranged["time_to_rebalance_s"]) != \
               (hashed["migrations"], hashed["migrated_docs"],
                hashed["time_to_rebalance_s"])

    def test_invariant_holds_without_chaos(self, report):
        assert report["invariant_ok"]
        for row in report["rows"]:
            assert row["violations"] == 0
            # Bare clusters make no durability promises, so the ledger has
            # nothing to check — the audit is only non-trivial under
            # replication (TestWriteSafetyUnderChaos covers that).
            assert row["lost_writes"] == 0

    def test_deterministic_bytes(self, report):
        again = reshard_report(
            systems=["mongo-as", "mongo-cs"], reshard="scale:shards=3@0.3",
            shard_count=2, record_count=150, operations=300, seed=11,
        )
        assert dumps_reshard_report(report) == dumps_reshard_report(again)

    def test_render_smoke(self, report):
        text = render_reshard_report(report)
        assert "write-safety invariant across migration: holds" in text
        assert "range" in text and "hash" in text

    def test_reshard_plan_must_contain_a_topology_event(self):
        with pytest.raises(FaultPlanError):
            reshard_row("mongo-as", "kill-shard:0@0.3",
                        shard_count=2, record_count=150, operations=300)


class TestValidation:
    def test_rejects_wrong_schema(self, report):
        bad = dict(report, schema="repro-availability/1")
        with pytest.raises(ConfigurationError):
            validate_reshard_report(bad)

    def test_rejects_missing_row_field(self, report):
        bad = json.loads(dumps_reshard_report(report))
        del bad["rows"][0]["time_to_rebalance_s"]
        with pytest.raises(ConfigurationError):
            validate_reshard_report(bad)

    def test_rejects_zero_migrations(self, report):
        bad = json.loads(dumps_reshard_report(report))
        bad["rows"][0]["migrations"] = 0
        with pytest.raises(ConfigurationError):
            validate_reshard_report(bad)

    def test_rejects_inconsistent_invariant(self, report):
        bad = json.loads(dumps_reshard_report(report))
        bad["rows"][0]["violations"] = 2
        with pytest.raises(ConfigurationError):
            validate_reshard_report(bad)


class TestWriteSafetyUnderChaos:
    """The acceptance scenario: kills land during the migration — including
    on a primary mid-commit — and no write acked at its concern is lost."""

    def test_mongo_as_chaos_during_reshard_loses_nothing(self):
        from repro.replication.config import ReplicationConfig

        row = reshard_row(
            "mongo-as", "scale:shards=3@0.25",
            chaos=ChaosConfig(kills=2, partitions=0, lag_spikes=0),
            concern=JOURNALED,
            replication=ReplicationConfig(replicas=3),
            shard_count=2, record_count=150, operations=400, seed=11,
        )
        assert row["violations"] == 0
        assert row["invariant_ok"]
        assert row["acked_writes"] > 0
        assert row["migrations"] >= 1

    def test_sql_cs_kill_during_commit_aborts_and_retries(self):
        # Bare (unmirrored) SQL shards make kills real outages: chaos lands
        # inside the migration window, the commit aborts (never vacuously
        # flips ownership off a dead source) and retries until it lands.
        row = reshard_row(
            "sql-cs", "scale:shards=6@0.3",
            chaos=ChaosConfig(kills=2, partitions=1, lag_spikes=0),
            shard_count=4, record_count=300, operations=600, seed=11,
        )
        assert row["aborted_commits"] > 0
        assert row["violations"] == 0
        assert row["invariant_ok"]

    def test_primary_kill_during_commit_keeps_acked_writes(self):
        # The acceptance scenario verbatim: a replica-set primary dies while
        # its arc is committing (seed 7 lands a kill inside the window —
        # visible as aborted commits), and the audit still finds every
        # journaled write after recovery.
        from repro.replication.config import ReplicationConfig

        row = reshard_row(
            "mongo-cs", "scale:shards=6@0.3",
            chaos=ChaosConfig(kills=2, partitions=1, lag_spikes=0),
            concern=JOURNALED,
            replication=ReplicationConfig(replicas=3),
            shard_count=4, record_count=300, operations=600, seed=7,
        )
        assert row["aborted_commits"] > 0
        assert row["acked_writes"] > 0
        assert row["checked_writes"] > 0
        assert row["violations"] == 0
        assert row["invariant_ok"]


class TestCli:
    def test_reshard_report_writes_and_validates(self, tmp_path, capsys):
        out = tmp_path / "reshard.json"
        code = main([
            "oltp", "--reshard", "scale:shards=6@0.3",
            "--reshard-report", str(out),
        ])
        assert code == 0
        validate_reshard_report(json.loads(out.read_text()))
        captured = capsys.readouterr().out
        assert "write-safety invariant across migration: holds" in captured

    def test_malformed_spec_is_a_usage_error(self, capsys):
        assert main(["oltp", "--reshard", "scale:shards=x@0.3"]) == 2

    def test_bad_throttle_is_a_usage_error(self, capsys):
        assert main(["oltp", "--reshard", "--reshard-throttle", "1.5"]) == 2

    def test_write_concern_composes_with_reshard(self):
        # The lone --write-concern guard must accept --reshard company;
        # parsing alone proves it (a bad concern name still exits 2).
        assert main(["oltp", "--reshard", "--write-concern", "bogus"]) == 2

"""Tests for the blocking lock manager and deadlock detection."""

import pytest

from repro.common.errors import LockWait, TransactionAborted
from repro.sqlstore.locks import BlockingLockManager, LockMode, WaitsForGraph


class TestWaitsForGraph:
    def test_no_cycle(self):
        g = WaitsForGraph()
        g.add_wait(1, {2})
        g.add_wait(2, {3})
        assert g.find_cycle_from(1) == []

    def test_two_cycle(self):
        g = WaitsForGraph()
        g.add_wait(1, {2})
        g.add_wait(2, {1})
        cycle = g.find_cycle_from(1)
        assert set(cycle) == {1, 2}

    def test_three_cycle(self):
        g = WaitsForGraph()
        g.add_wait(1, {2})
        g.add_wait(2, {3})
        g.add_wait(3, {1})
        assert set(g.find_cycle_from(3)) == {1, 2, 3}

    def test_remove_breaks_cycle(self):
        g = WaitsForGraph()
        g.add_wait(1, {2})
        g.add_wait(2, {1})
        g.remove(2)
        assert g.find_cycle_from(1) == []

    def test_self_wait_ignored(self):
        g = WaitsForGraph()
        g.add_wait(1, {1})
        assert g.find_cycle_from(1) == []


class TestBlockingLockManager:
    def test_conflict_waits_instead_of_aborting(self):
        lm = BlockingLockManager()
        lm.acquire(1, "k", LockMode.EXCLUSIVE)
        with pytest.raises(LockWait):
            lm.acquire(2, "k", LockMode.SHARED)
        # After tx 1 commits, tx 2 proceeds.
        lm.release_all(1)
        lm.acquire(2, "k", LockMode.SHARED)

    def test_classic_deadlock_picks_youngest_victim(self):
        """T1 holds A and wants B; T2 holds B and wants A.  The cycle closes
        on T2's request; T2 (youngest) is the victim."""
        lm = BlockingLockManager()
        lm.acquire(1, "A", LockMode.EXCLUSIVE)
        lm.acquire(2, "B", LockMode.EXCLUSIVE)
        with pytest.raises(LockWait):
            lm.acquire(1, "B", LockMode.EXCLUSIVE)  # T1 now waits for T2
        with pytest.raises(TransactionAborted):
            lm.acquire(2, "A", LockMode.EXCLUSIVE)  # closes the cycle
        assert lm.deadlocks == 1
        # The survivor can now take B (the victim's locks were released).
        lm.acquire(1, "B", LockMode.EXCLUSIVE)

    def test_victim_is_older_transaction_when_younger_holds(self):
        """T3 (young) closes a cycle with T2: T3 is the max txid -> victim
        is T3 itself even though it made the request."""
        lm = BlockingLockManager()
        lm.acquire(2, "A", LockMode.EXCLUSIVE)
        lm.acquire(3, "B", LockMode.EXCLUSIVE)
        with pytest.raises(LockWait):
            lm.acquire(2, "B", LockMode.EXCLUSIVE)
        with pytest.raises(TransactionAborted) as excinfo:
            lm.acquire(3, "A", LockMode.EXCLUSIVE)
        assert "victim" in str(excinfo.value)

    def test_aborted_victim_stays_aborted_until_released(self):
        lm = BlockingLockManager()
        lm.acquire(1, "A", LockMode.EXCLUSIVE)
        lm.acquire(2, "B", LockMode.EXCLUSIVE)
        with pytest.raises(LockWait):
            lm.acquire(2, "A", LockMode.EXCLUSIVE)
        # T1's request closes the cycle; the *other* transaction (2, the
        # youngest) is sacrificed and T1 proceeds silently.
        lm.acquire(1, "B", LockMode.EXCLUSIVE)
        assert lm.deadlocks == 1
        # Victim 2 discovers its fate on its next lock request.
        with pytest.raises(TransactionAborted):
            lm.acquire(2, "C", LockMode.SHARED)
        # After the victim formally releases (rollback), it can start over.
        lm.release_all(2)
        lm.acquire(2, "C", LockMode.SHARED)

    def test_shared_locks_do_not_deadlock(self):
        lm = BlockingLockManager()
        lm.acquire(1, "A", LockMode.SHARED)
        lm.acquire(2, "A", LockMode.SHARED)
        lm.acquire(1, "B", LockMode.SHARED)
        lm.acquire(2, "B", LockMode.SHARED)
        assert lm.deadlocks == 0

    def test_wait_chain_without_cycle(self):
        lm = BlockingLockManager()
        lm.acquire(1, "A", LockMode.EXCLUSIVE)
        with pytest.raises(LockWait):
            lm.acquire(2, "A", LockMode.EXCLUSIVE)
        with pytest.raises(LockWait):
            lm.acquire(3, "A", LockMode.EXCLUSIVE)
        assert lm.deadlocks == 0

"""The run-diff layer: ``repro.obs.compare`` and the CLI ``--compare`` mode.

Exercises all three diffable kinds (repro-bench/1, repro-prof/1,
repro-live/1), the subsystem attribution line the tentpole demands
("p99 +18%: 71% digest updates, ..."), the noise-vs-regression
significance rule, and the CLI exit conventions.
"""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.obs import (
    compare_files,
    compare_runs,
    dumps_compare_report,
    host_delta,
    render_compare_report,
    validate_compare_report,
    write_compare_report,
)


def _bench(pr, benchmarks, smoke=False, host=None):
    doc = {"schema": "repro-bench/1", "pr": pr, "smoke": smoke,
           "python": "3.11.7", "benchmarks": benchmarks}
    if host:
        doc["host"] = host
    return doc


def _bench_entry(seconds, stddev=None, subsystems=None):
    entry = {"seconds": seconds, "runs": 3 if stddev is not None else 1}
    if stddev is not None:
        entry["stddev"] = stddev
    if subsystems is not None:
        entry["profile"] = {"samples": 50, "interval_s": 0.002, "top": [],
                            "subsystems": subsystems}
    return entry


def _subs(**kwargs):
    return {name: {"calls": 1, "total_s": self_s, "self_s": self_s}
            for name, self_s in kwargs.items()}


class TestBenchCompare:
    def test_attribution_names_dominant_subsystem(self):
        a = _bench(8, {"eventsim": _bench_entry(
            1.0, subsystems=_subs(**{"digest.update": 0.2,
                                     "eventsim.loop": 0.6}))})
        b = _bench(9, {"eventsim": _bench_entry(
            2.0, subsystems=_subs(**{"digest.update": 0.91,
                                     "eventsim.loop": 0.82}))})
        report = compare_runs(a, b)
        validate_compare_report(report)
        [line] = report["attribution"]
        assert line.startswith("eventsim +100")
        assert "% digest.update" in line
        assert "% eventsim.loop" in line
        # dominant contributor is listed first
        assert line.index("digest.update") < line.index("eventsim.loop")

    def test_within_noise_is_not_significant(self):
        a = _bench(8, {"x": _bench_entry(1.00, stddev=0.2)})
        b = _bench(9, {"x": _bench_entry(1.30, stddev=0.2)})
        report = compare_runs(a, b)
        [row] = [r for r in report["rows"] if r["metric"] == "x.seconds"]
        assert row["noise"] == 0.2
        assert not row["significant"]  # 0.3 < 2 * 0.2
        assert report["attribution"] == []

    def test_beyond_noise_is_significant(self):
        a = _bench(8, {"x": _bench_entry(1.00, stddev=0.05)})
        b = _bench(9, {"x": _bench_entry(1.30, stddev=0.05)})
        report = compare_runs(a, b)
        [row] = [r for r in report["rows"] if r["metric"] == "x.seconds"]
        assert row["significant"]

    def test_unprofiled_regression_points_at_profile_flag(self):
        a = _bench(8, {"x": _bench_entry(1.0)})
        b = _bench(9, {"x": _bench_entry(2.0)})
        report = compare_runs(a, b)
        [line] = report["attribution"]
        assert "--profile" in line

    def test_names_filter_restricts_the_diff(self):
        a = _bench(8, {"x": _bench_entry(1.0), "y": _bench_entry(1.0)})
        b = _bench(9, {"x": _bench_entry(2.0), "y": _bench_entry(2.0)})
        report = compare_runs(a, b, names=["y"])
        assert [r["metric"] for r in report["rows"]] == ["y.seconds"]

    def test_smoke_flavour_mismatch_is_noted(self):
        a = _bench(8, {"x": _bench_entry(1.0)}, smoke=True)
        b = _bench(9, {"x": _bench_entry(1.0)}, smoke=False)
        report = compare_runs(a, b)
        assert any("smoke flavours differ" in n for n in report["notes"])

    def test_host_difference_is_noted(self):
        host_a = {"python": "3.11.7", "machine": "x86_64", "cpu_count": 1}
        host_b = {"python": "3.12.1", "machine": "arm64", "cpu_count": 8}
        a = _bench(8, {"x": _bench_entry(1.0)}, host=host_a)
        b = _bench(9, {"x": _bench_entry(1.0)}, host=host_b)
        report = compare_runs(a, b)
        assert any("hosts differ" in n for n in report["notes"])
        assert host_delta(host_a, host_b)
        assert host_delta(host_a, dict(host_a)) == []


class TestProfAndLiveCompare:
    def _prof_doc(self, wall, loop, digest, scenario="s"):
        return {
            "schema": "repro-prof/1",
            "scenario": {"kind": scenario},
            "host": {"python": "3.11.7"},
            "wall_s": wall,
            "sampler": {"interval_s": 0.002, "samples": 10,
                        "distinct_stacks": 3},
            "subsystems": _subs(**{"eventsim.loop": loop,
                                   "digest.update": digest}),
            "hot": [],
            "throughput": {"events": 1000, "events_per_wall_s": 1000 / wall,
                           "virtual_s": 30.0,
                           "events_per_virtual_s": 33.3},
        }

    def test_prof_diff_attributes_wall_regression(self):
        a = self._prof_doc(1.0, loop=0.5, digest=0.3)
        b = self._prof_doc(1.8, loop=0.55, digest=1.0)
        report = compare_runs(a, b)
        validate_compare_report(report)
        metrics = {r["metric"] for r in report["rows"]}
        assert "wall_s" in metrics
        assert "subsystem/digest.update" in metrics
        assert "throughput/events_per_wall_s" in metrics
        [line] = report["attribution"]
        assert line.startswith("wall +80")
        assert "% digest.update" in line

    def test_live_diff_attributes_p99(self):
        def live(p99, throughput, errors):
            return {"schema": "repro-live/1", "scenario": {"kind": "chaos"},
                    "totals": {"throughput": throughput, "p50": 1.0,
                               "p95": 3.0, "p99": p99, "p999": 9.0,
                               "mean": 1.5, "ops": 500, "errors": errors,
                               "censored": 0}}

        report = compare_runs(live(5.0, 800.0, 2), live(5.9, 640.0, 10))
        validate_compare_report(report)
        [line] = report["attribution"]
        assert line.startswith("p99 +18%")
        assert "throughput -20%" in line
        assert "errors +8" in line

    def test_kind_mismatch_raises(self):
        bench = _bench(8, {"x": _bench_entry(1.0)})
        prof = self._prof_doc(1.0, 0.5, 0.3)
        with pytest.raises(ConfigurationError):
            compare_runs(bench, prof)


class TestCompareFilesAndRendering:
    def test_compare_files_roundtrip(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(_bench(8, {"x": _bench_entry(1.0)})))
        b.write_text(json.dumps(_bench(9, {"x": _bench_entry(3.0)})))
        report = compare_files(str(a), str(b))
        validate_compare_report(report)
        assert report["a"]["label"] == str(a)
        text = render_compare_report(report)
        assert "x.seconds" in text
        assert text.isascii()
        dumped = dumps_compare_report(report)
        assert dumped.endswith("\n")
        assert json.loads(dumped) == report
        out = tmp_path / "cmp.json"
        write_compare_report(report, str(out))
        assert json.loads(out.read_text()) == report

    def test_load_rejects_unknown_schema_and_missing_file(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"schema": "bogus/1"}')
        with pytest.raises(ConfigurationError):
            compare_files(str(bogus), str(bogus))
        with pytest.raises(ConfigurationError):
            compare_files(str(tmp_path / "missing.json"), str(bogus))
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        with pytest.raises(ConfigurationError):
            compare_files(str(broken), str(broken))


class TestCompareCli:
    def test_compare_prints_table_and_writes_report(self, tmp_path, capsys):
        from repro.cli import main

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(_bench(8, {"x": _bench_entry(1.0)})))
        b.write_text(json.dumps(_bench(9, {"x": _bench_entry(3.0)})))
        out = tmp_path / "cmp.json"
        code = main(["--compare", str(a), str(b),
                     "--compare-report", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "run diff (bench)" in printed
        assert "x.seconds" in printed
        validate_compare_report(json.loads(out.read_text()))

    def test_compare_malformed_input_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"schema": "bogus/1"}')
        assert main(["--compare", str(bogus), str(bogus)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_compare_missing_file_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        missing = str(tmp_path / "missing.json")
        assert main(["--compare", missing, missing]) == 2
        assert "error:" in capsys.readouterr().err

    def test_compare_report_without_compare_exits_two(self, capsys):
        from repro.cli import main

        assert main(["--compare-report", "/tmp/x.json",
                     "oltp", "--workload", "A"]) == 2
        assert "error:" in capsys.readouterr().err

"""The live telemetry pipeline end to end (repro.obs.live).

Covers the collector, the ``repro-live/1`` report shape, the headline
chaos scenario (a primary kill fires a burn-rate alert attributed to the
kill and clears after failover), CLI wiring, and the zero-cost-off
contract: runs without ``live=`` must not touch the digest layer at all.
"""

import inspect
import json

import pytest

from repro.common.errors import ConfigurationError
from repro.obs import (
    LiveTelemetry,
    build_live_report,
    dumps_live_report,
    parse_slo_rules,
    render_live_report,
    validate_live_report,
)


def collect_simple(rules=None):
    live = LiveTelemetry(slice_s=1.0, rules=rules)
    for i in range(40):
        live.record_op(i * 0.1, 0.002, cls="read")
    live.record_op(4.05, 0.5, error=True, cls="update")
    live.record_censored(5.0, 0.3)
    live.finish(5.0)
    return live


class TestCollector:
    def test_counters_and_windows(self):
        live = collect_simple()
        assert live.ops == 40
        assert live.errors == 1
        assert live.censored == 1
        assert live.record_calls == 42
        # First slice holds completions at t in [0, 1): i = 0..9.
        assert live.window(0.0, 1.0).count == 10
        assert live.errors_in(4.0, 5.0) == 1
        assert live.errors_in(0.0, 4.0) == 0
        assert live.class_digests["read"].count == 40
        assert live.class_errors == {"update": 1}

    def test_monitor_evaluated_online_at_boundaries(self):
        rules = parse_slo_rules("p99<=100ms@1s,2s")
        live = LiveTelemetry(slice_s=1.0, rules=rules)
        for i in range(20):
            live.record_op(i * 0.1, 0.002)
        for i in range(20):
            live.record_op(2.0 + i * 0.05, 0.5)
        # The bad slice's boundary evaluation happens as soon as a later
        # record crosses it — before finish().
        live.record_op(3.05, 0.002)
        assert live.monitor.alerts, "alert must fire online, not at finish"
        live.finish(4.0)
        assert live.alerts[0].cleared_at is not None

    def test_report_roundtrip_and_determinism(self):
        def build():
            live = collect_simple(parse_slo_rules("p99<=100ms@1s,2s"))
            return build_live_report(live, {"kind": "unit"})

        report = build()
        validate_live_report(report)
        assert dumps_live_report(report) == dumps_live_report(build())
        text = render_live_report(report)
        assert "live telemetry" in text
        assert "telemetry overhead" in text

    def test_unfinished_collector_rejected(self):
        live = LiveTelemetry()
        live.record_op(0.5, 0.001)
        with pytest.raises(ConfigurationError):
            build_live_report(live, {})

    def test_validate_rejects_missing_fields(self):
        live = collect_simple()
        report = build_live_report(live, {"kind": "unit"})
        del report["totals"]["p99"]
        with pytest.raises(ConfigurationError):
            validate_live_report(report)


class TestChaosLiveReport:
    """The PR's acceptance scenario, via the study entry point."""

    @pytest.fixture(scope="class")
    def report(self):
        from repro.core.oltp import OltpStudy

        return OltpStudy().live_report(span_sample="0.05")

    def test_schema_and_determinism(self, report):
        from repro.core.oltp import OltpStudy

        validate_live_report(report)
        again = OltpStudy().live_report(span_sample="0.05")
        assert dumps_live_report(report) == dumps_live_report(again)

    def test_kill_fires_attributed_alert_that_clears(self, report):
        kill_alerts = [
            a for a in report["alerts"]
            if a["event"] and a["event"].startswith(("kill-member",
                                                     "partition-member"))
        ]
        assert kill_alerts, f"no attributed alerts in {report['alerts']}"
        for alert in kill_alerts:
            assert alert["cleared_at"] is not None
            assert alert["peak_burn"] >= 1.0

    def test_events_cover_the_fault_log(self, report):
        labels = [e["label"] for e in report["events"]]
        assert any(label.startswith("kill-member") for label in labels)

    def test_span_sampling_stats_present(self, report):
        stats = report["telemetry"]["span_sampling"]
        assert stats["kept"] + stats["dropped"] == stats["recorded"]
        assert stats["kept"] < stats["recorded"]  # it actually sampled

    def test_memory_stays_bounded(self, report):
        # 500 ops over ~0.85 s in 0.1 s slices: a handful of digests, each
        # a handful of buckets — nowhere near one entry per op.
        telemetry = report["telemetry"]
        assert telemetry["record_calls"] == 500
        assert telemetry["digest_buckets"] < 100


class TestCli:
    def test_live_report_writes_valid_json(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "live.json"
        assert main(["oltp", "--live-report", str(path),
                     "--span-sample", "0.05"]) == 0
        report = json.loads(path.read_text())
        validate_live_report(report)
        out = capsys.readouterr().out
        assert "live telemetry" in out
        assert "alerts" in out

    def test_malformed_slo_rules_exit_2(self, capsys):
        from repro.cli import main

        assert main(["oltp", "--live-report", "-",
                     "--slo-rules", "p99<=bogus@5s"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_slo_rules_require_live_report(self, capsys):
        from repro.cli import main

        assert main(["oltp", "--slo-rules", "p99<=250ms@5s"]) == 2
        assert "--live-report" in capsys.readouterr().err


class TestZeroCostOff:
    def test_hooks_default_off(self):
        from repro.faults.runner import FaultedYcsbRun
        from repro.ycsb.eventsim import simulate_closed_loop, simulate_open_loop

        for fn in (simulate_closed_loop, simulate_open_loop):
            params = inspect.signature(fn).parameters
            assert params["live"].default is None
            assert params["bounded"].default is False
        assert inspect.signature(
            FaultedYcsbRun.__init__).parameters["live"].default is None

    def test_off_path_allocates_no_digests(self, monkeypatch):
        """A run without live= must never touch the digest layer."""
        import repro.obs.digest as digest_mod
        from repro.ycsb.eventsim import SimStation, simulate_open_loop

        calls = {"n": 0}
        original = digest_mod.QuantileDigest.__init__

        def counting(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(digest_mod.QuantileDigest, "__init__", counting)
        stations = [SimStation("disk", 2, {"read": 0.001})]
        simulate_open_loop(stations, {"read": 1.0}, rate=500.0,
                           duration=4.0, warmup=1.0, seed=3)
        assert calls["n"] == 0

    def test_bounded_mode_matches_exact_results(self):
        from repro.ycsb.eventsim import SimStation, simulate_open_loop

        stations = [SimStation("disk", 2, {"read": 0.001})]
        kwargs = dict(rate=500.0, duration=4.0, warmup=1.0, seed=3)
        exact = simulate_open_loop(stations, {"read": 1.0}, **kwargs)
        live = LiveTelemetry(slice_s=0.5)
        bounded = simulate_open_loop(stations, {"read": 1.0}, live=live,
                                     bounded=True, **kwargs)
        # Counting stats are byte-identical; percentiles within the
        # digest's one-log-bucket bound.
        assert bounded.throughput == exact.throughput
        assert bounded.completed_ops == exact.completed_ops
        assert bounded.window_throughputs == exact.window_throughputs
        assert exact.p99 <= bounded.p99 <= exact.p99 * live.growth * 1.001
        assert bounded.mean == pytest.approx(exact.mean, rel=0.01)

    def test_bounded_mode_requires_live(self):
        from repro.common.errors import SimulationError
        from repro.ycsb.eventsim import SimStation, simulate_open_loop

        stations = [SimStation("disk", 2, {"read": 0.001})]
        with pytest.raises(SimulationError):
            simulate_open_loop(stations, {"read": 1.0}, rate=500.0,
                               duration=4.0, warmup=1.0, bounded=True)

"""Tests for the end-to-end DSS study: Tables 2-5, Figure 1, shape claims."""

import pytest

from repro.core import paper_data
from repro.core.dss import DssStudy, fit_weight


@pytest.fixture(scope="module")
def study():
    return DssStudy()


class TestFitWeight:
    def test_solves_linear_model(self):
        assert fit_weight(30.0, lambda w: 10.0 + 4.0 * w) == pytest.approx(5.0, rel=1e-3)

    def test_clamps(self):
        assert fit_weight(1e9, lambda w: w) == 25.0
        assert fit_weight(0.0, lambda w: 10 + w) == 0.05


class TestShapeClaims:
    """The qualitative results the reproduction must preserve."""

    def test_pdw_always_beats_hive(self, study):
        table = study.table3()
        for row in table.rows:
            for hive, pdw in zip(row.hive, row.pdw):
                if hive is not None:
                    assert hive > pdw, f"Q{row.query}: Hive {hive} <= PDW {pdw}"

    def test_speedup_shrinks_with_scale(self, study):
        """34x at SF 250 declining toward ~9x at 16 TB."""
        table = study.table3()
        am9_h, am9_p = table.am9("hive"), table.am9("pdw")
        speedups = [h / p for h, p in zip(am9_h, am9_p)]
        assert speedups[0] > speedups[-1]
        assert speedups[0] > 15  # paper: 22x by ratio of means at SF 250
        assert 4 < speedups[-1] < 20  # paper: ~9x at 16 TB

    def test_hive_scales_better_than_pdw_at_small_sf(self, study):
        """Table 3's right side: Hive's 250->1000 growth < PDW's."""
        table = study.table3()
        hive_growth, pdw_growth = [], []
        for row in table.rows:
            h, p = row.scaling("hive"), row.scaling("pdw")
            if h[0] is not None:
                hive_growth.append(h[0])
            pdw_growth.append(p[0])
        avg = lambda xs: sum(xs) / len(xs)
        assert avg(hive_growth) < avg(pdw_growth)

    def test_q9_dnfs_only_at_16tb(self, study):
        assert study.hive_out_of_space(9, 16000)
        assert not study.hive_out_of_space(9, 4000)
        for number in range(1, 23):
            if number == 9:
                continue
            for sf in paper_data.SCALE_FACTORS:
                assert not study.hive_out_of_space(number, sf), f"Q{number}@{sf}"

    def test_table3_q9_row_has_none(self, study):
        row = study.table3().row(9)
        assert row.hive[-1] is None
        assert row.hive[0] is not None
        assert row.pdw[-1] is not None  # PDW completed Q9 everywhere


class TestFittedAccuracy:
    def test_sf250_column_matches_paper(self, study):
        """The fitted column should be within 35% for nearly every query."""
        table = study.table3()
        misses = 0
        for row in table.rows:
            target_h = paper_data.hive_time(row.query, 250)
            target_p = paper_data.pdw_time(row.query, 250)
            if not (0.65 <= row.hive[0] / target_h <= 1.55):
                misses += 1
            if not (0.5 <= row.pdw[0] / target_p <= 2.0):
                misses += 1
        assert misses <= 4

    def test_predictions_within_factor_five(self, study):
        """Unfitted scale factors are predictions; demand ~5x accuracy."""
        import math

        table = study.table3()
        bad = []
        for row in table.rows:
            for i, sf in enumerate(paper_data.SCALE_FACTORS[1:], start=1):
                target = paper_data.hive_time(row.query, sf)
                if target is not None and row.hive[i] is not None:
                    if math.exp(abs(math.log(row.hive[i] / target))) > 5:
                        bad.append(("hive", row.query, sf))
                target = paper_data.pdw_time(row.query, sf)
                if math.exp(abs(math.log(row.pdw[i] / target))) > 5:
                    bad.append(("pdw", row.query, sf))
        assert len(bad) <= 3, bad


class TestPaperArtifacts:
    def test_table2_shape(self, study):
        table2 = study.table2()
        # PDW loads ~2x slower than Hive, both roughly linear in SF.
        for h, p in zip(table2["hive"], table2["pdw"]):
            assert p > 1.5 * h
        assert table2["hive"][0] == pytest.approx(38, rel=0.2)
        assert table2["pdw"][0] == pytest.approx(79, rel=0.2)

    def test_figure1_normalization(self, study):
        fig = study.figure1()
        assert fig["pdw_am"][0] == pytest.approx(1.0)
        assert fig["pdw_gm"][0] == pytest.approx(1.0)
        # Hive's normalized mean at SF 250 is ~22x PDW's.
        assert 10 < fig["hive_am"][0] < 40
        # Everything grows with SF.
        for series in fig.values():
            assert series == sorted(series)

    def test_table4_map_phase_scaling(self, study):
        times = study.table4()
        # Paper: 148, 339, 1258, 5220 — sub-4x growth at the small end
        # (empty-file overhead amortizes), ~4x at the large end.
        assert times[0] == pytest.approx(148, rel=0.35)
        growth = [b / a for a, b in zip(times, times[1:])]
        assert growth[0] < 4.0
        assert growth[-1] == pytest.approx(4.0, rel=0.15)

    def test_table5_subquery_shapes(self, study):
        t5 = study.table5()
        # Sub-query 4 is dominated by the constant map-join failure: nearly
        # flat across scale factors (654 -> 813 in the paper).
        assert t5[4][-1] / t5[4][0] < 1.6
        # Sub-query 3 scans the sparse-bucketed orders table and scales
        # sub-linearly at the small end.
        assert t5[3][1] / t5[3][0] < 4.0
        # Sub-query 2 is small at every scale factor.
        assert max(t5[2]) < 600

"""Tests for the dbgen-style RNGs, including the paper's RANDOM overflow bug."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import SeedStream, TpchRandom, TpchRandom64, to_int32, to_int64


class TestInt32Semantics:
    def test_to_int32_identity_in_range(self):
        assert to_int32(123) == 123
        assert to_int32(-5) == -5
        assert to_int32(2**31 - 1) == 2**31 - 1

    def test_to_int32_wraps(self):
        assert to_int32(2**31) == -(2**31)
        assert to_int32(3_200_000_000) == 3_200_000_000 - 2**32

    def test_to_int64_wraps(self):
        assert to_int64(2**63) == -(2**63)
        assert to_int64(42) == 42


class TestTpchRandomOverflow:
    """Section 3.3.1: RANDOM produces negative partkeys at SF 16000."""

    def test_partkey_range_overflows_at_sf_16000(self):
        # partkey is drawn on [1, SF * 200_000]; at SF 16000 the span is
        # 3.2e9 > INT32_MAX, so the 32-bit generator must emit negatives.
        rng = TpchRandom(seed=7)
        values = [rng.random_int(1, 16000 * 200_000) for _ in range(2000)]
        assert any(v < 0 for v in values), "expected the paper's overflow bug"

    def test_no_overflow_at_sf_4000(self):
        rng = TpchRandom(seed=7)
        high = 4000 * 200_000  # 8e8 < INT32_MAX: still safe
        values = [rng.random_int(1, high) for _ in range(2000)]
        assert all(1 <= v <= high for v in values)

    def test_random64_fix_never_overflows(self):
        rng = TpchRandom64(seed=7)
        high = 16000 * 200_000
        values = [rng.random_int(1, high) for _ in range(2000)]
        assert all(1 <= v <= high for v in values)

    def test_deterministic_streams(self):
        a = [TpchRandom(seed=5).random_int(1, 100) for _ in range(10)]
        b = [TpchRandom(seed=5).random_int(1, 100) for _ in range(10)]
        assert a == b


class TestTpchRandom64:
    @given(st.integers(min_value=-1000, max_value=1000), st.integers(min_value=0, max_value=5000))
    @settings(max_examples=50)
    def test_random_int_in_bounds(self, low, width):
        rng = TpchRandom64(seed=1234)
        high = low + width
        for _ in range(20):
            assert low <= rng.random_int(low, high) <= high

    def test_random_int_rejects_empty_range(self):
        with pytest.raises(ValueError):
            TpchRandom64(1).random_int(10, 5)

    def test_uniform_and_float_bounds(self):
        rng = TpchRandom64(seed=9)
        for _ in range(100):
            assert 0.0 <= rng.random_float() < 1.0
            assert 2.0 <= rng.uniform(2.0, 3.0) < 3.0

    def test_choice_and_shuffle(self):
        rng = TpchRandom64(seed=3)
        items = list(range(20))
        assert rng.choice(items) in items
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        with pytest.raises(ValueError):
            rng.choice([])

    def test_distribution_roughly_uniform(self):
        rng = TpchRandom64(seed=11)
        counts = [0] * 10
        for _ in range(20_000):
            counts[rng.random_int(0, 9)] += 1
        assert min(counts) > 1500 and max(counts) < 2500


class TestSeedStream:
    def test_stable_and_distinct(self):
        stream = SeedStream(42)
        a = stream.seed_for("ycsb", "a")
        assert a == SeedStream(42).seed_for("ycsb", "a")
        assert a != stream.seed_for("ycsb", "b")
        assert a != SeedStream(43).seed_for("ycsb", "a")

    def test_rng_for_returns_distinct_streams(self):
        stream = SeedStream(1)
        r1 = stream.rng_for("x")
        r2 = stream.rng_for("y")
        assert [r1.random_int(0, 10**9) for _ in range(4)] != [
            r2.random_int(0, 10**9) for _ in range(4)
        ]

"""Tests for BSON, mongod, chunks/balancer, and the two Mongo clusters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ShardUnavailable, ShardingError, StorageError
from repro.docstore import (
    ConfigServer,
    GlobalLock,
    Mongod,
    MongoAsCluster,
    MongoCsCluster,
)
from repro.docstore import bson
from repro.ycsb.workloads import make_key


class TestBson:
    def test_roundtrip_all_types(self):
        doc = {
            "_id": "user1",
            "count": 42,
            "big": 2**40,
            "ratio": 3.25,
            "flag": True,
            "missing": None,
            "nested": {"x": 1, "y": "two"},
        }
        assert bson.decode(bson.encode(doc)) == doc

    def test_ycsb_record_shape(self):
        doc = {"_id": make_key(123), **{f"field{i}": "v" * 100 for i in range(10)}}
        data = bson.encode(doc)
        # 24-byte key + 10 x 100-byte fields plus framing: ~1.1 KB.
        assert 1000 < len(data) < 1400
        assert bson.decode(data) == doc

    def test_rejects_bad_buffers(self):
        with pytest.raises(StorageError):
            bson.decode(b"xx")
        good = bson.encode({"a": 1})
        with pytest.raises(StorageError):
            bson.decode(good[:-1])

    def test_rejects_unsupported_types(self):
        with pytest.raises(StorageError):
            bson.encode({"a": [1, 2]})

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=10).filter(lambda s: "\x00" not in s),
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(min_value=-(2**62), max_value=2**62),
                st.floats(allow_nan=False, allow_infinity=False),
                st.text(max_size=50).filter(lambda s: "\x00" not in s),
            ),
            max_size=10,
        )
    )
    @settings(max_examples=50)
    def test_roundtrip_property(self, doc):
        assert bson.decode(bson.encode(doc)) == doc


class TestGlobalLock:
    def test_readers_share(self):
        lock = GlobalLock()
        lock.acquire_read()
        lock.acquire_read()
        assert lock.readers == 2
        lock.release_read()
        lock.release_read()

    def test_writer_excludes_readers(self):
        lock = GlobalLock()
        lock.acquire_write()
        with pytest.raises(StorageError):
            lock.acquire_read()
        lock.release_write()
        lock.acquire_read()
        with pytest.raises(StorageError):
            lock.acquire_write()

    def test_counters(self):
        mongod = Mongod("m0")
        mongod.insert("c", {"_id": "a", "v": 1})
        mongod.find_one("c", "a")
        mongod.update("c", "a", "v", 2)
        assert mongod.lock.write_acquisitions == 2
        assert mongod.lock.read_acquisitions == 1


class TestMongod:
    def test_crud(self):
        m = Mongod("m0")
        m.insert("c", {"_id": "k1", "f": "v"})
        assert m.find_one("c", "k1") == {"_id": "k1", "f": "v"}
        assert m.update("c", "k1", "f", "w")
        assert m.find_one("c", "k1")["f"] == "w"
        assert m.remove("c", "k1")
        assert m.find_one("c", "k1") is None

    def test_duplicate_id_rejected(self):
        m = Mongod("m0")
        m.insert("c", {"_id": "k", "v": 1})
        with pytest.raises(StorageError):
            m.insert("c", {"_id": "k", "v": 2})

    def test_scan_ordered(self):
        m = Mongod("m0")
        for i in (5, 1, 3, 2, 4):
            m.insert("c", {"_id": make_key(i), "v": i})
        docs = m.scan("c", make_key(2), 3)
        assert [d["v"] for d in docs] == [2, 3, 4]

    def test_bytes_tracked(self):
        m = Mongod("m0")
        m.insert("c", {"_id": "k", "field": "x" * 100})
        assert m.bytes_stored > 100


class TestChunks:
    def test_bootstrap_and_split(self):
        cfg = ConfigServer()
        cfg.bootstrap()
        chunk = cfg.chunk_for("anything")
        left, right = cfg.split_chunk(chunk, "m")
        assert cfg.chunk_for("a") is left
        assert cfg.chunk_for("z") is right
        assert cfg.splits == 1

    def test_pre_split_round_robin(self):
        cfg = ConfigServer()
        cfg.pre_split(["b", "d", "f"], shard_count=2)
        assert len(cfg.chunks) == 4
        assert cfg.shard_chunk_counts(2) == [2, 2]
        assert cfg.chunk_for("a").low is None
        assert cfg.chunk_for("e").low == "d"

    def test_pre_split_validates(self):
        cfg = ConfigServer()
        with pytest.raises(ShardingError):
            cfg.pre_split(["b", "a"], 2)
        cfg2 = ConfigServer()
        cfg2.bootstrap()
        with pytest.raises(ShardingError):
            cfg2.pre_split(["a"], 2)

    def test_split_at_lower_bound_rejected(self):
        """A degenerate split (key == lower bound) would mint an empty chunk
        the balancer then shuffles forever; the config server refuses it."""
        cfg = ConfigServer()
        cfg.bootstrap()
        chunk = cfg.chunk_for("anything")
        with pytest.raises(ShardingError):
            cfg.split_chunk(chunk, "")  # low=None means -inf: "" degenerates
        cfg.split_chunk(chunk, "m")
        right = cfg.chunk_for("m")
        with pytest.raises(ShardingError):
            cfg.split_chunk(right, "m")
        assert cfg.splits == 1

    def test_balancer_moves_chunks_and_docs(self):
        cluster = MongoAsCluster(shard_count=2, max_chunk_docs=10, balancer_threshold=2)
        for i in range(200):
            cluster.insert(make_key(i), {"f": "v"})
        # Ordered inserts pile chunks onto the growing side; rebalance.
        before = cluster.config.shard_chunk_counts(2)
        assert max(before) - min(before) >= 2
        moved = cluster.run_balancer()
        assert moved > 0
        after = cluster.config.shard_chunk_counts(2)
        assert max(after) - min(after) < 2
        assert cluster.config.migrated_docs > 0
        # No documents lost in migration.
        assert cluster.doc_count == 200
        for i in (0, 57, 199):
            assert cluster.read(make_key(i)) is not None


class TestBalancerFaultRace:
    @staticmethod
    def _skewed_cluster():
        cluster = MongoAsCluster(shard_count=2, max_chunk_docs=10,
                                 balancer_threshold=2, mongos_count=1)
        for i in range(120):
            cluster.insert(make_key(i), {"f": "v"})
        assert cluster.balancer.needs_balancing(cluster.config, 2)
        return cluster

    def test_kill_source_aborts_round_and_restart_recovers(self):
        cluster = self._skewed_cluster()
        heavy = max(range(2),
                    key=lambda i: cluster.config.shard_chunk_counts(2)[i])
        cluster.kill_shard(heavy)
        with pytest.raises(ShardUnavailable) as exc:
            cluster.run_balancer()
        assert exc.value.shard == heavy
        # The aborted round flipped no ownership off the dead shard.
        assert cluster.balancer.needs_balancing(cluster.config, 2)
        cluster.restart_shard(heavy)
        assert cluster.run_balancer() > 0
        counts = cluster.config.shard_chunk_counts(2)
        assert max(counts) - min(counts) < 2
        assert cluster.doc_count == 120
        for i in (0, 59, 119):
            assert cluster.read(make_key(i)) is not None

    def test_kill_target_aborts_round_and_restart_recovers(self):
        cluster = self._skewed_cluster()
        light = min(range(2),
                    key=lambda i: cluster.config.shard_chunk_counts(2)[i])
        cluster.kill_shard(light)
        with pytest.raises(ShardUnavailable) as exc:
            cluster.run_balancer()
        assert exc.value.shard == light
        cluster.restart_shard(light)
        assert cluster.run_balancer() > 0
        assert cluster.doc_count == 120

    def test_chunk_counts_stay_consistent_over_split_migrate_cycles(self):
        cluster = MongoAsCluster(shard_count=4, max_chunk_docs=8,
                                 balancer_threshold=2, mongos_count=1)
        for i in range(300):
            cluster.insert(make_key(i), {"f": "v"})
            if i % 50 == 49:
                cluster.run_balancer()
        counts = cluster.config.shard_chunk_counts(4)
        assert sum(counts) == len(cluster.config.chunks)
        assert max(counts) - min(counts) < cluster.balancer.threshold
        assert sum(c.doc_count for c in cluster.config.chunks) == 300
        assert cluster.doc_count == 300
        # Every chunk's doc_count matches what its shard actually holds.
        for chunk in cluster.config.chunks:
            low = chunk.low if chunk.low is not None else ""
            high = chunk.high if chunk.high is not None else "￿"
            held = cluster.shards[chunk.shard].collection(
                "usertable").keys_in_range(low, high)
            assert len(held) == chunk.doc_count


class TestMongoAsCluster:
    def test_crud_roundtrip(self):
        cluster = MongoAsCluster(shard_count=4, max_chunk_docs=50)
        for i in range(300):
            cluster.insert(make_key(i), {"field0": f"v{i}"})
        assert cluster.doc_count == 300
        assert cluster.read(make_key(250))["field0"] == "v250"
        assert cluster.update(make_key(250), "field0", "new")
        assert cluster.read(make_key(250))["field0"] == "new"

    def test_chunks_split_as_data_grows(self):
        cluster = MongoAsCluster(shard_count=4, max_chunk_docs=20)
        for i in range(500):
            cluster.insert(make_key(i), {"f": "v"})
        assert len(cluster.config.chunks) > 5

    def test_scan_is_ordered_and_range_routed(self):
        cluster = MongoAsCluster(shard_count=4, max_chunk_docs=50)
        for i in range(400):
            cluster.insert(make_key(i), {"f": str(i)})
        cluster.run_balancer()
        rows = cluster.scan(make_key(100), 20)
        assert [r["_id"] for r in rows] == [make_key(i) for i in range(100, 120)]
        # A short scan touches far fewer shards than the cluster has.
        assert cluster.shards_touched_by_scan(make_key(100), 20) <= 2

    def test_pre_split_spreads_load(self):
        cluster = MongoAsCluster(shard_count=4)
        boundaries = [make_key(i) for i in (100, 200, 300)]
        cluster.pre_split(boundaries)
        for i in range(400):
            cluster.insert(make_key(i), {"f": "v"})
        counts = [len(s.collection("usertable")) for s in cluster.shards]
        assert min(counts) > 0  # every shard got data with zero migrations
        assert cluster.config.migrations == 0


class TestMongoCsCluster:
    def test_hash_routing_spreads_keys(self):
        cluster = MongoCsCluster(shard_count=8)
        for i in range(800):
            cluster.insert(make_key(i), {"f": str(i)})
        counts = [len(s.collection("usertable")) for s in cluster.shards]
        assert min(counts) > 50  # roughly even

    def test_scan_broadcasts_but_returns_ordered(self):
        cluster = MongoCsCluster(shard_count=8)
        for i in range(500):
            cluster.insert(make_key(i), {"f": str(i)})
        rows = cluster.scan(make_key(100), 10)
        assert [r["_id"] for r in rows] == [make_key(i) for i in range(100, 110)]
        assert cluster.shards_touched_by_scan(make_key(100), 10) == 8

    def test_read_update(self):
        cluster = MongoCsCluster(shard_count=3)
        cluster.insert(make_key(5), {"field1": "a"})
        assert cluster.read(make_key(5)) == {"field1": "a"}
        assert cluster.update(make_key(5), "field1", "b")
        assert cluster.read(make_key(5))["field1"] == "b"
        assert cluster.read(make_key(99)) is None


class TestMongosCaching:
    def test_stale_routes_counted_during_splitting_load(self):
        """An ordered load without pre-split keeps splitting chunks; every
        split invalidates the mongos caches and costs refresh round trips."""
        cluster = MongoAsCluster(shard_count=2, max_chunk_docs=20, mongos_count=2)
        for i in range(300):
            cluster.insert(make_key(i), {"f": "v"})
        assert cluster.config.splits > 3
        assert cluster.stale_routes > 3

    def test_pre_split_load_avoids_staleness(self):
        cluster = MongoAsCluster(shard_count=2, mongos_count=2)
        cluster.pre_split([make_key(i) for i in range(50, 300, 50)])
        for i in range(300):
            cluster.insert(make_key(i), {"f": "v"})
        assert cluster.config.splits == 0
        assert cluster.stale_routes == 0

    def test_round_robin_across_routers(self):
        cluster = MongoAsCluster(shard_count=2, max_chunk_docs=10**9,
                                 mongos_count=4)
        for i in range(40):
            cluster.insert(make_key(i), {"f": "v"})
        refreshes = [r.refreshes for r in cluster.routers]
        assert len(cluster.routers) == 4
        assert all(r == 1 for r in refreshes)  # no splits -> no refreshes

"""Tests for the expression AST."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import PlanError
from repro.relational.expressions import CaseWhen, case, col, date_add, lit


class TestBasicOps:
    def test_comparisons(self):
        row = {"a": 5, "b": 7}
        assert (col("a") < col("b")).eval(row) is True
        assert (col("a") >= lit(5)).eval(row) is True
        assert (col("a") == lit(6)).eval(row) is False
        assert (col("a") != lit(6)).eval(row) is True

    def test_arithmetic(self):
        row = {"price": 100.0, "disc": 0.1}
        revenue = col("price") * (lit(1) - col("disc"))
        assert revenue.eval(row) == pytest.approx(90.0)
        assert (col("price") + lit(1)).eval(row) == 101.0
        assert (col("price") - lit(1)).eval(row) == 99.0
        assert (col("price") / lit(4)).eval(row) == 25.0

    def test_boolean_combinators(self):
        row = {"x": 3}
        assert ((col("x") > lit(1)) & (col("x") < lit(5))).eval(row) is True
        assert ((col("x") > lit(9)) | (col("x") < lit(5))).eval(row) is True
        assert (~(col("x") > lit(1))).eval(row) is False

    def test_missing_column_raises(self):
        with pytest.raises(PlanError):
            col("nope").eval({"a": 1})


class TestSqlHelpers:
    def test_like_percent(self):
        row = {"name": "forest green metallic"}
        assert col("name").like("forest%").eval(row)
        assert col("name").like("%green%").eval(row)
        assert not col("name").like("green%").eval(row)

    def test_like_underscore_and_literal_specials(self):
        assert col("s").like("a_c").eval({"s": "abc"})
        assert not col("s").like("a_c").eval({"s": "abbc"})
        # Regex metacharacters in the pattern must be treated literally.
        assert col("s").like("a.c%").eval({"s": "a.cde"})
        assert not col("s").like("a.c%").eval({"s": "axcde"})

    def test_not_like(self):
        assert col("s").not_like("%special%").eval({"s": "ordinary packages"})

    def test_in_and_between(self):
        row = {"mode": "AIR", "qty": 25}
        assert col("mode").in_(["AIR", "AIR REG"]).eval(row)
        assert col("qty").between(20, 30).eval(row)
        assert not col("qty").between(26, 30).eval(row)

    def test_substr_is_one_based(self):
        assert col("phone").substr(1, 2).eval({"phone": "13-2345"}) == "13"
        with pytest.raises(PlanError):
            col("x").substr(0, 2)

    def test_year(self):
        assert col("d").year().eval({"d": "1995-03-15"}) == 1995

    def test_case_when(self):
        expr = case([(col("t").like("PROMO%"), col("v"))], default=0)
        assert expr.eval({"t": "PROMO BURNISHED", "v": 7.0}) == 7.0
        assert expr.eval({"t": "STANDARD", "v": 7.0}) == 0

    def test_case_requires_branch(self):
        with pytest.raises(PlanError):
            CaseWhen([], lit(0))


class TestDateAdd:
    def test_add_days(self):
        assert date_add("1994-01-01", days=90) == "1994-04-01"

    def test_add_months(self):
        assert date_add("1995-10-15", months=3) == "1996-01-15"

    def test_add_years(self):
        assert date_add("1994-02-28", years=1) == "1995-02-28"

    def test_month_end_clamping(self):
        assert date_add("1994-01-31", months=1) == "1994-02-28"

    @given(st.integers(min_value=0, max_value=2000))
    @settings(max_examples=50)
    def test_days_roundtrip_ordering(self, days):
        later = date_add("1992-01-01", days=days)
        assert later >= "1992-01-01"  # ISO strings order chronologically

"""Recovery semantics: MapReduce task re-execution vs. PDW query restart."""

import pytest

from repro.common.errors import ConfigurationError, FaultPlanError
from repro.core.dss import DssStudy
from repro.faults import FaultPlan, FaultSpec
from repro.faults.report import dss_fault_report
from repro.mapreduce.jobs import (
    schedule_tasks,
    schedule_tasks_detailed,
    schedule_tasks_recovering,
)
from repro.obs import MetricsRegistry, Tracer, UtilizationSampler


@pytest.fixture(scope="module")
def study():
    return DssStudy()


class TestRecoveringScheduler:
    DURATIONS = [10.0, 12.0, 8.0, 11.0, 9.0, 10.0, 12.0, 9.0, 10.0, 11.0]

    def test_no_fault_matches_detailed_schedule(self):
        out = schedule_tasks_recovering(self.DURATIONS, slots=4,
                                        slots_per_node=2)
        makespan, spans = schedule_tasks_detailed(self.DURATIONS, 4)
        assert out.makespan == pytest.approx(makespan)
        assert out.delay == pytest.approx(0.0)
        assert all(kind == "map" for *_rest, kind in out.spans)

    def test_crash_reexecutes_lost_and_inflight_tasks(self):
        out = schedule_tasks_recovering(
            self.DURATIONS, slots=4, slots_per_node=2,
            crash_node=0, crash_time=15.0,
        )
        kinds = [kind for *_rest, kind in out.spans]
        # The crashed node had completed attempts (output lost with its
        # disks) and in-flight attempts (killed at the crash).
        assert "lost" in kinds and "killed" in kinds and "reexec" in kinds
        assert out.reexecuted_tasks == kinds.count("lost") + kinds.count("killed")
        assert out.killed_attempts == kinds.count("killed")
        assert out.wasted_time > 0.0
        assert out.makespan > out.healthy_makespan
        # Every task ends up with exactly one surviving execution.
        survived = kinds.count("map") + kinds.count("reexec")
        assert survived == len(self.DURATIONS)
        # Recovery cannot start before the failure is detected.
        for slot, start, _end, kind in out.spans:
            if kind == "reexec":
                assert start >= 15.0
                assert slot // 2 != 0  # never on the dead node

    def test_crash_delay_is_roughly_the_reexecution_time(self):
        out = schedule_tasks_recovering(
            self.DURATIONS, slots=4, slots_per_node=2,
            crash_node=0, crash_time=15.0,
        )
        reexec_spans = [(e - s) for _sl, s, e, k in out.spans if k == "reexec"]
        # The delay is bounded by the re-executed work (it runs on two
        # surviving slots, so at most the serial sum, at least one task).
        assert out.delay <= sum(reexec_spans) + 1e-9
        assert out.delay >= min(reexec_spans) - max(0.0, out.healthy_makespan
                                                    - 15.0) - 1e-9

    def test_crash_killing_every_slot_is_an_error(self):
        with pytest.raises(ConfigurationError):
            schedule_tasks_recovering(self.DURATIONS, slots=2,
                                      slots_per_node=2, crash_node=0,
                                      crash_time=5.0)

    def test_straggler_speculation_beats_waiting(self):
        with_spec = schedule_tasks_recovering(
            self.DURATIONS, slots=4, slots_per_node=2,
            straggler_node=1, slow_factor=5.0, speculative=True,
        )
        without = schedule_tasks_recovering(
            self.DURATIONS, slots=4, slots_per_node=2,
            straggler_node=1, slow_factor=5.0, speculative=False,
        )
        assert with_spec.speculative_copies > 0
        assert with_spec.makespan < without.makespan
        assert with_spec.makespan >= with_spec.healthy_makespan
        kinds = {kind for *_rest, kind in with_spec.spans}
        assert "speculative" in kinds and "straggler" in kinds

    def test_one_fault_per_wave(self):
        with pytest.raises(ConfigurationError):
            schedule_tasks_recovering(self.DURATIONS, 4, 2, crash_node=0,
                                      crash_time=1.0, straggler_node=1,
                                      slow_factor=2.0)


class TestHiveFaulted:
    def test_crash_mid_query(self, study):
        fault = FaultSpec(kind="crash", target="n3", at=0.5)
        result = study.hive.run_query_faulted(1, 1000.0, fault)
        assert result.faulted_total > result.healthy.total_time
        assert result.delay > 0.0
        assert result.reexecuted_tasks > 0
        assert result.wasted_task_seconds > 0.0
        assert result.affected_jobs

    def test_straggler(self, study):
        fault = FaultSpec(kind="straggler", target="n2", at=0.0,
                          magnitude=4.0)
        result = study.hive.run_query_faulted(1, 1000.0, fault)
        assert result.faulted_total >= result.healthy.total_time
        assert result.speculative_copies > 0

    def test_bad_fault_rejected(self, study):
        with pytest.raises(ConfigurationError):
            study.hive.run_query_faulted(
                1, 1000.0, FaultSpec(kind="disk-stall", target="disk", at=1.0)
            )
        with pytest.raises(ConfigurationError):
            study.hive.run_query_faulted(
                1, 1000.0, FaultSpec(kind="crash", target="n99999", at=0.5)
            )


class TestPdwFaulted:
    def test_crash_restarts_whole_query(self, study):
        fault = FaultSpec(kind="crash", target="n3", at=0.5)
        result = study.pdw.run_query_faulted(1, 1000.0, fault)
        healthy = result.healthy.total_time
        assert result.restarts == 1
        # All progress up to the crash is wasted, then the query reruns on
        # n-1 nodes: the faulted total exceeds crash point + healthy time.
        assert result.wasted_seconds == pytest.approx(0.5 * healthy)
        assert result.faulted_total > healthy * 1.5
        assert result.delay > 0.0

    def test_straggler_inflates_overlapping_steps(self, study):
        fault = FaultSpec(kind="straggler", target="n1", at=0.0,
                          magnitude=3.0)
        result = study.pdw.run_query_faulted(1, 1000.0, fault)
        assert result.restarts == 0
        assert result.faulted_total > result.healthy.total_time


class TestDssFaultReport:
    def test_amplification_ratio_exceeds_one(self, study):
        """The acceptance demo: a crash at 50% progress costs Hive the lost
        tasks' re-execution but costs PDW a whole-query restart."""
        plan = FaultPlan.parse("crash:n3@0.5", seed=11)
        tracer, metrics = Tracer(), MetricsRegistry()
        sampler = UtilizationSampler()
        report = dss_fault_report(study, 1, 1000.0, plan, tracer=tracer,
                                  metrics=metrics, sampler=sampler)
        comp = report.comparison
        assert comp["amplification_ratio"] > 1.0
        assert comp["pdw_delay_seconds"] > comp["hive_delay_seconds"] > 0.0
        assert comp["hive_reexecution_cost_seconds"] > 0.0
        assert comp["pdw_query_restart_cost_seconds"] > 0.0
        assert report.to_dict()["schema"] == "repro-faults/1"
        names = {s.name for s in tracer.spans}
        assert "fault.crash" in names
        assert any(n.startswith("degraded.") for n in names)
        assert metrics.counter("pdw.faults.query_restarts").value == 1

    def test_needs_exactly_one_node_fault(self, study):
        with pytest.raises(FaultPlanError):
            dss_fault_report(study, 1, 1000.0,
                             FaultPlan.parse("disk-stall:disk@5+5x2"))
        with pytest.raises(FaultPlanError):
            dss_fault_report(study, 1, 1000.0,
                             FaultPlan.parse("crash:n1@0.5;crash:n2@0.6"))

"""Tests for the MR job DAG scheduler (serial vs hive.exec.parallel)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.mapreduce.dag import (
    Q22_DEPENDENCIES,
    JobDag,
    dag_from_hive_result,
)
from repro.mapreduce.jobs import JobResult
from repro.tpch.volumes import calibrate


def job(seconds: float, name: str = "j") -> JobResult:
    return JobResult(name=name, map_time=seconds, shuffle_time=0.0,
                     reduce_time=0.0, overhead=0.0)


class TestJobDag:
    def test_serial_sums(self):
        dag = JobDag()
        dag.add("a", job(10))
        dag.add("b", job(20), depends_on=("a",))
        dag.add("c", job(5), depends_on=("b",))
        schedule = dag.schedule_serial()
        assert schedule.makespan == 35.0
        assert schedule.start["b"] == 10.0

    def test_parallel_overlaps_independent_jobs(self):
        dag = JobDag()
        dag.add("a", job(10))
        dag.add("b", job(20))  # independent of a
        dag.add("c", job(5), depends_on=("a", "b"))
        schedule = dag.schedule_parallel()
        assert schedule.makespan == 25.0  # max(10, 20) + 5
        assert dag.schedule_serial().makespan == 35.0

    def test_parallel_respects_concurrency_cap(self):
        dag = JobDag()
        for i in range(4):
            dag.add(f"j{i}", job(10))
        capped = dag.schedule_parallel(max_concurrent=2)
        assert capped.makespan == 20.0
        wide = dag.schedule_parallel(max_concurrent=4)
        assert wide.makespan == 10.0

    def test_critical_path(self):
        dag = JobDag()
        dag.add("a", job(10))
        dag.add("b", job(3), depends_on=("a",))
        dag.add("c", job(20))
        assert dag.critical_path() == 20.0

    def test_validation(self):
        dag = JobDag()
        dag.add("a", job(1))
        with pytest.raises(ConfigurationError):
            dag.add("a", job(1))
        with pytest.raises(ConfigurationError):
            dag.add("b", job(1), depends_on=("missing",))
        with pytest.raises(ConfigurationError):
            dag.schedule_parallel(max_concurrent=0)

    def test_empty_dag(self):
        dag = JobDag()
        assert dag.schedule_serial().makespan == 0.0
        assert dag.critical_path() == 0.0


class TestQ22Parallel:
    """The hive.exec.parallel extension: Q22's sub-queries 1 and 3 overlap."""

    @pytest.fixture(scope="class")
    def hive_result(self):
        from repro.hive.engine import HiveEngine

        engine = HiveEngine(calibrate(0.01, 42))
        return engine.run_query(22, 4000)

    def test_serial_matches_engine_total(self, hive_result):
        dag = dag_from_hive_result(hive_result)
        assert dag.schedule_serial().makespan == pytest.approx(
            hive_result.total_time
        )

    def test_parallel_beats_serial(self, hive_result):
        dag = dag_from_hive_result(hive_result, Q22_DEPENDENCIES)
        serial = dag.schedule_serial().makespan
        parallel = dag.schedule_parallel().makespan
        assert parallel < serial
        assert parallel >= dag.critical_path() - 1e-9

    def test_independent_subqueries_start_together(self, hive_result):
        dag = dag_from_hive_result(hive_result, Q22_DEPENDENCIES)
        schedule = dag.schedule_parallel()
        assert schedule.start["mat.q22.candidates"] == 0.0
        assert schedule.start["agg.q22.orders_agg"] == 0.0

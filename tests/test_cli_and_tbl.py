"""Tests for the CLI and the dbgen-compatible .tbl round-trip."""

import pytest

from repro.cli import build_parser, main
from repro.common.errors import StorageError
from repro.tpch.dbgen import DbGen
from repro.tpch.queries import run_query
from repro.tpch.tbl_io import read_tbl, write_tbl


class TestTblRoundTrip:
    @pytest.fixture(scope="class")
    def tbl_dir(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("tbl")
        db = DbGen(0.002, seed=9).generate()
        write_tbl(db, directory)
        return directory, db

    def test_all_files_written(self, tbl_dir):
        directory, db = tbl_dir
        for name in ("lineitem", "orders", "customer", "nation", "region",
                     "part", "partsupp", "supplier"):
            assert (directory / f"{name}.tbl").exists()

    def test_pipe_terminated_format(self, tbl_dir):
        directory, _ = tbl_dir
        line = (directory / "region.tbl").read_text().splitlines()[0]
        assert line.endswith("|")
        assert line.startswith("0|AFRICA|")

    def test_roundtrip_preserves_rows(self, tbl_dir):
        directory, db = tbl_dir
        loaded = read_tbl(directory)
        for name in ("orders", "nation"):
            assert loaded.table(name).row_count == db.table(name).row_count
        original = db.table("nation").rows[0]
        restored = loaded.table("nation").rows[0]
        assert restored == original

    def test_roundtrip_preserves_query_answers(self, tbl_dir):
        directory, db = tbl_dir
        loaded = read_tbl(directory)
        a = run_query(6, db)
        b = run_query(6, loaded)
        assert a[0]["revenue"] == pytest.approx(b[0]["revenue"], rel=1e-6)

    def test_float_formatting_two_decimals(self, tbl_dir):
        directory, _ = tbl_dir
        line = (directory / "customer.tbl").read_text().splitlines()[0]
        acctbal = line.split("|")[5]
        assert "." in acctbal and len(acctbal.split(".")[1]) == 2

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(StorageError):
            read_tbl(tmp_path, tables=["orders"])

    def test_malformed_line_raises(self, tmp_path):
        (tmp_path / "region.tbl").write_text("0|AFRICA|\n")  # missing a field
        with pytest.raises(StorageError):
            read_tbl(tmp_path, tables=["region"])


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["dbgen", "--sf", "0.001"])
        assert args.sf == 0.001
        args = parser.parse_args(["query", "5", "--limit", "3"])
        assert args.number == 5

    def test_query_command(self, capsys):
        assert main(["query", "6", "--sf", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "revenue" in out
        assert "1 row(s)" in out

    def test_dbgen_command(self, tmp_path, capsys):
        assert main(["dbgen", "--sf", "0.001", "--output", str(tmp_path)]) == 0
        assert (tmp_path / "lineitem.tbl").exists()

    def test_oltp_single_workload(self, capsys):
        assert main(["oltp", "--workload", "C"]) == 0
        out = capsys.readouterr().out
        assert "workload C" in out
        assert "sql-cs" in out

    def test_oltp_bad_workload(self, capsys):
        assert main(["oltp", "--workload", "Z"]) == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCliExtras:
    def test_hiveql_command(self, capsys):
        from repro.cli import main

        code = main([
            "hiveql",
            "SELECT COUNT(*) AS n FROM orders",
            "--sf", "0.002",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "'n': 3000" in out

    def test_explain_command(self, capsys):
        from repro.cli import main

        assert main(["explain", "6", "--sf", "1000"]) == 0
        out = capsys.readouterr().out
        assert "Hive plan for Q6" in out
        assert "PDW plan for Q6" in out

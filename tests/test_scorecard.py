"""The fidelity regression test: accuracy thresholds and claim checklist."""

import pytest

from repro.core.scorecard import AccuracySummary, build_scorecard, ratio_error


@pytest.fixture(scope="module")
def scorecard():
    return build_scorecard()


class TestRatioError:
    def test_symmetric(self):
        assert ratio_error(2.0, 1.0) == pytest.approx(ratio_error(1.0, 2.0))
        assert ratio_error(5.0, 5.0) == pytest.approx(1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ratio_error(0.0, 1.0)

    def test_summary(self):
        s = AccuracySummary("x")
        s.add(2.0, 1.0)
        s.add(1.0, 1.0)
        assert s.count == 2
        assert s.worst == pytest.approx(2.0)
        assert 1.0 < s.geomean < 2.0


class TestAccuracyThresholds:
    """These pin the fidelity quoted in EXPERIMENTS.md; a silent model
    regression fails here before it corrupts the documentation."""

    def test_hive_accuracy(self, scorecard):
        hive = scorecard.accuracy["hive"]
        assert hive.count >= 85
        assert hive.geomean < 1.45
        assert hive.worst < 5.5

    def test_pdw_accuracy(self, scorecard):
        pdw = scorecard.accuracy["pdw"]
        assert pdw.count == 88
        assert pdw.geomean < 1.85
        assert pdw.worst < 5.5

    def test_load_times_accuracy(self, scorecard):
        assert scorecard.accuracy["loads"].geomean < 1.2
        assert scorecard.accuracy["oltp_loads"].geomean < 1.15

    def test_ycsb_peaks_accuracy(self, scorecard):
        assert scorecard.accuracy["ycsb_peaks"].geomean < 1.3

    def test_table4_and_5_accuracy(self, scorecard):
        assert scorecard.accuracy["q1_map"].geomean < 1.3
        assert scorecard.accuracy["q22"].geomean < 2.0


class TestClaims:
    def test_every_qualitative_claim_holds(self, scorecard):
        failing = [c.text for c in scorecard.claims if not c.holds]
        assert failing == []
        assert len(scorecard.claims) >= 9
        assert scorecard.all_claims_hold

    def test_render(self, scorecard):
        text = scorecard.render()
        assert "Quantitative accuracy" in text
        assert "geomean-error" in text
        assert "[x]" in text
        assert "[ ]" not in text

"""The benchmark-trajectory harness and its regression gate."""

import json
import sys
from pathlib import Path

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
sys.path.insert(0, str(BENCHMARKS_DIR))

import gate  # noqa: E402
import trajectory  # noqa: E402


def _doc(pr, smoke, benchmarks):
    return {
        "schema": trajectory.SCHEMA,
        "pr": pr,
        "smoke": smoke,
        "python": "3.12.0",
        "benchmarks": benchmarks,
    }


def _entry(seconds, runs=1):
    return {"seconds": seconds, "runs": runs}


class TestTrajectoryManifest:
    def test_pr_number_and_required_set(self):
        assert trajectory.PR == 10
        assert "critpath_whatif_replay" in trajectory.REQUIRED_BENCHMARKS
        assert "utilization_sampling_overhead" in trajectory.REQUIRED_BENCHMARKS
        assert "reshard_time_to_rebalance" in trajectory.REQUIRED_BENCHMARKS
        assert "overload_recovery_time" in trajectory.REQUIRED_BENCHMARKS

    def test_committed_bench_10_is_valid(self):
        path = BENCHMARKS_DIR.parent / "BENCH_10.json"
        doc = json.loads(path.read_text())
        assert trajectory.validate(doc) == []
        assert doc["pr"] == 10

    def test_committed_bench_9_is_valid(self):
        # PR 9's file legitimately predates overload_recovery_time.
        path = BENCHMARKS_DIR.parent / "BENCH_9.json"
        doc = json.loads(path.read_text())
        assert trajectory.validate(doc, required=()) == []
        assert doc["pr"] == 9

    def test_committed_bench_9_carries_host_and_profiles(self):
        """PR 9 files record the host fingerprint and embedded profiles."""
        path = BENCHMARKS_DIR.parent / "BENCH_9.json"
        doc = json.loads(path.read_text())
        host = doc["host"]
        for key in ("python", "platform", "machine", "cpu_count"):
            assert key in host
        entry = doc["benchmarks"]["ycsb_workload_a_eventsim"]
        assert entry["profile"]["subsystems"]["eventsim.loop"]["calls"] >= 1
        assert entry["meta"]["ops_per_virtual_s"] > 0
        assert entry["meta"]["ops_per_wall_s"] > 0
        # multi-run benchmarks record their spread
        mva = doc["benchmarks"]["ycsb_workload_a_mva"]
        assert mva["runs"] > 1
        assert mva["max_seconds"] >= mva["seconds"]
        assert mva["stddev"] >= 0.0

    def test_committed_overhead_ratio_inside_ceiling(self):
        """The batched sampler keeps tracing overhead under the gate."""
        path = BENCHMARKS_DIR.parent / "BENCH_9.json"
        doc = json.loads(path.read_text())
        entry = doc["benchmarks"]["utilization_sampling_overhead"]
        limit = gate.META_THRESHOLDS[
            ("utilization_sampling_overhead", "overhead_ratio")]
        assert entry["meta"]["overhead_ratio"] <= limit

    def test_committed_rebalance_time_inside_ceiling(self):
        """The throttled scale-up commits within the virtual-clock budget."""
        path = BENCHMARKS_DIR.parent / "BENCH_9.json"
        doc = json.loads(path.read_text())
        entry = doc["benchmarks"]["reshard_time_to_rebalance"]
        limit = gate.META_THRESHOLDS[
            ("reshard_time_to_rebalance", "rebalance_virtual_s")]
        assert 0.0 < entry["meta"]["rebalance_virtual_s"] <= limit

    def test_committed_overload_recovery_inside_ceiling(self):
        """The protected arm of the metastable demo recovers within the
        gated virtual-clock budget, and the collapse is demonstrated."""
        path = BENCHMARKS_DIR.parent / "BENCH_10.json"
        doc = json.loads(path.read_text())
        entry = doc["benchmarks"]["overload_recovery_time"]
        limit = gate.META_THRESHOLDS[
            ("overload_recovery_time", "recovery_virtual_s")]
        assert 0.0 <= entry["meta"]["recovery_virtual_s"] <= limit
        assert entry["meta"]["collapsed_virtual_s"] >= 30.0
        assert entry["meta"]["metastable_demonstrated"] is True

    def test_meta_threshold_gating(self):
        candidate = _doc(7, False, {
            "utilization_sampling_overhead": {
                "seconds": 0.01, "runs": 3,
                "meta": {"overhead_ratio": 9.5},
            },
        })
        verdicts = dict(
            (name, status)
            for name, status, _ in gate.compare(candidate, [], 2.0)
        )
        assert verdicts[
            "utilization_sampling_overhead.overhead_ratio"] == "regression"
        candidate["benchmarks"]["utilization_sampling_overhead"][
            "meta"]["overhead_ratio"] = 1.5
        verdicts = dict(
            (name, status)
            for name, status, _ in gate.compare(candidate, [], 2.0)
        )
        assert verdicts[
            "utilization_sampling_overhead.overhead_ratio"] == "ok"

    def test_validate_flags_missing_required_benchmark(self):
        doc = _doc(4, False, {"dss_calibration": _entry(1.0)})
        problems = trajectory.validate(doc)
        assert any("critpath_whatif_replay" in p for p in problems)

    def test_validate_with_empty_required_still_shape_checks(self):
        doc = _doc(2, False, {"anything": {"seconds": -1.0, "runs": 1}})
        problems = trajectory.validate(doc, required=())
        assert any("invalid seconds" in p for p in problems)
        good = _doc(2, False, {"anything": _entry(1.0)})
        assert trajectory.validate(good, required=()) == []

    def test_timed_out_entries_are_valid(self):
        benchmarks = {name: {"timed_out": True, "limit_seconds": 1.0}
                      for name in trajectory.REQUIRED_BENCHMARKS}
        assert trajectory.validate(_doc(4, True, benchmarks)) == []


class TestGateCompare:
    def test_regression_detected(self):
        candidate = _doc(4, False, {"x": _entry(3.0)})
        baseline = _doc(2, False, {"x": _entry(1.0)})
        verdicts = gate.compare(candidate, [baseline], tolerance=2.0)
        assert verdicts == [("x", "regression", verdicts[0][2])]

    def test_within_tolerance_is_ok(self):
        candidate = _doc(4, False, {"x": _entry(1.9)})
        baseline = _doc(2, False, {"x": _entry(1.0)})
        [(name, status, _)] = gate.compare(candidate, [baseline], 2.0)
        assert (name, status) == ("x", "ok")

    def test_best_baseline_wins(self):
        candidate = _doc(4, False, {"x": _entry(1.9)})
        fast = _doc(2, False, {"x": _entry(0.5)})
        slow = _doc(3, False, {"x": _entry(10.0)})
        [(_, status, detail)] = gate.compare(candidate, [slow, fast], 2.0)
        assert status == "regression"  # 1.9 vs best 0.5 is 3.8x
        assert "0.5000" in detail

    def test_new_benchmark_never_fails(self):
        candidate = _doc(4, False, {"shiny": _entry(100.0)})
        baseline = _doc(2, False, {"x": _entry(1.0)})
        [(_, status, _)] = gate.compare(candidate, [baseline], 2.0)
        assert status == "new"

    def test_smoke_and_full_files_are_not_comparable(self):
        candidate = _doc(4, True, {"x": _entry(10.0)})
        baseline = _doc(2, False, {"x": _entry(1.0)})
        [(_, status, _)] = gate.compare(candidate, [baseline], 2.0)
        assert status == "new"  # no same-flavour baseline

    def test_timed_out_sides_are_excluded(self):
        candidate = _doc(4, False, {
            "x": {"timed_out": True, "limit_seconds": 1.0},
            "y": _entry(5.0),
        })
        baseline = _doc(2, False, {
            "x": _entry(0.1),
            "y": {"timed_out": True, "limit_seconds": 1.0},
        })
        verdicts = dict((n, s) for n, s, _ in
                        gate.compare(candidate, [baseline], 2.0))
        assert verdicts == {"x": "timed_out", "y": "new"}

    def test_cross_host_regression_is_annotated_not_failed(self):
        candidate = _doc(9, False, {"x": _entry(3.0)})
        candidate["host"] = {"python": "3.11.7", "machine": "arm64"}
        baseline = _doc(8, False, {"x": _entry(1.0)})
        baseline["host"] = {"python": "3.11.7", "machine": "x86_64"}
        [(_, status, detail)] = gate.compare(candidate, [baseline], 2.0)
        assert status == "cross-host"
        assert "hosts differ" in detail

    def test_missing_host_keeps_old_strictness(self):
        """Files from before the fingerprint still gate as same-host."""
        candidate = _doc(9, False, {"x": _entry(3.0)})
        candidate["host"] = {"python": "3.11.7", "machine": "arm64"}
        baseline = _doc(2, False, {"x": _entry(1.0)})  # no host recorded
        [(_, status, _)] = gate.compare(candidate, [baseline], 2.0)
        assert status == "regression"

    def test_same_host_regression_still_fails(self):
        host = {"python": "3.11.7", "machine": "x86_64"}
        candidate = _doc(9, False, {"x": _entry(3.0)})
        candidate["host"] = dict(host)
        baseline = _doc(8, False, {"x": _entry(1.0)})
        baseline["host"] = dict(host)
        [(_, status, _)] = gate.compare(candidate, [baseline], 2.0)
        assert status == "regression"


class TestGateMain:
    def _write(self, root, name, doc):
        (root / name).write_text(json.dumps(doc))

    def _full_set(self, scale=1.0):
        return {name: _entry(round(scale * (i + 1), 4))
                for i, name in enumerate(trajectory.REQUIRED_BENCHMARKS)}

    def test_exit_zero_when_within_tolerance(self, tmp_path, capsys):
        self._write(tmp_path, "BENCH_2.json", _doc(2, False, self._full_set()))
        self._write(tmp_path, "BENCH_4.json",
                    _doc(4, False, self._full_set(scale=1.5)))
        assert gate.main(["--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "gating BENCH_4.json" in out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        self._write(tmp_path, "BENCH_2.json", _doc(2, False, self._full_set()))
        self._write(tmp_path, "BENCH_4.json",
                    _doc(4, False, self._full_set(scale=3.0)))
        assert gate.main(["--root", str(tmp_path)]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_regression_prints_compare_attribution(self, tmp_path, capsys):
        """A tolerance failure is self-explaining: the gate renders a
        repro-compare/1 diff naming the dominant regressed subsystem."""
        def with_profile(doc, loop_self):
            entry = doc["benchmarks"]["ycsb_workload_a_eventsim"] = {
                "seconds": loop_self + 0.02, "runs": 1,
            }
            entry["profile"] = {
                "samples": 100, "interval_s": 0.002, "top": [],
                "subsystems": {
                    "eventsim.loop": {"calls": 1, "total_s": loop_self,
                                      "self_s": loop_self},
                    "span.construct": {"calls": 500, "total_s": 0.02,
                                       "self_s": 0.02},
                },
            }
            return doc

        self._write(tmp_path, "BENCH_8.json",
                    with_profile(_doc(8, False, self._full_set()), 0.1))
        self._write(tmp_path, "BENCH_9.json",
                    with_profile(_doc(9, False, self._full_set()), 0.5))
        assert gate.main(["--root", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "attribution (repro-compare/1)" in err
        assert "eventsim.loop" in err

    def test_older_files_not_held_to_new_benchmark_list(self, tmp_path, capsys):
        old = self._full_set()
        del old["critpath_whatif_replay"]  # legitimately absent in PR 2
        self._write(tmp_path, "BENCH_2.json", _doc(2, False, old))
        self._write(tmp_path, "BENCH_4.json", _doc(4, False, self._full_set()))
        assert gate.main(["--root", str(tmp_path)]) == 0

    def test_candidate_missing_required_benchmark_fails(self, tmp_path, capsys):
        bad = self._full_set()
        del bad["critpath_whatif_replay"]
        self._write(tmp_path, "BENCH_4.json", _doc(4, False, bad))
        assert gate.main(["--root", str(tmp_path)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_explicit_candidate_outside_root(self, tmp_path, capsys):
        self._write(tmp_path, "BENCH_2.json", _doc(2, False, self._full_set()))
        extra = tmp_path / "elsewhere"
        extra.mkdir()
        self._write(extra, "BENCH_smoke.json",
                    _doc(4, True, self._full_set(scale=0.1)))
        code = gate.main(["--root", str(tmp_path),
                          "--candidate", str(extra / "BENCH_smoke.json")])
        assert code == 0  # smoke candidate: no comparable baseline, all new

    def test_bad_tolerance_exits_two(self, capsys):
        assert gate.main(["--tolerance", "0"]) == 2

    def test_repo_gate_passes_as_committed(self, capsys):
        """The actual repo state must pass its own gate."""
        assert gate.main([]) == 0

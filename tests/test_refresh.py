"""Tests for the TPC-H refresh functions (RF1/RF2) the paper had to skip."""

import pytest

from repro.tpch.dbgen import DbGen
from repro.tpch.refresh import (
    HIVE_07,
    HIVE_08,
    PDW,
    RefreshFunctions,
    UnsupportedRefresh,
    refresh_order_count,
    refresh_orderkey,
)


@pytest.fixture()
def fresh_db():
    gen = DbGen(scale_factor=0.002, seed=5)
    return gen.generate(), gen


class TestKeyAllocation:
    def test_count_per_spec(self):
        assert refresh_order_count(1.0) == 1500
        assert refresh_order_count(0.001) == 2  # rounds, floor 1
        assert refresh_order_count(1e-9) == 1

    def test_refresh_keys_use_unloaded_sparse_space(self):
        # Loaded keys are == 1..8 (mod 32); refresh keys are == 9..12.
        keys = [refresh_orderkey(i) for i in range(1, 9)]
        assert keys == [9, 10, 11, 12, 41, 42, 43, 44]
        for k in keys:
            assert 9 <= k % 32 <= 12

    def test_one_based(self):
        with pytest.raises(ValueError):
            refresh_orderkey(0)


class TestRf1:
    def test_inserts_orders_and_lineitems(self, fresh_db):
        db, gen = fresh_db
        orders_before = db.table("orders").row_count
        lines_before = db.table("lineitem").row_count
        result = RefreshFunctions(db, gen).rf1()
        assert result.orders == refresh_order_count(0.002)
        assert db.table("orders").row_count == orders_before + result.orders
        assert db.table("lineitem").row_count == lines_before + result.lineitems
        assert result.lineitems >= result.orders  # 1-7 lines per order

    def test_no_key_collisions_across_streams(self, fresh_db):
        db, gen = fresh_db
        rf = RefreshFunctions(db, gen)
        rf.rf1(stream=1)
        rf.rf1(stream=2)
        keys = [r["o_orderkey"] for r in db.table("orders").rows]
        assert len(keys) == len(set(keys))

    def test_queries_still_run_after_refresh(self, fresh_db):
        from repro.tpch.queries import run_query

        db, gen = fresh_db
        RefreshFunctions(db, gen).rf1()
        rows = run_query(1, db)
        assert rows  # Q1 aggregates over the refreshed lineitem


class TestRf2:
    def test_deletes_orders_and_their_lineitems(self, fresh_db):
        db, gen = fresh_db
        orders_before = db.table("orders").row_count
        result = RefreshFunctions(db, gen).rf2()
        assert result.orders == refresh_order_count(0.002)
        assert db.table("orders").row_count == orders_before - result.orders
        # Referential integrity: no orphaned lineitems.
        orderkeys = {r["o_orderkey"] for r in db.table("orders").rows}
        assert all(
            r["l_orderkey"] in orderkeys for r in db.table("lineitem").rows
        )

    def test_rf1_then_rf2_roundtrip_cardinality(self, fresh_db):
        db, gen = fresh_db
        rf = RefreshFunctions(db, gen)
        before = db.table("orders").row_count
        rf.rf1()
        rf.rf2()
        assert db.table("orders").row_count == before


class TestEngineSupport:
    def test_hive_07_rejects_both(self):
        with pytest.raises(UnsupportedRefresh):
            HIVE_07.check("rf1")
        with pytest.raises(UnsupportedRefresh):
            HIVE_07.check("rf2")

    def test_hive_08_accepts_insert_only(self):
        HIVE_08.check("rf1")
        with pytest.raises(UnsupportedRefresh):
            HIVE_08.check("rf2")

    def test_pdw_accepts_both(self):
        PDW.check("rf1")
        PDW.check("rf2")

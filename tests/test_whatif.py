"""What-if replay: spec parsing, prediction-vs-reality validation, CLI."""

import json
from dataclasses import replace

import pytest

from repro.cli import main as cli_main
from repro.common.errors import ConfigurationError
from repro.obs import (
    MECHANISMS,
    Tracer,
    dss_whatif_report,
    dumps_whatif_report,
    oltp_whatif_report,
    parse_whatif,
    render_whatif_report,
    replay_oltp,
)


class TestParseWhatif:
    def test_single_mechanism(self):
        assert parse_whatif("map-startup=0") == {"map-startup": 0.0}

    def test_trailing_x_and_lists(self):
        assert parse_whatif("shuffle=0.5x,lock-wait=0") == {
            "shuffle": 0.5, "lock-wait": 0.0,
        }
        assert parse_whatif("dms=2X") == {"dms": 2.0}

    def test_whitespace_tolerated(self):
        assert parse_whatif(" shuffle = 0.5 , dms = 1 ") == {
            "shuffle": 0.5, "dms": 1.0,
        }

    @pytest.mark.parametrize("bad", [
        "",
        " , ",
        "shuffle",             # no =FACTOR
        "nope=0.5",            # unknown mechanism
        "shuffle=fast",        # not a number
        "shuffle=-1",          # negative factor
    ])
    def test_errors(self, bad):
        with pytest.raises(ConfigurationError):
            parse_whatif(bad)

    def test_every_mechanism_has_a_family_and_description(self):
        for name, (family, description) in MECHANISMS.items():
            assert family in ("hive", "pdw", "oltp")
            assert description


class TestDssWhatif:
    """Predictions must agree with actually re-running the cost model."""

    def test_identity_scales_reproduce_the_baseline(self, causal_study):
        _, _, report = causal_study.whatif_query(
            1, 250.0, {"map-startup": 1.0, "shuffle": 1.0}, engine="hive")
        assert report.predicted == pytest.approx(report.baseline)
        assert report.delta == pytest.approx(0.0)

    def test_hive_baseline_matches_query_time(self, causal_study):
        result, _, report = causal_study.whatif_query(
            1, 250.0, {"shuffle": 1.0}, engine="hive")
        assert report.baseline == pytest.approx(result.total_time)

    def test_q1_map_startup_zero_matches_rerun_within_5pct(self, causal_study):
        """The acceptance experiment: predict map-startup=0, then do it."""
        from repro.hive.engine import HiveEngine

        _, _, report = causal_study.whatif_query(
            1, 250.0, {"map-startup": 0.0}, engine="hive")
        engine = HiveEngine(
            causal_study.calibration, causal_study.profile,
            params=replace(causal_study.hive.base_params,
                           map_task_startup=0.0),
            cpu_weights=causal_study.hive_weights,
        )
        actual = engine.query_time(1, 250.0)
        assert report.predicted == pytest.approx(actual, rel=0.05)
        assert report.predicted < report.baseline  # startup must cost something

    def test_q5_job_overhead_zero_matches_rerun_within_5pct(self, causal_study):
        from repro.hive.engine import HiveEngine

        _, _, report = causal_study.whatif_query(
            5, 250.0, {"job-overhead": 0.0}, engine="hive")
        engine = HiveEngine(
            causal_study.calibration, causal_study.profile,
            params=replace(causal_study.hive.base_params, job_overhead=0.0),
            cpu_weights=causal_study.hive_weights,
        )
        actual = engine.query_time(5, 250.0)
        assert report.predicted == pytest.approx(actual, rel=0.05)

    def test_pdw_baseline_matches_query_time(self, causal_study):
        result, _, report = causal_study.whatif_query(
            1, 250.0, {"dms": 0.5}, engine="pdw")
        assert report.baseline == pytest.approx(result.total_time)
        assert report.predicted <= report.baseline + 1e-9

    def test_amdahl_floor_bounds_the_prediction(self, causal_study):
        _, _, report = causal_study.whatif_query(
            1, 250.0, {"map-startup": 0.3, "shuffle": 0.3}, engine="hive")
        assert report.amdahl_floor <= report.predicted + 1e-9
        assert report.speedup >= 1.0

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            dss_whatif_report(Tracer(), "sparkle", {"shuffle": 0.5})

    def test_untraced_run_rejected(self):
        with pytest.raises(ConfigurationError):
            dss_whatif_report(Tracer(), "hive", {"shuffle": 0.5})


class TestOltpWhatif:
    def test_lock_wait_half_matches_rerun_within_5pct(self):
        """The acceptance experiment: halve the lock stations, then do it."""
        from repro.core.oltp import OltpStudy

        study = OltpStudy()
        _, _, _, report = study.whatif(
            "mongo-cs", "A", 30_000.0, {"lock-wait": 0.5}, duration=60.0)
        _, _, rerun_tracer = study.traced_point(
            "mongo-cs", "A", 30_000.0, duration=60.0,
            station_scales={"hotlock": 0.5, "hotrow": 0.5, "appendhot": 0.5})
        actual = replay_oltp(rerun_tracer, {})["mean"]
        assert report.predicted == pytest.approx(actual, rel=0.05)
        assert report.predicted < report.baseline

    def test_station_scales_none_is_byte_identical(self):
        from repro.core.oltp import OltpStudy
        from repro.obs import dumps_chrome_trace

        study = OltpStudy()
        _, _, bare = study.traced_point("mongo-cs", "A", 20_000.0,
                                        duration=20.0)
        _, _, scaled = study.traced_point("mongo-cs", "A", 20_000.0,
                                          duration=20.0, station_scales=None)
        assert dumps_chrome_trace(bare) == dumps_chrome_trace(scaled)

    def test_per_class_means_reported(self):
        from repro.core.oltp import OltpStudy

        study = OltpStudy()
        _, _, _, report = study.whatif(
            "mongo-cs", "A", 20_000.0, {"lock-wait": 0.0}, duration=20.0)
        assert set(report.per_class) == {"read", "update"}
        assert all(v > 0 for v in report.per_class.values())

    def test_untraced_run_rejected(self):
        with pytest.raises(ConfigurationError):
            oltp_whatif_report(Tracer(), {"lock-wait": 0.5})


class TestWhatIfReportSerialization:
    def test_deterministic_json_and_schema(self, causal_study):
        _, _, report = causal_study.whatif_query(
            1, 250.0, {"map-startup": 0.0}, engine="hive")
        text = dumps_whatif_report(report)
        assert text == dumps_whatif_report(report)
        doc = json.loads(text)
        assert doc["schema"] == "repro-whatif/1"
        assert doc["kind"] == "dss"
        assert doc["target"]["engine"] == "hive"
        assert doc["scales"] == {"map-startup": 0.0}
        assert doc["baseline"] >= doc["predicted"] >= doc["amdahl_floor"]

    def test_render_lists_exposures(self, causal_study):
        _, _, report = causal_study.whatif_query(
            1, 250.0, {"map-startup": 0.0}, engine="hive")
        text = render_whatif_report(report)
        assert "what-if [dss]" in text
        assert "exposure map-startup" in text


class TestCliCausalValidation:
    """Satellite: bad --whatif/--decompose input exits 2, one line, fast."""

    def _error(self, capsys, argv):
        code = cli_main(argv)
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: ")
        assert len(captured.err.strip().splitlines()) == 1
        return captured.err

    def test_malformed_whatif(self, capsys):
        err = self._error(capsys, ["dss", "--whatif", "bogus"])
        assert "malformed" in err

    def test_unknown_mechanism(self, capsys):
        err = self._error(capsys, ["dss", "--whatif", "warp-drive=0"])
        assert "unknown what-if mechanism" in err

    def test_wrong_family_for_dss_engine(self, capsys):
        err = self._error(capsys, ["dss", "--whatif", "lock-wait=0"])
        assert "do not apply" in err

    def test_wrong_family_for_oltp(self, capsys):
        err = self._error(capsys, ["oltp", "--whatif", "map-startup=0"])
        assert "do not apply" in err

    def test_negative_factor(self, capsys):
        err = self._error(capsys, ["dss", "--whatif", "shuffle=-2"])
        assert ">= 0" in err

    def test_whatif_report_requires_whatif(self, capsys):
        self._error(capsys, ["dss", "--whatif-report", "x.json"])
        self._error(capsys, ["oltp", "--whatif-report", "x.json"])

    def test_malformed_decompose(self, capsys):
        err = self._error(capsys, ["dss", "--decompose", "1,frog"])
        assert "malformed" in err

    def test_decompose_query_out_of_range(self, capsys):
        err = self._error(capsys, ["dss", "--decompose", "1,99"])
        assert "99" in err

    def test_empty_decompose(self, capsys):
        self._error(capsys, ["dss", "--decompose", " , "])

    def test_decompose_report_requires_decompose(self, capsys):
        self._error(capsys, ["dss", "--decompose-report", "x.json"])

"""Tests for the cost-based join-order enumerator."""

import pytest

from repro.common.errors import PlanError
from repro.pdw.joinorder import JoinEdge, JoinGraph, Relation, q5_join_graph
from repro.tpch.volumes import calibrate


def star_graph():
    """A fact table with two dimensions; dim_small carries a selective
    filter (10 surviving rows out of a 1000-value key domain), so joining it
    early shrinks the fact side 100x — the situation where join order
    matters."""
    relations = [
        Relation("fact", 1_000_000),
        Relation("dim_small", 10),
        Relation("dim_big", 10_000),
    ]
    edges = [
        JoinEdge("fact", "dim_small", key_domain=1_000),
        JoinEdge("fact", "dim_big", key_domain=10_000),
    ]
    return JoinGraph(relations, edges)


class TestValidation:
    def test_rejects_bad_inputs(self):
        with pytest.raises(PlanError):
            Relation("r", 0)
        with pytest.raises(PlanError):
            JoinGraph([Relation("a", 1)], [])
        with pytest.raises(PlanError):
            JoinGraph(
                [Relation("a", 1), Relation("a", 2)], []
            )
        with pytest.raises(PlanError):
            JoinGraph(
                [Relation("a", 1), Relation("b", 1)],
                [JoinEdge("a", "zzz", 10)],
            )

    def test_cost_order_requires_full_permutation(self):
        graph = star_graph()
        with pytest.raises(PlanError):
            graph.cost_order(["fact", "dim_small"])

    def test_disconnected_graph_rejected(self):
        graph = JoinGraph([Relation("a", 10), Relation("b", 10)], [])
        # With only two relations the cross product is forced and allowed;
        # a truly disconnected 3-way graph with no edges still enumerates
        # through forced cross products at the end.
        result = graph.best_order()
        assert result.intermediate_rows == 100


class TestCosting:
    def test_selective_dimension_first_wins(self):
        graph = star_graph()
        good = graph.cost_order(["dim_small", "fact", "dim_big"])
        bad = graph.cost_order(["dim_big", "fact", "dim_small"])
        # The filtered dimension first shrinks fact to 10k rows; the other
        # order materializes the full million first.
        assert good.intermediate_rows < 0.1 * bad.intermediate_rows
        assert graph.best_order().intermediate_rows <= good.intermediate_rows

    def test_best_order_at_least_as_good_as_any_written(self):
        graph = star_graph()
        best = graph.best_order()
        for order in (
            ["fact", "dim_small", "dim_big"],
            ["dim_big", "fact", "dim_small"],
            ["dim_small", "fact", "dim_big"],
        ):
            assert best.intermediate_rows <= graph.cost_order(order).intermediate_rows

    def test_cross_product_penalized(self):
        graph = star_graph()
        # dim_small x dim_big is a cross product (no edge): terrible order.
        cross = graph.cost_order(["dim_small", "dim_big", "fact"])
        best = graph.best_order()
        assert cross.intermediate_rows > 2 * best.intermediate_rows


class TestQ5:
    @pytest.fixture(scope="class")
    def graph_and_order(self):
        calibration = calibrate(0.01, 42)
        return q5_join_graph(calibration.volumes, 1000)

    def test_hive_order_is_suboptimal(self, graph_and_order):
        """The paper's Q5 point, quantified: the as-written order that joins
        the supplier side into lineitem first materializes far more
        intermediate rows than the optimizer's choice."""
        graph, hive_order = graph_and_order
        penalty = graph.penalty_of(hive_order)
        assert penalty > 1.5

    def test_optimal_order_joins_filtered_orders_early(self, graph_and_order):
        graph, _ = graph_and_order
        best = graph.best_order()
        # The date-filtered orders (and customer side) appear before
        # lineitem in the cheap order, as in PDW's plan.
        assert best.order.index("orders") < best.order.index("lineitem")

"""Unit tests for the utilization time-series layer (repro.obs.timeseries)."""

import json

import pytest

from repro.common.errors import SimulationError
from repro.obs import (
    NULL_SAMPLER,
    NullSampler,
    Tracer,
    UtilizationSampler,
    dumps_series,
    series_from_tracer,
    series_to_csv,
    sparkline_heatmap,
    write_series_csv,
    write_series_json,
)


class TestAccumulate:
    def test_constant_level_over_window(self):
        s = UtilizationSampler(interval=1.0)
        s.accumulate("n", "cpu", 0.0, 3.0, level=0.5)
        s.finish()
        series = s.get("n", "cpu")
        assert series.values == [0.5, 0.5, 0.5]
        assert series.duration == 3.0

    def test_partial_bucket_overlap(self):
        s = UtilizationSampler(interval=1.0)
        s.accumulate("n", "cpu", 0.5, 1.5, level=1.0)
        s.finish(2.0)
        # Half of bucket 0 and half of bucket 1 are busy.
        assert s.get("n", "cpu").values == [0.5, 0.5]

    def test_overlapping_windows_sum(self):
        s = UtilizationSampler(interval=1.0)
        s.accumulate("n", "slots", 0.0, 2.0, capacity=4.0)
        s.accumulate("n", "slots", 0.0, 2.0, capacity=4.0)
        s.finish()
        # Two unit-level tasks against 4 slots: 50% occupancy.
        assert s.get("n", "slots").values == [0.5, 0.5]

    def test_busy_clamped_at_one(self):
        s = UtilizationSampler(interval=1.0)
        s.accumulate("n", "cpu", 0.0, 1.0, level=3.0)
        s.finish()
        assert s.get("n", "cpu").values == [1.0]

    def test_queue_metric_not_clamped(self):
        s = UtilizationSampler(interval=1.0)
        s.accumulate("n", "q", 0.0, 1.0, level=7.0, metric="queue")
        s.finish()
        assert s.get("n", "q", metric="queue").values == [7.0]

    def test_capacity_conflict_raises(self):
        s = UtilizationSampler(interval=1.0)
        s.accumulate("n", "cpu", 0.0, 1.0, capacity=4.0)
        with pytest.raises(SimulationError):
            s.accumulate("n", "cpu", 1.0, 2.0, capacity=8.0)

    def test_backwards_window_raises(self):
        s = UtilizationSampler(interval=1.0)
        with pytest.raises(SimulationError):
            s.accumulate("n", "cpu", 2.0, 1.0)

    def test_bad_interval_raises(self):
        with pytest.raises(SimulationError):
            UtilizationSampler(interval=0.0)


class TestSetLevel:
    def test_transitions_integrate_previous_level(self):
        s = UtilizationSampler(interval=1.0)
        s.set_level("n", "servers", 0.0, 2.0, capacity=4.0)  # 50% busy
        s.set_level("n", "servers", 2.0, 4.0, capacity=4.0)  # then 100%
        s.finish(4.0)
        assert s.get("n", "servers").values == [0.5, 0.5, 1.0, 1.0]

    def test_finish_closes_open_level(self):
        s = UtilizationSampler(interval=1.0)
        s.set_level("n", "servers", 0.0, 1.0)
        s.finish(3.0)
        assert s.get("n", "servers").values == [1.0, 1.0, 1.0]

    def test_finish_is_idempotent(self):
        s = UtilizationSampler(interval=1.0)
        s.set_level("n", "servers", 0.0, 1.0)
        s.finish(2.0)
        first = s.get("n", "servers").values
        s.finish(2.0)
        assert s.get("n", "servers").values == first


class TestGauges:
    def test_last_write_wins_and_carry_forward(self):
        s = UtilizationSampler(interval=1.0)
        s.sample("n", "hit-rate", 0.2, 0.5)
        s.sample("n", "hit-rate", 0.8, 0.9)  # same bucket: wins
        s.accumulate("n", "cpu", 0.0, 4.0)  # extends the horizon
        s.finish()
        series = s.get("n", "hit-rate", metric="gauge")
        # Bucket 0 keeps the last sample; later buckets carry it forward.
        assert series.values == [0.9, 0.9, 0.9, 0.9]

    def test_gauge_before_first_sample_is_zero(self):
        s = UtilizationSampler(interval=1.0)
        s.sample("n", "g", 2.5, 1.0)
        s.finish(4.0)
        assert s.get("n", "g", metric="gauge").values == [0.0, 0.0, 1.0, 1.0]


class TestSeriesMath:
    def test_window_mean_is_overlap_weighted(self):
        s = UtilizationSampler(interval=1.0)
        s.accumulate("n", "cpu", 0.0, 1.0, level=1.0)
        s.accumulate("n", "cpu", 1.0, 2.0, level=0.0)
        s.finish(2.0)
        series = s.get("n", "cpu")
        assert series.window_mean(0.0, 2.0) == pytest.approx(0.5)
        assert series.window_mean(0.5, 1.5) == pytest.approx(0.5)
        assert series.window_mean(0.0, 1.0) == pytest.approx(1.0)
        assert series.window_mean(1.0, 1.0) == 0.0  # empty window

    def test_integral_recovers_level_seconds(self):
        s = UtilizationSampler(interval=0.25)
        s.accumulate("n", "slots", 0.0, 3.0, capacity=8.0)
        s.accumulate("n", "slots", 1.0, 2.0, capacity=8.0)
        s.finish()
        # 3 + 1 task-seconds regardless of interval or capacity.
        assert s.get("n", "slots").integral() == pytest.approx(4.0)

    def test_mean_and_peak(self):
        s = UtilizationSampler(interval=1.0)
        s.accumulate("n", "cpu", 0.0, 1.0, level=0.2)
        s.accumulate("n", "cpu", 1.0, 2.0, level=0.8)
        s.finish()
        series = s.get("n", "cpu")
        assert series.mean() == pytest.approx(0.5)
        assert series.peak() == pytest.approx(0.8)

    def test_filters_and_sorting(self):
        s = UtilizationSampler(interval=1.0)
        s.accumulate("b", "disk", 0.0, 1.0)
        s.accumulate("a", "cpu", 0.0, 1.0)
        s.finish()
        assert [x.key for x in s.series()] == [("a", "cpu", "busy"),
                                               ("b", "disk", "busy")]
        assert [x.node for x in s.series(node="a")] == ["a"]
        assert s.nodes() == ["a", "b"]
        with pytest.raises(KeyError):
            s.get("a", "disk")


class TestNullSampler:
    def test_falsy_and_inert(self):
        assert not NULL_SAMPLER
        assert not NullSampler()
        assert len(NULL_SAMPLER) == 0
        NULL_SAMPLER.accumulate("n", "cpu", 0.0, 1.0)
        NULL_SAMPLER.set_level("n", "cpu", 0.0, 1.0)
        NULL_SAMPLER.sample("n", "g", 0.0, 1.0)
        NULL_SAMPLER.finish()
        assert NULL_SAMPLER.series() == []

    def test_real_sampler_is_truthy_even_when_empty(self):
        assert UtilizationSampler()


class TestExporters:
    def _sampler(self):
        s = UtilizationSampler(interval=1.0)
        s.accumulate("n", "cpu", 0.0, 2.0, level=0.75)
        s.sample("n", "hit", 0.5, 0.9)
        s.finish()
        return s

    def test_json_round_trip(self):
        doc = json.loads(dumps_series(self._sampler()))
        assert set(doc) == {"n/cpu/busy", "n/hit/gauge"}
        assert doc["n/cpu/busy"]["values"] == [0.75, 0.75]
        assert doc["n/cpu/busy"]["interval"] == 1.0

    def test_write_json_returns_series_count(self, tmp_path):
        path = tmp_path / "u.json"
        assert write_series_json(str(path), self._sampler()) == 2
        assert json.loads(path.read_text())

    def test_csv_shape(self):
        text = series_to_csv(self._sampler())
        lines = text.strip().split("\n")
        assert lines[0] == "node,resource,metric,interval,t,value"
        assert lines[1] == "n,cpu,busy,1,0,0.75"
        assert len(lines) == 1 + 4  # two series x two buckets

    def test_write_csv_returns_row_count(self, tmp_path):
        path = tmp_path / "u.csv"
        assert write_series_csv(str(path), self._sampler()) == 4
        assert path.read_text().startswith("node,resource,metric")

    def test_heatmap_mentions_nodes_and_resources(self):
        text = sparkline_heatmap(self._sampler(), width=20)
        assert "n:" in text
        assert "cpu[b]" in text
        assert "|" in text
        assert sparkline_heatmap(UtilizationSampler()) == "(no series)"

    def test_heatmap_rows_share_width(self):
        text = sparkline_heatmap(self._sampler(), width=30)
        rows = [line for line in text.splitlines() if "|" in line]
        assert rows
        widths = {line.rindex("|") - line.index("|") for line in rows}
        assert widths == {31}


class TestSeriesFromTracer:
    def test_integral_matches_span_hold_time(self):
        tracer = Tracer()
        tracer.add("grant", 0.0, 2.5, cat="resource", node="disk")
        tracer.add("grant", 2.5, 4.0, cat="resource", node="disk")
        tracer.add("noise", 0.0, 9.0, cat="phase", node="disk")  # ignored
        derived = series_from_tracer(tracer, interval=0.5)
        total_hold = sum(sp.duration for sp in tracer.find(cat="resource"))
        assert derived.get("disk", "hold").integral() == pytest.approx(total_hold)

"""Tests for the calibration run and the volume model."""

import pytest

from repro.common.errors import PlanError
from repro.tpch.plans import QUERY_SPECS, spec_for
from repro.tpch.volumes import CONSTANT_TAGS, Volume, VolumeModel, calibrate


@pytest.fixture(scope="module")
def calibration():
    return calibrate(0.01, 42)


class TestCalibrate:
    def test_cached(self):
        a = calibrate(0.01, 42)
        b = calibrate(0.01, 42)
        assert a is b  # lru_cache

    def test_rcfile_ratios_measured_for_all_tables(self, calibration):
        ratios = calibration.rcfile_ratios
        assert set(ratios) == {
            "customer", "orders", "lineitem", "part", "partsupp",
            "supplier", "nation", "region",
        }
        for table, ratio in ratios.items():
            assert 0.05 < ratio < 1.0, table

    def test_extra_calibration_tags_present(self, calibration):
        for tag in ("q5.hive.supplier", "q5.hive.join_lineitem",
                    "q5.hive.join_orders", "q5.hive.join_customer",
                    "q19.pdw.parts", "q22.orders_agg"):
            assert calibration.volumes.volume(tag, 250).rows >= 1


class TestVolumeModel:
    def test_base_tables_scale_linearly(self, calibration):
        vm = calibration.volumes
        assert vm.rows("lineitem", 1000) == pytest.approx(
            4 * vm.rows("lineitem", 250)
        )
        assert vm.rows("nation", 16000) == 25  # fixed table

    def test_tags_scale_linearly(self, calibration):
        vm = calibration.volumes
        small = vm.volume("q5.join_lineitem", 250)
        big = vm.volume("q5.join_lineitem", 1000)
        assert big.rows == pytest.approx(4 * small.rows)
        assert big.avg_width == pytest.approx(small.avg_width)

    def test_constant_tags_do_not_scale(self, calibration):
        vm = calibration.volumes
        for tag in CONSTANT_TAGS & set(vm.tags):
            assert vm.rows(tag, 250) == vm.rows(tag, 16000)

    def test_unknown_tag_raises(self, calibration):
        with pytest.raises(PlanError):
            calibration.volumes.volume("q99.nothing", 250)

    def test_selectivity(self, calibration):
        vm = calibration.volumes
        # q6's predicate keeps a small fraction of lineitem.
        sel = vm.selectivity("q6.scan", "lineitem")
        assert 0.001 < sel < 0.1

    def test_volume_dataclass(self):
        v = Volume(rows=10, bytes=100)
        assert v.avg_width == 10.0
        assert Volume(rows=0, bytes=0).avg_width == 0.0

    def test_invalid_calibration_sf(self):
        with pytest.raises(PlanError):
            VolumeModel(0.0, {})

    def test_q19_pushdown_is_small_fraction_of_part(self, calibration):
        vm = calibration.volumes
        assert vm.rows("q19.pdw.parts", 250) < 0.1 * vm.rows("part", 250)


class TestPlanSpecs:
    def test_every_query_has_a_spec(self):
        assert set(QUERY_SPECS) == set(range(1, 23))

    def test_unknown_spec_raises(self):
        with pytest.raises(PlanError):
            spec_for(23)

    def test_all_spec_refs_resolve_against_calibration(self, calibration):
        vm = calibration.volumes
        for number, spec in QUERY_SPECS.items():
            for ref in spec.all_refs():
                target = spec.pdw_volume_overrides.get(ref, ref)
                vm.volume(target, 250)  # raises PlanError on a gap

    def test_scan_refs_unique_within_spec(self):
        for spec in QUERY_SPECS.values():
            refs = [s.ref for s in spec.scans]
            assert len(refs) == len(set(refs)), f"q{spec.number}"

    def test_join_inputs_are_known_refs(self):
        for spec in QUERY_SPECS.values():
            known = {s.ref for s in spec.scans}
            known |= {a.out for a in spec.aggs if a.out}
            for joins in (spec.joins, spec.hive_joins or ()):
                for join in joins:
                    for side in (join.left, join.right):
                        # Sides must be scans, agg outputs, prior join
                        # outputs, or measured filter tags.
                        assert (
                            side in known
                            or any(j.out == side for j in joins)
                            or side.startswith("q")
                        ), f"q{spec.number}: {side}"
                    if join.out:
                        known.add(join.out)

    def test_q5_has_distinct_hive_order(self):
        spec = spec_for(5)
        assert spec.hive_joins is not None
        assert [j.out for j in spec.hive_joins] != [j.out for j in spec.joins]

    def test_q22_structure(self):
        spec = spec_for(22)
        assert spec.hive_materialize_scans == ("q22.candidates",)
        assert spec.hive_fs_jobs == 1
        assert spec.joins[0].try_map_join  # the failing map join

"""Tail-biased span sampling (repro.obs.sampling)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.obs import SamplingTracer, SpanSamplePolicy, Tracer


class TestPolicyParse:
    def test_rate_only(self):
        policy = SpanSamplePolicy.parse("0.05")
        assert policy.rate == 0.05
        assert policy.slow_s == 0.100

    def test_rate_and_slow(self):
        policy = SpanSamplePolicy.parse("0.2,slow_ms=250")
        assert policy.rate == 0.2
        assert policy.slow_s == pytest.approx(0.250)
        assert policy.spec_string() == "0.2,slow_ms=250"

    @pytest.mark.parametrize("spec", [
        "", "abc", "1.5", "-0.1", "0.1,slow_ms=x", "0.1,slow=5",
        "0.1,slow_ms",
    ])
    def test_malformed(self, spec):
        with pytest.raises(ConfigurationError):
            SpanSamplePolicy.parse(spec)


class TestRetention:
    def test_tail_categories_always_kept_at_rate_zero(self):
        tracer = SamplingTracer(SpanSamplePolicy(0.0))
        for cat in ("fault", "retry", "election"):
            tracer.add(f"{cat}-span", 0.0, 0.001, cat=cat)
        tracer.add("plain", 0.0, 0.001, cat="op")
        assert {s.cat for s in tracer.spans} == {"fault", "retry", "election"}
        assert tracer.kept == 3
        assert tracer.dropped == 1

    def test_errors_and_slow_spans_always_kept(self):
        tracer = SamplingTracer(SpanSamplePolicy(0.0, slow_s=0.1))
        tracer.add("failed", 0.0, 0.001, cat="op", error=True)
        tracer.add("slow", 0.0, 0.5, cat="op")
        tracer.add("fast-ok", 0.0, 0.001, cat="op")
        assert [s.name for s in tracer.spans] == ["failed", "slow"]

    def test_rate_one_keeps_everything(self):
        tracer = SamplingTracer(SpanSamplePolicy(1.0))
        for i in range(50):
            tracer.add(f"op-{i}", i * 0.001, i * 0.001 + 0.0005, cat="op")
        assert tracer.kept == 50
        assert tracer.dropped == 0

    def test_counters_account_for_every_span(self):
        tracer = SamplingTracer(SpanSamplePolicy(0.3, seed=7))
        for i in range(200):
            tracer.add(f"op-{i}", 0.0, 0.001, cat="op")
        assert tracer.kept + tracer.dropped == 200
        assert tracer.recorded == 200
        # The head rate is a coin, not a quota, but 200 flips at 0.3
        # land well inside these bounds.
        assert 20 < tracer.kept < 120
        stats = tracer.sample_stats()
        assert stats["kept"] == tracer.kept
        assert stats["keep_fraction"] == pytest.approx(tracer.kept / 200)

    def test_same_seed_same_retained_set(self):
        def run():
            tracer = SamplingTracer(SpanSamplePolicy(0.1, seed=42))
            for i in range(300):
                tracer.add(f"op-{i}", i * 0.001, i * 0.001 + 0.0002,
                           cat="op")
            return [s.span_id for s in tracer.spans]

        assert run() == run()

    def test_dropped_spans_still_returned_with_stable_ids(self):
        """Span ids must match an unsampled run so links stay valid."""
        full = Tracer()
        sampled = SamplingTracer(SpanSamplePolicy(0.0))
        for tracer in (full, sampled):
            outer = tracer.begin("outer", 0.0, cat="op")
            inner = tracer.add("inner", 0.0, 0.001, cat="op")
            assert inner.parent == outer.span_id
            tracer.end(0.002)
        assert [s.span_id for s in full.spans[:1]] == [1]
        # The sampled run dropped both spans but handed out the same ids.
        assert sampled.spans == []
        assert sampled.dropped == 2

    def test_begin_end_retention_decided_at_end(self):
        tracer = SamplingTracer(SpanSamplePolicy(0.0, slow_s=0.1))
        tracer.begin("becomes-slow", 0.0, cat="op")
        tracer.end(0.5)  # 500 ms > slow_s: kept despite rate 0
        tracer.begin("stays-fast", 1.0, cat="op")
        tracer.end(1.001)
        assert [s.name for s in tracer.spans] == ["becomes-slow"]

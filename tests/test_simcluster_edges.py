"""Edge-case tests for the discrete-event kernel (repro.simcluster.events).

These pin down the corner semantics the tracing layer (and everything else)
relies on: zero-delay timeouts still go through the queue, heap ties resolve
in insertion order, double-``succeed`` is an error, and callbacks added
after an event fired run immediately.
"""

import pytest

from repro.common.errors import SimulationError
from repro.obs import MetricsRegistry, Tracer, overlap_violations
from repro.simcluster.events import Environment, Event, Resource


class TestZeroDelayTimeouts:
    def test_zero_delay_does_not_advance_clock(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(0.0)
            log.append(env.now)
            yield env.timeout(0.0)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [0.0, 0.0]

    def test_zero_delay_still_queues_behind_earlier_events(self):
        """A 0-delay timeout scheduled later fires after same-time events
        scheduled earlier — insertion order, not LIFO."""
        env = Environment()
        order = []

        def first():
            yield env.timeout(0.0)
            order.append("first")

        def second():
            yield env.timeout(0.0)
            order.append("second")

        env.process(first())
        env.process(second())
        env.run()
        assert order == ["first", "second"]

    def test_mixed_zero_and_positive_delays(self):
        env = Environment()
        order = []

        def proc(tag, delay):
            yield env.timeout(delay)
            order.append(tag)

        env.process(proc("late", 1.0))
        env.process(proc("now-a", 0.0))
        env.process(proc("now-b", 0.0))
        env.run()
        assert order == ["now-a", "now-b", "late"]


class TestHeapTieOrder:
    def test_same_time_events_fire_in_insertion_order(self):
        env = Environment()
        order = []

        def proc(tag):
            yield env.timeout(5.0)
            order.append(tag)

        for tag in ("a", "b", "c", "d"):
            env.process(proc(tag))
        env.run()
        assert order == ["a", "b", "c", "d"]

    def test_tie_order_within_nested_scheduling(self):
        """Events scheduled *while dispatching* a tied batch run after it."""
        env = Environment()
        order = []

        def parent():
            yield env.timeout(1.0)
            order.append("parent")
            env.process(child())

        def sibling():
            yield env.timeout(1.0)
            order.append("sibling")

        def child():
            yield env.timeout(0.0)
            order.append("child")

        env.process(parent())
        env.process(sibling())
        env.run()
        assert order == ["parent", "sibling", "child"]
        assert env.now == 1.0


class TestDoubleSucceed:
    def test_double_succeed_raises(self):
        env = Environment()
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_double_succeed_raises_even_after_dispatch(self):
        env = Environment()
        event = env.event()
        event.succeed("v")
        env.run()
        with pytest.raises(SimulationError):
            event.succeed("again")

    def test_process_return_does_not_double_fire(self):
        """A process whose event someone succeeded early must not re-fire."""
        env = Environment()

        def proc():
            yield env.timeout(1.0)
            return "done"

        p = env.process(proc())
        env.run()
        assert p.triggered
        assert p.value == "done"


class TestLateCallbacks:
    def test_callback_added_after_fire_runs_immediately(self):
        env = Environment()
        event = env.event()
        event.succeed(7)
        env.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == [7]

    def test_callback_added_before_dispatch_waits(self):
        """Triggered-but-not-dispatched: the callback must NOT run yet."""
        env = Environment()
        event = env.event()
        event.succeed(3)
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == []
        env.run()
        assert seen == [3]

    def test_waiting_on_already_finished_process(self):
        env = Environment()

        def fast():
            yield env.timeout(1.0)
            return 42

        p = env.process(fast())
        env.run()

        results = []

        def joiner():
            value = yield p
            results.append((env.now, value))

        env.process(joiner())
        env.run()
        assert results == [(1.0, 42)]


class TestRunUntilBoundary:
    def test_event_exactly_at_until_fires(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(5.0)
            log.append(env.now)

        env.process(proc())
        env.run(until=5.0)
        assert log == [5.0]

    def test_clock_lands_on_until_with_empty_queue(self):
        env = Environment()
        env.run(until=9.0)
        assert env.now == 9.0


class TestResourceEdges:
    def test_release_without_request_raises(self):
        env = Environment()
        resource = Resource(env)
        with pytest.raises(SimulationError):
            resource.release()

    def test_fifo_grant_order_under_contention(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        order = []

        def worker(tag, hold):
            grant = resource.request()
            yield grant
            order.append(tag)
            yield env.timeout(hold)
            resource.release()

        for tag in ("a", "b", "c"):
            env.process(worker(tag, 1.0))
        env.run()
        assert order == ["a", "b", "c"]

    def test_unnamed_resource_never_traces(self):
        """Tracing requires an explicit name: anonymous resources stay on
        the uninstrumented path even on a traced environment."""
        tracer, metrics = Tracer(), MetricsRegistry()
        env = Environment(tracer=tracer, metrics=metrics)
        resource = Resource(env, capacity=1)  # no name
        env.process(resource.use(1.0))
        env.run()
        assert len(tracer) == 0
        assert len(metrics) == 0

    def test_named_resource_hold_spans_are_mutually_exclusive(self):
        tracer, metrics = Tracer(), MetricsRegistry()
        env = Environment(tracer=tracer, metrics=metrics)
        resource = Resource(env, capacity=1, name="mutex")
        for _ in range(4):
            env.process(resource.use(2.0))
        env.run()
        holds = tracer.find(cat="resource", node="mutex")
        waits = tracer.find(cat="resource-wait", node="mutex")
        assert len(holds) == 4
        assert len(waits) == 3
        assert overlap_violations(holds) == []
        # Hold time is conserved: 4 holds of 2 s each.
        assert sum(s.duration for s in holds) == pytest.approx(8.0)
        # Wait spans explain the whole queueing delay: 2 + 4 + 6 s.
        assert resource.total_wait_time == pytest.approx(12.0)
        assert sum(s.duration for s in waits) == pytest.approx(12.0)
        assert metrics.value("resource.mutex.holds") == 4
        assert metrics.value("resource.mutex.waits") == 3
        assert metrics.histogram("resource.mutex.wait_time").total == pytest.approx(12.0)

    def test_capacity_two_conserves_total_hold_time(self):
        tracer = Tracer()
        env = Environment(tracer=tracer)
        resource = Resource(env, capacity=2, name="pool")
        for _ in range(5):
            env.process(resource.use(3.0))
        env.run()
        holds = tracer.find(cat="resource", node="pool")
        assert len(holds) == 5
        assert sum(s.duration for s in holds) == pytest.approx(15.0)

"""Fault plans, retry policy, shard unavailability, and CLI validation."""

import pytest

from repro.cli import main as cli_main
from repro.common.errors import (
    ConfigurationError,
    FaultPlanError,
    ServerCrashed,
    ShardingError,
    ShardUnavailable,
)
from repro.docstore.cluster import MongoAsCluster, MongoCsCluster, hash_shard
from repro.faults import (
    FaultedYcsbRun,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    StationFaults,
    backoff_delay,
)
from repro.obs import Tracer
from repro.sqlstore.cluster import SqlCsCluster
from repro.ycsb import WORKLOADS, YcsbClient, make_key, make_record
from repro.common.rng import SeedStream


class TestFaultPlan:
    def test_parse_round_trip(self):
        text = "crash:n3@0.5;disk-stall:disk@20+10x8;op-error:cpu@30+20x0.2"
        plan = FaultPlan.parse(text, seed=9)
        assert len(plan) == 3
        crash, stall, oerr = plan.faults
        assert (crash.kind, crash.target, crash.at) == ("crash", "n3", 0.5)
        assert crash.target_index() == 3
        assert (stall.duration, stall.magnitude) == (10.0, 8.0)
        assert stall.end == 30.0
        assert oerr.magnitude == pytest.approx(0.2)
        assert plan.spec_string() == text
        assert FaultPlan.parse(plan.spec_string(), seed=9) == plan

    def test_comma_separator_and_whitespace(self):
        plan = FaultPlan.parse(" kill-shard:0@0.25 , restart-shard:0@0.75 ")
        assert [f.kind for f in plan] == ["kill-shard", "restart-shard"]

    @pytest.mark.parametrize("bad", [
        "bogus",
        "crash:n3",            # no @at
        "melt:n1@3",           # unknown kind
        "crash:n3@-1",         # regex rejects negative times
        "",
        "  ;  ",
    ])
    def test_parse_errors(self, bad):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(bad)

    def test_fault_plan_error_is_configuration_error(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("nope")

    def test_spec_validation(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="crash", target="n1", at=0.5, magnitude=0.0)
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="crash", target="n1", at=-1.0)

    def test_target_index_requires_digits(self):
        spec = FaultSpec(kind="disk-stall", target="disk", at=1.0)
        with pytest.raises(FaultPlanError):
            spec.target_index()

    def test_station_and_shard_partition(self):
        plan = FaultPlan.parse("kill-shard:0@0.5;disk-stall:disk@5+5x2")
        assert [f.kind for f in plan.shard_faults] == ["kill-shard"]
        assert [f.kind for f in plan.station_faults] == ["disk-stall"]

    def test_to_json_deterministic(self):
        plan = FaultPlan.parse("crash:n1@0.5", seed=3)
        assert plan.to_json() == FaultPlan.parse("crash:n1@0.5", seed=3).to_json()

    def test_station_faults_windows(self):
        plan = FaultPlan.parse("disk-stall:disk@10+5x4;net-spike:log@2+2x3")
        sf = StationFaults(plan)
        assert sf.slowdown("disk", 12.0) == pytest.approx(4.0)
        assert sf.slowdown("disk", 16.0) == pytest.approx(1.0)  # window closed
        assert sf.slowdown("log", 3.0) == pytest.approx(3.0)
        assert [w.kind for w in sf.windows] == ["net-spike", "disk-stall"]

    def test_op_error_probability_capped(self):
        with pytest.raises(FaultPlanError):
            StationFaults(FaultPlan.parse("op-error:cpu@0+10x2"))


class TestRetryPolicy:
    def test_backoff_doubles_then_caps(self):
        assert backoff_delay(0, 0.05, 1.0) == pytest.approx(0.05)
        assert backoff_delay(1, 0.05, 1.0) == pytest.approx(0.10)
        assert backoff_delay(10, 0.05, 1.0) == pytest.approx(1.0)

    def test_huge_attempt_counts_do_not_overflow(self):
        # 2**2000 overflows float; deep retry loops must still get the cap.
        assert backoff_delay(2000, 0.05, 1.0) == pytest.approx(1.0)
        policy = RetryPolicy(max_attempts=10_000)
        assert policy.delay(2000) == pytest.approx(policy.backoff_cap)

    def test_degenerate_cap_at_or_below_base(self):
        assert backoff_delay(0, 0.5, 0.5) == pytest.approx(0.5)
        assert backoff_delay(7, 0.5, 0.1) == pytest.approx(0.1)

    def test_gives_up_on_attempts_and_timeout(self):
        policy = RetryPolicy(max_attempts=3, op_timeout=2.0)
        assert not policy.gives_up(2, 0.5)
        assert policy.gives_up(3, 0.5)
        assert policy.gives_up(1, 2.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_backoff=-1.0)


class TestShardUnavailable:
    """Satellite: ops routed to a killed shard raise the typed error."""

    def _mongo_as(self):
        cluster = MongoAsCluster(shard_count=4, max_chunk_docs=100)
        client = YcsbClient(cluster, WORKLOADS["A"], record_count=400, seed=21)
        client.load()
        return cluster

    def _dead_key(self, cluster, shard):
        """A key routed to the killed shard (read raises)."""
        for i in range(400):
            key = make_key(i)
            try:
                cluster.read(key)
            except ShardUnavailable:
                return key
        pytest.fail("no key routed to the dead shard")

    def test_mongo_as_read_write_scan(self):
        cluster = self._mongo_as()
        cluster.kill_shard(0)
        key = self._dead_key(cluster, 0)
        with pytest.raises(ShardUnavailable) as info:
            cluster.read(key)
        assert info.value.shard == 0
        with pytest.raises(ShardUnavailable):
            cluster.update(key, "field0", "x")
        # A range scan over the whole keyspace must cross the dead shard.
        with pytest.raises(ShardUnavailable):
            cluster.scan(make_key(0), 400)

    def test_mongo_as_restart_heals(self):
        cluster = self._mongo_as()
        cluster.kill_shard(1)
        cluster.restart_shard(1)
        for i in range(0, 400, 7):
            assert cluster.read(make_key(i)) is not None
        assert len(cluster.scan(make_key(0), 50)) == 50

    def test_typed_error_is_both_families(self):
        exc = ShardUnavailable("gone", shard=3)
        assert isinstance(exc, ShardingError)
        assert isinstance(exc, ServerCrashed)
        assert exc.shard == 3

    def test_mongo_cs_hash_routed(self):
        cluster = MongoCsCluster(shard_count=4)
        rng = SeedStream(5).rng_for("data")
        for i in range(60):
            cluster.insert(make_key(i), make_record(rng))
        cluster.kill_shard(2)
        key = next(
            make_key(i) for i in range(60) if hash_shard(make_key(i), 4) == 2
        )
        with pytest.raises(ShardUnavailable) as info:
            cluster.read(key)
        assert info.value.shard == 2
        with pytest.raises(ShardUnavailable):
            cluster.scan(make_key(0), 60)  # broadcast hits every shard
        cluster.restart_shard(2)
        assert cluster.read(key) is not None

    def test_sql_cs_cluster(self):
        cluster = SqlCsCluster(shard_count=4)
        rng = SeedStream(5).rng_for("data")
        for i in range(60):
            cluster.insert(make_key(i), make_record(rng))
        cluster.kill_shard(1)
        key = next(
            make_key(i) for i in range(60) if hash_shard(make_key(i), 4) == 1
        )
        with pytest.raises(ShardUnavailable):
            cluster.read(key)
        with pytest.raises(ShardUnavailable):
            cluster.update(key, "field0", "x")
        with pytest.raises(ShardUnavailable):
            cluster.scan(make_key(0), 60)
        cluster.restart_shard(1)
        assert cluster.read(key) is not None


class TestFaultedYcsbRun:
    def _report(self, plan_text, **kwargs):
        from repro.faults.report import oltp_fault_report

        plan = FaultPlan.parse(plan_text, seed=7)
        return oltp_fault_report(plan, workload="A", system="mongo-as",
                                 shard_count=8, record_count=800,
                                 operations=1600, **kwargs)

    def test_one_dead_shard_costs_about_an_eighth(self):
        # The expectation is 1/8 = 0.125; scrambled-zipfian hot keys put a
        # large share of traffic on a few records, so the per-shard rate
        # lands in a wide band around it.
        report = self._report("kill-shard:0@0")
        rate = report.comparison["error_rate"]
        assert 0.03 < rate < 0.30
        assert report.faulted["availability"] == pytest.approx(1.0 - rate)
        assert report.healthy["availability"] == 1.0
        assert report.comparison["retried_ops"] > 0
        assert report.comparison["backoff_seconds"] > 0.0

    def test_restart_restores_availability(self):
        killed = self._report("kill-shard:0@0.25")
        healed = self._report("kill-shard:0@0.25;restart-shard:0@0.5")
        assert healed.comparison["error_rate"] < killed.comparison["error_rate"]

    def test_errors_folded_into_histograms(self):
        tracer = Tracer()
        report = self._report("kill-shard:0@0", tracer=tracer)
        total_errors = sum(report.faulted["errors"].values())
        assert total_errors > 0
        names = {s.name for s in tracer.spans}
        assert "fault.kill-shard" in names
        assert "retry.backoff" in names

    def test_healthy_run_unchanged_by_empty_plan(self):
        cluster = MongoAsCluster(shard_count=4, max_chunk_docs=4000)
        run = FaultedYcsbRun(cluster, WORKLOADS["A"], record_count=200,
                             operations=400, plan=FaultPlan(), seed=11)
        run.load()
        stats = run.run()
        assert stats.availability == 1.0
        assert stats.retries == 0
        assert stats.error_count == 0
        assert stats.attempted == 400


class TestCliValidation:
    """Satellite: bad input exits 2 with a one-line error, no traceback."""

    def _error(self, capsys, argv):
        code = cli_main(argv)
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: ")
        assert len(captured.err.strip().splitlines()) == 1
        return captured.err

    def test_unknown_workload(self, capsys):
        err = self._error(capsys, ["oltp", "--workload", "Z"])
        assert "unknown workload" in err

    def test_negative_scale_factor(self, capsys):
        self._error(capsys, ["dbgen", "--sf", "-1"])
        self._error(capsys, ["query", "1", "--sf", "0"])
        self._error(capsys, ["dss", "--trace-sf", "-5", "--faults",
                             "crash:n1@0.5"])

    def test_bad_fault_plan(self, capsys):
        err = self._error(capsys, ["oltp", "--faults", "bogus"])
        assert "bad fault spec" in err

    def test_fault_report_requires_faults(self, capsys):
        self._error(capsys, ["oltp", "--fault-report", "x.json"])

    def test_bad_target(self, capsys):
        self._error(capsys, ["oltp", "--target", "-100"])

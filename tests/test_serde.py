"""Tests for the Hive text SerDe and its comparison with RCFile."""

import pytest

from repro.common.errors import StorageError
from repro.hive import serde
from repro.tpch.schema import LINEITEM, NATION


class TestTextRoundTrip:
    def test_roundtrip_lineitem_rows(self, tiny_db):
        rows = tiny_db.table("lineitem").rows[:200]
        data = serde.encode_rows(rows, LINEITEM)
        decoded = serde.decode_rows(data, LINEITEM)
        assert decoded == rows

    def test_nulls(self):
        rows = [{"n_nationkey": 1, "n_name": None, "n_regionkey": 0,
                 "n_comment": "x"}]
        data = serde.encode_rows(rows, NATION)
        assert b"\\N" in data
        assert serde.decode_rows(data, NATION)[0]["n_name"] is None

    def test_empty(self):
        assert serde.encode_rows([], NATION) == b""
        assert serde.decode_rows(b"", NATION) == []

    def test_delimiter_in_value_rejected(self):
        rows = [{"n_nationkey": 1, "n_name": "a\x01b", "n_regionkey": 0,
                 "n_comment": "x"}]
        with pytest.raises(StorageError):
            serde.encode_rows(rows, NATION)

    def test_malformed_line_rejected(self):
        with pytest.raises(StorageError):
            serde.decode_rows(b"only\x01three\x01fields\n", NATION)


class TestColumnAccess:
    def test_read_column_values(self, tiny_db):
        rows = tiny_db.table("nation").rows
        data = serde.encode_rows(rows, NATION)
        names = serde.read_column(data, NATION, "n_name")
        assert names == [r["n_name"] for r in rows]
        with pytest.raises(StorageError):
            serde.read_column(data, NATION, "nope")


class TestStorageComparison:
    def test_text_is_larger_than_compressed_rcfile(self, tiny_db):
        """The §3.2.1 rationale for switching to RCFile, measured."""
        rows = tiny_db.table("lineitem").rows[:1000]
        ratio = serde.size_ratio_vs_rcfile(rows, LINEITEM)
        assert ratio > 1.5  # text pays ASCII numerics and no compression

    def test_rcfile_column_read_touches_less(self, tiny_db):
        """RCFile reads one column's compressed runs; text reads everything."""
        from repro.hive import rcfile

        rows = tiny_db.table("lineitem").rows[:1000]
        columnar = rcfile.encode(rows, LINEITEM.names)
        values_rc = rcfile.read_column(columnar, "l_quantity")
        text = serde.encode_rows(rows, LINEITEM)
        values_txt = serde.read_column(text, LINEITEM, "l_quantity")
        assert values_rc == values_txt  # same answer, different cost model

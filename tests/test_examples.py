"""Smoke tests: every example script runs cleanly end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str, capsys) -> str:
    path = EXAMPLES / name
    assert path.exists(), path
    saved_argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = saved_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run_example("quickstart.py", capsys)
        assert "Q5 answer" in out
        assert "speedup" in out
        assert "workload C" in out

    def test_storage_engines_demo(self, capsys):
        out = _run_example("storage_engines_demo.py", capsys)
        assert "balancer moved" in out
        assert "consistency: OK" in out
        assert "LOST" in out  # the journal durability window
        assert "OP_REPLY" in out

    def test_warehouse_migration(self, capsys):
        out = _run_example("warehouse_migration.py", capsys)
        assert "Table 3" in out
        assert "Batch-window planning" in out
        assert "Sub-query 4" in out

    def test_dataserving_sizing(self, capsys):
        out = _run_example("dataserving_sizing.py", capsys)
        assert "workload E" in out
        assert "Provisioning" in out
        assert "CRASH" in out

    @pytest.mark.slow
    def test_future_hardware(self, capsys):
        out = _run_example("future_hardware.py", capsys)
        assert "flash-era disks" in out
        assert "sql_advantage" in out

"""Tests for the OLTP performance model: Figures 2-6 shape claims."""

import pytest

from repro.common.errors import ServerCrashed, WorkloadError
from repro.core.oltp import SYSTEMS, OltpParams, OltpStudy, Station, closed_mva
from repro.ycsb.workloads import WORKLOADS


@pytest.fixture(scope="module")
def study():
    return OltpStudy()


class TestMva:
    def test_single_station_saturates(self):
        station = Station("s", 1, service={"read": 0.01})
        x, r, _ = closed_mva([station], {"read": 1.0}, clients=100, think_time=0.0)
        assert x == pytest.approx(100.0, rel=0.01)  # 1 / 10ms
        assert r == pytest.approx(1.0, rel=0.05)  # N/X

    def test_think_time_throttles(self):
        station = Station("s", 1, service={"read": 0.001})
        x, _, _ = closed_mva([station], {"read": 1.0}, clients=100, think_time=0.9)
        assert x < 120  # ~100/0.9

    def test_multi_server_scales(self):
        one = Station("s", 1, service={"read": 0.01})
        ten = Station("s", 10, service={"read": 0.01})
        x1, _, _ = closed_mva([one], {"read": 1.0}, 200, 0.0)
        x10, _, _ = closed_mva([ten], {"read": 1.0}, 200, 0.0)
        assert x10 == pytest.approx(x1 * 10, rel=0.05)


class TestCacheModel:
    def test_mongo_misses_more_than_sql(self, study):
        c = WORKLOADS["C"]
        sql = study.miss_rate(SYSTEMS["sql-cs"], c)
        mongo = study.miss_rate(SYSTEMS["mongo-as"], c)
        assert 0.01 < sql < 0.15
        assert mongo > sql * 1.3

    def test_latest_distribution_nearly_all_hits(self, study):
        d = WORKLOADS["D"]
        assert study.miss_rate(SYSTEMS["sql-cs"], d) <= 0.01  # paper: 99.5% hits

    def test_hottest_key_share(self, study):
        # Zipfian theta=0.99 over 640M keys: rank 0 draws ~4% of requests.
        assert 0.02 < study.hottest_key_share() < 0.08


class TestWorkloadC:
    """Figure 2: 100% reads."""

    def test_peak_order_and_magnitude(self, study):
        sql = study.peak_throughput("sql-cs", "C")
        as_ = study.peak_throughput("mongo-as", "C")
        cs = study.peak_throughput("mongo-cs", "C")
        assert sql > as_ > cs
        assert sql == pytest.approx(125_457, rel=0.25)
        assert as_ == pytest.approx(68_533, rel=0.25)
        assert cs == pytest.approx(60_907, rel=0.25)

    def test_latency_at_peak(self, study):
        point = study.evaluate("sql-cs", "C", 160_000)
        assert point.latency_ms("read") == pytest.approx(6.4, rel=0.3)
        mongo = study.evaluate("mongo-as", "C", 160_000)
        assert mongo.latency_ms("read") == pytest.approx(11.8, rel=0.3)

    def test_sql_lower_latency_at_every_target(self, study):
        for target in (5_000, 10_000, 20_000, 40_000):
            sql = study.evaluate("sql-cs", "C", target)
            mongo = study.evaluate("mongo-as", "C", target)
            assert sql.latency_ms("read") < mongo.latency_ms("read")
            assert sql.achieved == pytest.approx(target, rel=0.01)


class TestWorkloadB:
    """Figure 3: 95% reads, 5% updates — checkpointing trims the peak."""

    def test_sql_peak_near_paper(self, study):
        assert study.peak_throughput("sql-cs", "B") == pytest.approx(103_789, rel=0.25)

    def test_b_peak_below_c_peak(self, study):
        for name in SYSTEMS:
            assert study.peak_throughput(name, "B") < study.peak_throughput(name, "C")

    def test_mongo_saturates_well_below_sql(self, study):
        assert study.peak_throughput("mongo-as", "B") < 0.65 * study.peak_throughput(
            "sql-cs", "B"
        )


class TestWorkloadA:
    """Figure 4: 50/50 — the global write lock era."""

    def test_all_peaks_far_below_b(self, study):
        for name in SYSTEMS:
            assert study.peak_throughput(name, "A") < 0.5 * study.peak_throughput(name, "B")

    def test_sql_still_wins(self, study):
        assert study.peak_throughput("sql-cs", "A") > study.peak_throughput("mongo-as", "A")

    def test_mongo_global_lock_utilization(self, study):
        """mongostat showed 25-45% write-lock time under workload A."""
        from repro.docstore.mongostat import PAPER_LOCK_BAND, in_paper_lock_band

        # At an in-band operating point the MVA lock occupancy sits inside
        # the paper's measured band; at full saturation it only climbs.
        point = study.evaluate("mongo-as", "A", 6_000)
        assert in_paper_lock_band(100.0 * point.utilization["hotlock"])
        sat = study.evaluate("mongo-as", "A", 40_000)
        assert 100.0 * sat.utilization["hotlock"] >= PAPER_LOCK_BAND[0]

    def test_read_uncommitted_lowers_read_latency(self):
        """The paper's §3.4.3 isolation experiment."""
        rc = OltpStudy(isolation="read_committed").evaluate("sql-cs", "A", 40_000)
        ru = OltpStudy(isolation="read_uncommitted").evaluate("sql-cs", "A", 40_000)
        assert ru.latency_ms("read") < 0.5 * rc.latency_ms("read")

    def test_invalid_isolation(self):
        with pytest.raises(WorkloadError):
            OltpStudy(isolation="serializable")


class TestWorkloadD:
    """Figure 5: read-latest; Mongo-AS collapses on the append path."""

    def test_sql_cpu_bound_and_fast(self, study):
        assert study.peak_throughput("sql-cs", "D") > 250_000
        point = study.evaluate("sql-cs", "D", 160_000)
        assert point.latency_ms("read") < 2.0  # paper: microseconds-to-ms

    def test_mongo_cs_peak(self, study):
        assert study.peak_throughput("mongo-cs", "D") == pytest.approx(224_271, rel=0.25)

    def test_mongo_as_crashes_above_20k(self, study):
        study.evaluate("mongo-as", "D", 20_000)  # survives
        with pytest.raises(ServerCrashed):
            study.evaluate("mongo-as", "D", 40_000)

    def test_mongo_as_append_latency_pathological(self, study):
        point = study.evaluate("mongo-as", "D", 20_000)
        assert point.latency_ms("insert") > 100  # paper: 320 ms

    def test_curve_marks_crashes_none(self, study):
        curve = study.curve("mongo-as", "D", [20_000, 40_000, 80_000])
        assert curve[0] is not None
        assert curve[1] is None and curve[2] is None


class TestWorkloadE:
    """Figure 6: short scans — range partitioning wins."""

    def test_mongo_as_highest_peak(self, study):
        as_ = study.peak_throughput("mongo-as", "E")
        assert as_ > study.peak_throughput("sql-cs", "E")
        assert as_ > study.peak_throughput("mongo-cs", "E")
        assert as_ == pytest.approx(6_337, rel=0.35)

    def test_mongo_as_lowest_scan_latency(self, study):
        for target in (1_000, 2_000):
            as_ = study.evaluate("mongo-as", "E", target)
            sql = study.evaluate("sql-cs", "E", target)
            assert as_.latency_ms("scan") < sql.latency_ms("scan")

    def test_mongo_as_append_far_worse_than_sql(self, study):
        """Paper: 1832 ms (Mongo-AS) vs 2 ms (SQL-CS) appends."""
        as_ = study.evaluate("mongo-as", "E", 4_000)
        sql = study.evaluate("sql-cs", "E", 1_000)
        assert as_.latency_ms("insert") > 3 * sql.latency_ms("insert")


class TestLoadTimes:
    def test_section_342_ordering(self, study):
        mongo_as = study.load_time_minutes("mongo-as")
        sql = study.load_time_minutes("sql-cs")
        mongo_cs = study.load_time_minutes("mongo-cs")
        # Paper: 114 / 146 / 45 minutes.
        assert mongo_cs < mongo_as < sql
        assert mongo_as == pytest.approx(114, rel=0.2)
        assert sql == pytest.approx(146, rel=0.2)
        assert mongo_cs == pytest.approx(45, rel=0.2)

    def test_pre_split_saves_time(self, study):
        with_split = study.load_time_minutes("mongo-as", pre_split=True)
        without = study.load_time_minutes("mongo-as", pre_split=False)
        assert without > with_split * 1.3

    def test_unknown_system(self, study):
        with pytest.raises(WorkloadError):
            study.load_time_minutes("cassandra")


class TestCustomParams:
    def test_smaller_cluster_lowers_peaks(self):
        small = OltpStudy(OltpParams(server_nodes=4))
        big = OltpStudy(OltpParams(server_nodes=8))
        assert small.peak_throughput("sql-cs", "C") < big.peak_throughput("sql-cs", "C")

"""Tests for the HDFS model."""

import pytest

from repro.common.errors import OutOfDiskSpace, StorageError
from repro.common.units import MB, TB
from repro.hdfs import DEFAULT_BLOCK_SIZE, HdfsFile, NameNode


class TestHdfsFile:
    def test_block_count(self):
        f = HdfsFile("/a", 300 * MB)
        assert f.num_blocks == 2  # 256 MB blocks

    def test_exact_block_boundary(self):
        assert HdfsFile("/a", DEFAULT_BLOCK_SIZE).num_blocks == 1
        assert HdfsFile("/a", DEFAULT_BLOCK_SIZE + 1).num_blocks == 2

    def test_empty_file_has_one_block_entry(self):
        # An empty bucket file still gets a map task.
        assert HdfsFile("/empty", 0).num_blocks == 1

    def test_replicated_bytes(self):
        assert HdfsFile("/a", 100).stored_bytes == 300

    def test_invalid(self):
        with pytest.raises(StorageError):
            HdfsFile("/a", -1)
        with pytest.raises(StorageError):
            HdfsFile("/a", 10, block_size=0)


class TestNameNode:
    def test_create_stat_delete(self):
        nn = NameNode(capacity=1 * TB)
        nn.create("/data/x", 100 * MB)
        assert nn.exists("/data/x")
        assert nn.stat("/data/x").size == 100 * MB
        assert nn.used == 300 * MB
        nn.delete("/data/x")
        assert not nn.exists("/data/x")
        assert nn.used == 0

    def test_duplicate_create_rejected(self):
        nn = NameNode(capacity=1 * TB)
        nn.create("/a", 1)
        with pytest.raises(StorageError):
            nn.create("/a", 1)

    def test_capacity_enforced(self):
        # Reproduces the Q9-at-16TB failure mode: replicated intermediate
        # writes exceed the raw capacity of the cluster.
        nn = NameNode(capacity=1000)
        nn.create("/base", 200)  # uses 600
        with pytest.raises(OutOfDiskSpace):
            nn.create("/tmp/intermediate", 200)  # needs 600 more

    def test_custom_replication(self):
        nn = NameNode(capacity=1000)
        nn.create("/tmp", 300, replication=1)
        assert nn.used == 300

    def test_listdir(self):
        nn = NameNode(capacity=1 * TB)
        nn.create("/warehouse/lineitem/b0", 10)
        nn.create("/warehouse/lineitem/b1", 10)
        nn.create("/warehouse/orders/b0", 10)
        files = nn.listdir("/warehouse/lineitem/")
        assert [f.path for f in files] == [
            "/warehouse/lineitem/b0",
            "/warehouse/lineitem/b1",
        ]

    def test_missing_file_errors(self):
        nn = NameNode(capacity=10)
        with pytest.raises(StorageError):
            nn.stat("/nope")
        with pytest.raises(StorageError):
            nn.delete("/nope")

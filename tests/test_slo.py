"""Burn-rate SLO rules and the multi-window monitor (repro.obs.slo)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.obs import SloMonitor, SloRule, parse_slo_rules
from repro.obs.digest import QuantileDigest


class TestGrammar:
    def test_percentile_rule(self):
        rule = SloRule.parse("p99<=250ms@5s,60s")
        assert rule.metric == "p99"
        assert rule.threshold == pytest.approx(0.250)
        assert rule.windows == (5.0, 60.0)
        assert rule.budget == pytest.approx(0.01)
        assert rule.spec_string() == "p99<=250ms@5s,60s"

    def test_error_rate_percent_and_fraction(self):
        assert SloRule.parse("error_rate<=1%@10s").threshold == \
            pytest.approx(0.01)
        assert SloRule.parse("error_rate<=0.05@10s").threshold == \
            pytest.approx(0.05)

    def test_mean_rule_and_minutes(self):
        rule = SloRule.parse("mean<=5ms@1m")
        assert rule.threshold == pytest.approx(0.005)
        assert rule.windows == (60.0,)

    def test_rule_list(self):
        rules = parse_slo_rules("p99<=250ms@5s,60s ; error_rate<=1%@10s")
        assert [r.metric for r in rules] == ["p99", "error_rate"]

    @pytest.mark.parametrize("spec", [
        "", ";", "p99<=250ms", "p99@5s", "p42<=250ms@5s", "p99<=abc@5s",
        "p99<=250ms@abc", "p99<=250ms@-5s", "p99<=-1ms@5s",
        "error_rate<=150%@5s", "error_rate<=0@5s", "p99<=250ms@",
    ])
    def test_malformed(self, spec):
        with pytest.raises(ConfigurationError):
            parse_slo_rules(spec)


def digest_with(over: int, under: int, threshold: float = 0.1):
    digest = QuantileDigest()
    digest.record_many([threshold * 10.0] * over)
    digest.record_many([threshold / 10.0] * under)
    return digest


class TestBurnMath:
    def test_percentile_burn_is_fraction_over_budget(self):
        # 10 of 100 ops over the threshold against a 1% budget: 10x burn.
        rule = SloRule.parse("p99<=100ms@5s")
        assert rule.burn(digest_with(10, 90), errors=0) == pytest.approx(
            10.0, rel=0.05)

    def test_burn_zero_when_idle(self):
        rule = SloRule.parse("p99<=100ms@5s")
        assert rule.burn(QuantileDigest(), errors=0) == 0.0

    def test_error_rate_burn(self):
        rule = SloRule.parse("error_rate<=10%@5s")
        # 30 errors out of 60 total: 50% observed vs 10% allowed = 5x.
        assert rule.burn(digest_with(0, 30), errors=30) == pytest.approx(5.0)

    def test_mean_burn(self):
        rule = SloRule.parse("mean<=100ms@5s")
        digest = QuantileDigest()
        digest.record_many([0.2, 0.2])
        assert rule.burn(digest, errors=0) == pytest.approx(2.0)


class FakeSource:
    """Scripted SloMonitor source: per-second op latencies + events."""

    def __init__(self, seconds, events=()):
        self.seconds = seconds  # list of (latency, count) per 1s slice
        self.events = list(events)

    def window(self, start, end):
        digest = QuantileDigest()
        for index, (latency, count) in enumerate(self.seconds):
            if index < end and index + 1 > start:
                digest.record_many([latency] * count)
        return digest

    def errors_in(self, start, end):
        return 0


class TestMonitor:
    def test_fires_only_when_all_windows_burn_and_clears_on_short(self):
        # 100 ms ops for 2 s, then healthy again: the 1 s window fires
        # immediately, but the rule needs the 3 s window too.
        seconds = [(0.001, 100)] * 3 + [(0.5, 100)] * 3 + [(0.001, 100)] * 4
        source = FakeSource(seconds)
        monitor = SloMonitor(parse_slo_rules("p99<=100ms@1s,3s"))
        for t in range(1, 11):
            monitor.evaluate(float(t), source)
        monitor.finish(10.0, source)
        assert len(monitor.alerts) == 1
        alert = monitor.alerts[0]
        # Slice 4 (ops in [3,4)) burns the 1 s window, but the 3 s window
        # still holds 2/3 healthy slices (66% > 1% budget is burning too,
        # so it actually fires at t=4).
        assert alert.fired_at == 4.0
        # Clears once the short window is healthy again: slices [6,7) on.
        assert alert.cleared_at == 7.0
        assert alert.peak_burn >= 1.0

    def test_blip_shorter_than_long_window_budget_suppressed(self):
        # One bad op in 1000 over the long window stays inside the 1%
        # budget, so the long window never reaches 1x and nothing fires.
        seconds = [(0.001, 500)] * 5
        seconds[2] = (0.5, 1)  # a single slow op
        monitor = SloMonitor(parse_slo_rules("p99<=100ms@1s,5s"))
        source = FakeSource(seconds)
        for t in range(1, 6):
            monitor.evaluate(float(t), source)
        monitor.finish(5.0, source)
        assert monitor.alerts == []

    def test_still_open_alert_closed_at_finish(self):
        seconds = [(0.5, 100)] * 3
        monitor = SloMonitor(parse_slo_rules("p99<=100ms@1s,2s"))
        source = FakeSource(seconds)
        for t in range(1, 4):
            monitor.evaluate(float(t), source)
        monitor.finish(3.0, source)
        (alert,) = monitor.alerts
        assert alert.cleared_at == 3.0

    def test_attribution_prefers_overlapping_interval(self):
        # An instant marker coincides with detection, but the kill's
        # failover interval covers more of the detection window — the
        # alert must name the kill.
        seconds = [(0.001, 100)] * 2 + [(0.5, 100)] * 2
        events = [
            ("kill-member:1", 1.8, 3.1),
            ("marker:coincidence", 2.9, 2.9),
        ]
        monitor = SloMonitor(parse_slo_rules("p99<=100ms@1s,2s"))
        source = FakeSource(seconds, events)
        for t in range(1, 5):
            monitor.evaluate(float(t), source)
        monitor.finish(4.0, source)
        (alert,) = monitor.alerts
        assert alert.event == "kill-member:1"

    def test_late_noted_event_attributed_at_finish(self):
        seconds = [(0.5, 100)] * 2
        monitor = SloMonitor(parse_slo_rules("p99<=100ms@1s"))
        source = FakeSource(seconds)  # no events known yet
        monitor.evaluate(1.0, source)
        assert monitor.alerts[0].event is None
        source.events.append(("kill-member:0", 0.2, 1.5))
        monitor.finish(2.0, source)
        assert monitor.alerts[0].event == "kill-member:0"

    def test_alert_to_dict_shape(self):
        seconds = [(0.5, 100)] * 2
        monitor = SloMonitor(parse_slo_rules("p99<=100ms@1s"))
        source = FakeSource(seconds)
        monitor.evaluate(1.0, source)
        monitor.finish(2.0, source)
        (row,) = monitor.to_dicts()
        assert set(row) == {"rule", "fired_at", "cleared_at", "peak_burn",
                            "event"}

"""Causal links, critical-path extraction, slack, and span parentage."""

import json

import pytest

from repro.common.errors import SimulationError
from repro.obs import (
    NULL_TRACER,
    Tracer,
    critical_path,
    dumps_critical_path,
    link_violations,
    nesting_violations,
    pick_root,
    render_critical_path,
)
from repro.obs.critpath import SCHEMA


class TestTracerLinks:
    def test_link_records_predecessor(self):
        tracer = Tracer()
        a = tracer.add("a", 0.0, 1.0)
        b = tracer.add("b", 1.0, 2.0)
        tracer.link(a, b, "seq")
        assert b.links == [(a.span_id, "seq")]
        assert a.links == []

    def test_duplicate_links_collapse_but_kinds_are_distinct(self):
        tracer = Tracer()
        a = tracer.add("a", 0.0, 1.0)
        b = tracer.add("b", 1.0, 2.0)
        tracer.link(a, b, "seq")
        tracer.link(a, b, "seq")
        assert b.links == [(a.span_id, "seq")]
        tracer.link(a, b, "barrier")
        assert b.links == [(a.span_id, "seq"), (a.span_id, "barrier")]

    def test_self_link_rejected(self):
        tracer = Tracer()
        a = tracer.add("a", 0.0, 1.0)
        with pytest.raises(SimulationError):
            tracer.link(a, a, "seq")

    def test_null_tracer_link_is_noop(self):
        assert NULL_TRACER.link("anything", "goes", kind="seq") is None

    def test_children_of_uses_span_ids(self):
        tracer = Tracer()
        root = tracer.add("root", 0.0, 10.0)
        kid = tracer.add("kid", 0.0, 5.0, parent=root.span_id)
        other = tracer.add("other", 0.0, 1.0)
        assert tracer.children_of(root) == [kid]
        assert tracer.children_of(other) == []


class TestLinkViolations:
    def test_clean_chain_has_no_violations(self):
        tracer = Tracer()
        a = tracer.add("a", 0.0, 1.0)
        b = tracer.add("b", 1.0, 2.0)
        tracer.link(a, b, "seq")
        assert link_violations(tracer) == []

    def test_orphan_link_reported(self):
        tracer = Tracer()
        b = tracer.add("b", 1.0, 2.0)
        b.links.append((999, "seq"))
        problems = link_violations(tracer)
        assert len(problems) == 1
        assert "unknown span id 999" in problems[0]

    def test_self_link_reported(self):
        tracer = Tracer()
        b = tracer.add("b", 1.0, 2.0)
        b.links.append((b.span_id, "seq"))  # bypass Tracer.link's guard
        assert any("link to itself" in p for p in link_violations(tracer))

    def test_time_travel_reported(self):
        tracer = Tracer()
        late = tracer.add("late", 5.0, 6.0)
        early = tracer.add("early", 0.0, 1.0)
        tracer.link(late, early, "seq")  # early waited for late: impossible
        assert any("predecessor" in p for p in link_violations(tracer))

    def test_cycle_detected_iteratively_on_deep_chain(self):
        # A 5000-deep predecessor chain closed into a ring: recursion-based
        # cycle detection would blow the interpreter stack here.
        tracer = Tracer()
        spans = [tracer.add(f"s{i}", float(i), float(i) + 1.0)
                 for i in range(5000)]
        for prev, span in zip(spans, spans[1:]):
            tracer.link(prev, span, "seq")
        spans[0].links.append((spans[-1].span_id, "seq"))  # close the ring
        assert any("cycle" in p for p in link_violations(tracer))

    def test_acyclic_deep_chain_is_clean(self):
        tracer = Tracer()
        spans = [tracer.add(f"s{i}", float(i), float(i) + 1.0)
                 for i in range(5000)]
        for prev, span in zip(spans, spans[1:]):
            tracer.link(prev, span, "seq")
        assert link_violations(tracer) == []


class TestCriticalPathSynthetic:
    def _linked_run(self):
        """root [0,10] containing a 3-span linked chain with a waiting gap."""
        tracer = Tracer()
        root = tracer.add("root", 0.0, 10.0, cat="query")
        a = tracer.add("a", 0.0, 3.0, parent=root.span_id, cat="task")
        b = tracer.add("b", 4.0, 7.0, parent=root.span_id, cat="task")
        c = tracer.add("c", 7.0, 10.0, parent=root.span_id, cat="task")
        tracer.link(a, b, "barrier")
        tracer.link(b, c, "seq")
        return tracer, root, (a, b, c)

    def test_path_tiles_root_exactly(self):
        tracer, root, (a, b, c) = self._linked_run()
        path = critical_path(tracer)
        assert path.root is root
        assert path.segments[0].start == root.start
        assert path.segments[-1].end == root.end
        for prev, seg in zip(path.segments, path.segments[1:]):
            assert seg.start == pytest.approx(prev.end)
        assert sum(seg.seconds for seg in path.segments) == pytest.approx(
            path.total_seconds)

    def test_waiting_gap_becomes_wait_segment(self):
        tracer, root, (a, b, c) = self._linked_run()
        path = critical_path(tracer)
        waits = [seg for seg in path.segments if seg.via == "wait"]
        assert len(waits) == 1
        assert (waits[0].start, waits[0].end) == (3.0, 4.0)
        assert waits[0].span is root

    def test_edges_record_the_links_used(self):
        tracer, root, (a, b, c) = self._linked_run()
        path = critical_path(tracer)
        assert (a.span_id, b.span_id, "barrier") in path.edges
        assert (b.span_id, c.span_id, "seq") in path.edges

    def test_slack_of_off_path_span(self):
        tracer, root, (a, b, c) = self._linked_run()
        idle = tracer.add("idle", 0.0, 2.0, parent=root.span_id, cat="task")
        path = critical_path(tracer)
        assert path.slack[(idle.span_id, "idle")] == pytest.approx(8.0)
        assert path.slack[(c.span_id, "c")] == 0.0
        top = path.top_slack()
        assert top[0][0] == idle.span_id

    def test_cycle_in_sibling_chain_raises(self):
        # Two zero-width spans at the same instant claiming to wait on each
        # other: the only link arrangement that is time-consistent yet
        # cyclic, so the chain walk must detect the revisit.
        tracer = Tracer()
        root = tracer.add("root", 0.0, 10.0, cat="query")
        a = tracer.add("a", 5.0, 5.0, parent=root.span_id)
        b = tracer.add("b", 5.0, 5.0, parent=root.span_id)
        tracer.link(a, b, "seq")
        tracer.link(b, a, "seq")
        with pytest.raises(SimulationError):
            critical_path(tracer)

    def test_orphan_links_are_skipped_not_fatal(self):
        tracer, root, (a, b, c) = self._linked_run()
        c.links.append((424242, "seq"))
        path = critical_path(tracer)  # must not raise
        assert path.segments[-1].end == root.end

    def test_deep_nesting_does_not_recurse(self):
        # 1200 nested spans: one child per level.  A recursive extractor
        # would exceed the default interpreter limit (~1000 frames).
        tracer = Tracer()
        parent = tracer.add("level0", 0.0, 1200.0, cat="query")
        for i in range(1, 1200):
            parent = tracer.add(f"level{i}", float(i), 1200.0,
                                parent=parent.span_id)
        path = critical_path(tracer)
        assert len(path.segments) == 1200
        assert path.segments[0].start == 0.0
        assert path.segments[-1].end == 1200.0

    def test_pick_root_prefers_query_spans(self):
        tracer = Tracer()
        tracer.add("long", 0.0, 100.0)
        q = tracer.add("q", 0.0, 10.0, cat="query")
        assert pick_root(tracer.spans) is q

    def test_pick_root_without_spans_raises(self):
        with pytest.raises(SimulationError):
            pick_root([])

    def test_serialization_is_deterministic(self):
        tracer, _, _ = self._linked_run()
        path = critical_path(tracer)
        text = dumps_critical_path(path)
        assert text == dumps_critical_path(critical_path(tracer))
        doc = json.loads(text)
        assert doc["schema"] == SCHEMA
        assert doc["root"]["seconds"] == 10.0
        assert [seg["via"] for seg in doc["segments"]].count("wait") == 1

    def test_render_mentions_every_segment(self):
        tracer, _, _ = self._linked_run()
        path = critical_path(tracer)
        text = render_critical_path(path)
        assert "critical path: root" in text
        assert "by category:" in text


class TestCriticalPathTracedRuns:
    def test_hive_q1_path_tiles_the_query(self, causal_study):
        _, tracer, path = causal_study.critical_path(1, 250.0, engine="hive")
        assert nesting_violations(tracer) == []
        assert link_violations(tracer) == []
        assert path.segments[0].start == pytest.approx(path.root.start)
        assert path.segments[-1].end == pytest.approx(path.root.end)
        covered = sum(seg.seconds for seg in path.segments)
        assert covered == pytest.approx(path.total_seconds)
        for prev, seg in zip(path.segments, path.segments[1:]):
            assert seg.start == pytest.approx(prev.end)
        # The map wave dominates Q1 and enters the path via slot chains.
        assert any(seg.via == "slot" for seg in path.segments)

    def test_pdw_q1_path_tiles_the_query(self, causal_study):
        _, tracer, path = causal_study.critical_path(1, 250.0, engine="pdw")
        assert link_violations(tracer) == []
        covered = sum(seg.seconds for seg in path.segments)
        assert covered == pytest.approx(path.total_seconds)

    def test_extraction_is_deterministic_across_runs(self, causal_study):
        _, _, first = causal_study.critical_path(5, 1000.0, engine="hive")
        _, _, second = causal_study.critical_path(5, 1000.0, engine="hive")
        assert dumps_critical_path(first) == dumps_critical_path(second)

    def test_oltp_paths_deterministic_per_seed(self):
        from repro.core.oltp import OltpStudy

        study = OltpStudy()
        runs = {}
        for seed in (1234, 1234, 99):
            _, _, _, path = study.critical_path(
                "mongo-cs", "A", 20_000.0, duration=30.0, seed=seed)
            runs.setdefault(seed, []).append(dumps_critical_path(path))
        assert runs[1234][0] == runs[1234][1]  # same seed -> identical path
        assert runs[1234][0] != runs[99][0]  # different seed -> different trace

    def test_eventsim_links_are_clean(self):
        from repro.core.oltp import OltpStudy

        study = OltpStudy()
        _, _, tracer = study.traced_point("mongo-cs", "A", 20_000.0,
                                          duration=30.0)
        assert link_violations(tracer) == []
        visits = tracer.find(cat="visit")
        assert visits, "event sim should emit per-station visit spans"
        requests = {s.span_id for s in tracer.find(cat="request")}
        # Ops still in flight at the simulation cutoff never get their
        # request span; everything else must be parented.
        orphans = [v for v in visits if v.parent not in requests]
        assert len(orphans) <= 16  # at most one in-flight op per client
        assert all(v.end >= 29.0 for v in orphans)
        assert len(orphans) < len(visits) / 100


class TestFaultSpanParentage:
    """Regression: retry/fault spans must parent under the op they delay."""

    def _faulted_trace(self):
        from repro.docstore.cluster import MongoAsCluster
        from repro.faults import FaultedYcsbRun, FaultPlan
        from repro.ycsb import WORKLOADS

        tracer = Tracer()
        cluster = MongoAsCluster(shard_count=8, max_chunk_docs=4000)
        run = FaultedYcsbRun(
            cluster, WORKLOADS["A"], record_count=800, operations=1600,
            plan=FaultPlan.parse("kill-shard:0@0", seed=7), seed=7,
            tracer=tracer,
        )
        run.load()
        run.run()
        return tracer

    def test_retry_and_fault_spans_parent_under_requests(self):
        tracer = self._faulted_trace()
        requests = {s.span_id for s in tracer.find(cat="request")}
        backoffs = tracer.find(cat="retry")
        faults = tracer.find(cat="fault")
        assert backoffs, "kill-shard at op 0 must cause retries"
        assert faults, "the fault span itself must be traced"
        for span in backoffs + faults:
            assert span.parent in requests, (
                f"{span.name} (id {span.span_id}) is not parented under "
                f"the request it delays"
            )

    def test_backoff_chains_are_linked(self):
        tracer = self._faulted_trace()
        by_id = {s.span_id: s for s in tracer.spans}
        linked = [
            s for s in tracer.find(cat="retry")
            if any(by_id[src].cat == "retry"
                   for src, kind in s.links if src in by_id)
        ]
        assert linked, "consecutive backoffs of one op must chain via links"
        assert link_violations(tracer) == []

"""Same seed + same fault plan => byte-identical reports and traces."""

import pytest

from repro.core.dss import DssStudy
from repro.faults import FaultPlan, RetryPolicy
from repro.faults.report import (
    dss_fault_report,
    dumps_fault_report,
    oltp_fault_report,
)
from repro.obs import MetricsRegistry, Tracer, dumps_chrome_trace
from repro.ycsb.eventsim import SimStation, simulate_closed_loop

STATIONS = [
    SimStation("cpu", 4, {"read": 0.002, "update": 0.003}),
    SimStation("disk", 2, {"read": 0.004, "update": 0.004}),
]
MIX = {"read": 0.5, "update": 0.5}


@pytest.fixture(scope="module")
def study():
    return DssStudy()


class TestDssFaultDeterminism:
    def _run(self, study):
        tracer, metrics = Tracer(), MetricsRegistry()
        plan = FaultPlan.parse("crash:n3@0.5", seed=11)
        report = dss_fault_report(study, 1, 1000.0, plan, tracer=tracer,
                                  metrics=metrics)
        return dumps_fault_report(report), dumps_chrome_trace(tracer, metrics)

    def test_byte_identical_report_and_trace(self, study):
        report_a, trace_a = self._run(study)
        report_b, trace_b = self._run(study)
        assert report_a == report_b
        assert trace_a == trace_b

    def test_fresh_study_same_bytes(self, study):
        """Even a separately calibrated study produces the same bytes."""
        report_a, trace_a = self._run(study)
        report_b, trace_b = self._run(DssStudy())
        assert report_a == report_b
        assert trace_a == trace_b


class TestOltpFaultDeterminism:
    def _run(self):
        tracer, metrics = Tracer(), MetricsRegistry()
        plan = FaultPlan.parse("kill-shard:0@0.25;restart-shard:0@0.75",
                               seed=7)
        report = oltp_fault_report(plan, workload="A", system="mongo-as",
                                   shard_count=8, record_count=600,
                                   operations=1200, tracer=tracer,
                                   metrics=metrics)
        return dumps_fault_report(report), dumps_chrome_trace(tracer, metrics)

    def test_byte_identical_report_and_trace(self):
        report_a, trace_a = self._run()
        report_b, trace_b = self._run()
        assert report_a == report_b
        assert trace_a == trace_b


class TestChaosDeterminism:
    """Same seed + same chaos schedule => byte-identical availability report."""

    def _run(self):
        from repro.faults.availability import (
            availability_report,
            dumps_availability_report,
        )
        from repro.faults.chaos import ChaosConfig

        report = availability_report(
            systems=["mongo-as", "sql-cs"],
            chaos=ChaosConfig(kills=1, partitions=1, lag_spikes=1),
            operations=150, record_count=150, seed=23,
        )
        return dumps_availability_report(report)

    def test_byte_identical_availability_report(self):
        assert self._run() == self._run()

    def test_schedule_is_a_pure_function_of_the_seed(self):
        from repro.faults.chaos import ChaosConfig, chaos_plan

        specs = {
            chaos_plan(ChaosConfig(), 500, 4, 3, seed).spec_string()
            for _ in range(3)
            for seed in (41,)
        }
        assert len(specs) == 1


class TestEventSimFaultDeterminism:
    def _run(self, faults):
        tracer, metrics = Tracer(), MetricsRegistry()
        result = simulate_closed_loop(
            STATIONS, MIX, clients=6, think_time=0.01,
            duration=8.0, warmup=2.0, windows=2, seed=31,
            tracer=tracer, metrics=metrics,
            faults=faults, retry_policy=RetryPolicy(),
        )
        return result, dumps_chrome_trace(tracer, metrics)

    def test_faulted_run_byte_identical(self):
        plan = FaultPlan.parse(
            "disk-stall:disk@3+2x6;op-error:cpu@4+2x0.3;crash:cpu@6+1x0.5"
        )
        result_a, trace_a = self._run(plan)
        result_b, trace_b = self._run(plan)
        assert trace_a == trace_b
        assert result_a.throughput == result_b.throughput
        assert result_a.errors == result_b.errors
        assert result_a.retried_ops == result_b.retried_ops

    def test_no_fault_machinery_is_strictly_opt_in(self):
        """A plan with no station faults must not perturb a single byte."""
        _, bare = self._run(None)
        # kill-shard specs target the functional layer, so the event sim
        # sees an effectively empty plan and must take the healthy path.
        _, empty = self._run(FaultPlan.parse("kill-shard:0@0.5"))
        assert bare == empty

    def test_fault_annotations_present(self):
        plan = FaultPlan.parse("disk-stall:disk@3+2x6")
        result, trace = self._run(plan)
        assert "fault.disk-stall" in trace
        assert result.availability == 1.0  # stalls slow ops, never fail them

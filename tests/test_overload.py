"""Graceful degradation under overload: admission, deadlines, budgets,
breakers, and the metastable-failure demonstration (PR 10)."""

import json

import pytest

from repro.common.errors import (
    ConfigurationError,
    DeadlineExceeded,
    Overloaded,
    SimulationError,
)
from repro.common.rng import SeedStream
from repro.faults import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.faults.runner import FaultedYcsbRun
from repro.obs.live import LiveTelemetry
from repro.overload import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    SHED_DEADLINE,
    SHED_QUEUE_FULL,
    AdmissionResource,
    BreakerBoard,
    CircuitBreaker,
    OverloadPolicy,
    RetryBudget,
    dumps_overload_report,
    functional_overload_cell,
    overload_open_loop,
    overload_report,
    render_overload_report,
    validate_overload_report,
)
from repro.overload.report import DEMO_PLAN, demo_stations, run_overload_arm
from repro.simcluster.events import Environment
from repro.ycsb.eventsim import SimStation, simulate_open_loop
from repro.ycsb.generators import HotspotGenerator
from repro.ycsb.histogram import LatencyHistogram
from repro.ycsb.workloads import WORKLOADS


# -- policy spec parsing -------------------------------------------------------


class TestOverloadPolicy:
    def test_defaults_round_trip(self):
        policy = OverloadPolicy.parse("default")
        assert policy.queue_limit == 64
        assert policy.policy == "deadline-drop"
        assert policy.deadline_s == 0.5
        assert policy.retry_budget == 0.1
        assert policy.breaker
        assert OverloadPolicy.parse(policy.spec_string()) == policy

    def test_duration_units(self):
        policy = OverloadPolicy.parse("deadline=250ms,cooldown=2s")
        assert policy.deadline_s == 0.25
        assert policy.breaker_cooldown == 2.0

    def test_off_values(self):
        policy = OverloadPolicy.parse(
            "queue=off,policy=reject,deadline=off,budget=off,breaker=off")
        assert not policy.protected

    def test_unprotected_strips_server_side_only(self):
        policy = OverloadPolicy.parse("timeout=250ms,attempts=4")
        bare = policy.unprotected()
        assert not bare.protected
        assert bare.client_timeout_s == 0.25
        assert bare.max_attempts == 4

    @pytest.mark.parametrize("spec", [
        "", "nonsense", "queue=0", "policy=bogus", "deadline=-1",
        "budget=1.5", "breaker=maybe", "deadline=5parsecs",
        "queue=64,policy=deadline-drop,deadline=off",
    ])
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ConfigurationError):
            OverloadPolicy.parse(spec)


# -- retry budget --------------------------------------------------------------


class TestRetryBudget:
    def test_caps_retry_fraction(self):
        budget = RetryBudget(0.1, burst=1.0)
        granted = 0
        for _ in range(1000):
            budget.note_op()
            if budget.try_retry():
                granted += 1
        # one token per ten ops, so at most ~10% of traffic is retries
        # (float accumulation may cost a grant every few cycles, never add one)
        assert 85 <= granted <= 100
        assert budget.denied == 1000 - granted

    def test_burst_allows_transient_spike(self):
        budget = RetryBudget(0.1, burst=5.0)
        assert sum(budget.try_retry() for _ in range(10)) == 5


# -- circuit breaker state machine ---------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        breaker = CircuitBreaker(threshold=3, cooldown=1.0)
        for t in range(2):
            breaker.record_failure(float(t))
            assert breaker.state == BREAKER_CLOSED
        breaker.record_failure(2.0)
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow(2.5)
        assert breaker.fast_failures == 1

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1.0)
        breaker.record_failure(0.0)
        assert breaker.state == BREAKER_OPEN
        assert breaker.allow(1.5)  # the single half-open probe
        assert breaker.state == BREAKER_HALF_OPEN
        assert not breaker.allow(1.6)  # only one probe at a time
        breaker.record_success(1.7)
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow(1.8)

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1.0)
        breaker.record_failure(0.0)
        assert breaker.allow(1.5)
        breaker.record_failure(1.6)
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow(2.0)   # cooldown restarts from the reopen
        assert breaker.allow(2.7)

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(threshold=3, cooldown=1.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        breaker.record_success(0.2)
        breaker.record_failure(0.3)
        breaker.record_failure(0.4)
        assert breaker.state == BREAKER_CLOSED

    def test_transition_log(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1.0)
        breaker.record_failure(0.5)
        breaker.allow(2.0)
        breaker.record_success(2.1)
        assert [state for _at, state in breaker.transitions] == [
            BREAKER_OPEN, BREAKER_HALF_OPEN, BREAKER_CLOSED]

    def test_board_is_per_shard(self):
        board = BreakerBoard(threshold=1, cooldown=1.0)
        board.record_failure(0, 0.0)
        assert not board.allow(0, 0.1)
        assert board.allow(1, 0.1)
        snapshot = board.to_dict()
        assert snapshot["0"]["state"] == BREAKER_OPEN
        assert snapshot["1"]["state"] == BREAKER_CLOSED
        assert snapshot["1"]["transitions"] == []


# -- admission control ---------------------------------------------------------


def _drain(env, resource, hold=1.0):
    def holder():
        grant = resource.request()
        outcome = yield grant
        assert outcome is None
        yield env.timeout(hold)
        resource.release()
    return holder


class TestAdmissionResource:
    def test_reject_sheds_newcomer_when_full(self):
        env = Environment()
        resource = AdmissionResource(env, 1, queue_limit=1, policy="reject")
        outcomes = []

        def requester():
            grant = resource.request()
            outcome = yield grant
            outcomes.append(outcome)
            if outcome is None:
                yield env.timeout(1.0)
                resource.release()

        for _ in range(3):
            env.process(requester())
        env.run(until=5.0)
        assert outcomes.count(None) == 2       # served one at a time
        assert outcomes.count(SHED_QUEUE_FULL) == 1
        assert resource.shed[SHED_QUEUE_FULL] == 1

    def test_lifo_sheds_oldest_waiter(self):
        env = Environment()
        resource = AdmissionResource(env, 1, queue_limit=1, policy="lifo")
        shed_order = []

        def requester(tag):
            grant = resource.request()
            outcome = yield grant
            if outcome is None:
                yield env.timeout(10.0)
                resource.release()
            else:
                shed_order.append(tag)

        def staged():
            env.process(requester("a"))   # takes the slot
            yield env.timeout(0.1)
            env.process(requester("b"))   # queues
            yield env.timeout(0.1)
            env.process(requester("c"))   # overflow: sheds b (oldest)

        env.process(staged())
        env.run(until=5.0)
        assert shed_order == ["b"]

    def test_deadline_drop_purges_expired_waiters(self):
        env = Environment()
        resource = AdmissionResource(env, 1, queue_limit=8,
                                     policy="deadline-drop")
        outcomes = {}

        def requester(tag, deadline):
            grant = resource.request(deadline=deadline)
            outcomes[tag] = yield grant
            if outcomes[tag] is None:
                yield env.timeout(2.0)
                resource.release()

        def staged():
            env.process(requester("slow", None))      # holds slot 2s
            yield env.timeout(0.1)
            env.process(requester("doomed", 1.0))     # expires while queued
            env.process(requester("patient", None))

        env.process(staged())
        env.run(until=10.0)
        assert outcomes["slow"] is None
        assert outcomes["doomed"] == SHED_DEADLINE
        assert outcomes["patient"] is None
        assert resource.shed[SHED_DEADLINE] == 1

    def test_priority_sheds_worst_class(self):
        env = Environment()
        resource = AdmissionResource(env, 1, queue_limit=1, policy="priority")
        shed = []

        def requester(tag, priority):
            grant = resource.request(priority=priority)
            outcome = yield grant
            if outcome is None:
                yield env.timeout(10.0)
                resource.release()
            else:
                shed.append(tag)

        def staged():
            env.process(requester("first", 1))    # takes the slot
            yield env.timeout(0.1)
            env.process(requester("scan", 2))     # queues
            yield env.timeout(0.1)
            env.process(requester("read", 0))     # overflow: sheds the scan

        env.process(staged())
        env.run(until=5.0)
        assert shed == ["scan"]

    def test_queue_limit_validation(self):
        env = Environment()
        with pytest.raises(SimulationError):
            AdmissionResource(env, 1, queue_limit=0)
        with pytest.raises(SimulationError):
            AdmissionResource(env, 1, policy="fifo-ish")


# -- typed overload errors ------------------------------------------------------


class TestOverloadErrors:
    def test_hierarchy(self):
        assert issubclass(DeadlineExceeded, Overloaded)
        exc = DeadlineExceeded("too late", station="disk")
        assert exc.reason == "deadline"
        assert exc.station == "disk"


# -- shed accounting: histograms and live telemetry ----------------------------


class TestShedAccounting:
    def test_shed_excluded_from_mean_counted_in_error_rate(self):
        histogram = LatencyHistogram()
        histogram.record(0.010)
        histogram.record(0.020)
        histogram.record_shed()
        histogram.record_shed()
        assert histogram.mean == pytest.approx(0.015)
        assert histogram.total == 2
        assert histogram.error_rate == pytest.approx(2 / 4)
        assert "Shed: 2" in histogram.render()

    def test_merge_carries_shed(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record_shed()
        b.record_shed()
        a.merge(b)
        assert a.shed == 2

    def test_live_records_sheds_outside_digest(self):
        live = LiveTelemetry(slice_s=1.0)
        live.record_op(0.5, 0.010, cls="read")
        live.record_shed(1.5, cls="read", reason="queue-full")
        live.finish(2.0)
        assert live.sheds == 1
        assert live.shed_reasons == {"queue-full": 1}
        merged = live.windowed.window(0.0, 2.0)
        assert merged.count == 1  # shed adds no latency sample
        assert live.error_slices.get(1) == 1  # but it burns the SLO


# -- the overload-aware open loop ----------------------------------------------


def _station():
    return [SimStation("server", 4, {"read": 0.01})]


class TestOverloadOpenLoop:
    def test_unprotected_run_is_byte_identical(self):
        """zero-cost-off: overload=None leaves the plain path untouched."""
        kwargs = dict(duration=8.0, warmup=2.0, seed=42)
        plain = simulate_open_loop(_station(), {"read": 1.0}, 300.0, **kwargs)
        again = simulate_open_loop(_station(), {"read": 1.0}, 300.0, **kwargs)
        assert plain.throughput == again.throughput
        assert plain.p99 == again.p99
        assert plain.shed == {} and plain.shed_count == 0

    def test_deterministic_per_seed(self):
        policy = OverloadPolicy.parse("timeout=250ms,attempts=4")
        results = [
            run_overload_arm(policy, duration=40.0, seed=7)
            for _ in range(2)
        ]
        assert results[0] == results[1]
        changed = run_overload_arm(policy, duration=40.0, seed=8)
        assert changed != results[0]

    def test_overload_sim_rejects_observability_kwargs(self):
        policy = OverloadPolicy()
        with pytest.raises(SimulationError):
            simulate_open_loop(_station(), {"read": 1.0}, 300.0,
                               duration=8.0, warmup=2.0, overload=policy,
                               bounded=True)

    def test_queue_full_sheds_under_saturation(self):
        policy = OverloadPolicy.parse(
            "queue=4,policy=reject,deadline=off,budget=off,breaker=off")
        result = overload_open_loop(
            _station(), {"read": 1.0}, 2000.0, policy,
            duration=10.0, warmup=2.0, seed=3,
        )
        assert result.shed.get(SHED_QUEUE_FULL, 0) > 0
        assert result.histograms["read"].shed == result.shed_count
        assert result.throughput < 2000.0

    def test_deadline_bounds_worst_case_latency(self):
        policy = OverloadPolicy.parse(
            "queue=64,policy=deadline-drop,deadline=200ms,budget=off,"
            "breaker=off")
        result = overload_open_loop(
            _station(), {"read": 1.0}, 1000.0, policy,
            duration=10.0, warmup=2.0, seed=3,
        )
        assert result.shed.get(SHED_DEADLINE, 0) > 0
        # Completed ops waited less than the deadline plus one service time.
        for histogram in result.histograms.values():
            if histogram.total:
                assert histogram.max_latency <= 0.2 + 0.2


# -- the metastable demonstration ----------------------------------------------


@pytest.fixture(scope="module")
def demo():
    return overload_report(seed=1234)


class TestMetastableDemo:
    def test_unprotected_stays_collapsed(self, demo):
        arm = demo["unprotected"]
        assert arm["collapsed_for_s"] >= 30.0
        assert not arm["recovered"]
        assert arm["resubmits"] > 10 * demo["protected"]["resubmits"]

    def test_protected_recovers_fast(self, demo):
        arm = demo["protected"]
        assert arm["recovered"]
        assert arm["time_to_recovery_s"] <= 15.0
        assert arm["goodput"] >= 0.9 * arm["baseline_goodput"]

    def test_verdict_and_schema(self, demo):
        assert demo["contrast"]["metastable_demonstrated"]
        validate_overload_report(demo)
        text = dumps_overload_report(demo)
        assert text == dumps_overload_report(json.loads(text))

    def test_render_shows_both_arms(self, demo):
        text = render_overload_report(demo)
        assert "unprotected" in text and "protected" in text
        assert "metastable failure demonstrated and fixed" in text

    def test_demo_is_deterministic(self, demo):
        assert dumps_overload_report(overload_report(seed=1234)) == \
            dumps_overload_report(demo)

    def test_validation_rejects_mutations(self, demo):
        for mutate in (
            lambda d: d.pop("contrast"),
            lambda d: d["protected"].pop("series"),
            lambda d: d.update(schema="repro-overload/2"),
            lambda d: d["contrast"].update(metastable_demonstrated="yes"),
        ):
            broken = json.loads(dumps_overload_report(demo))
            mutate(broken)
            with pytest.raises(ConfigurationError):
                validate_overload_report(broken)

    def test_fault_must_start_after_warmup(self):
        with pytest.raises(ConfigurationError):
            run_overload_arm(OverloadPolicy(),
                             plan="arrival-spike:clients@2+5x2",
                             warmup=5.0, duration=30.0)


# -- functional breaker cell ---------------------------------------------------


class TestFunctionalCell:
    def test_breakers_cut_backoff_on_dead_shard(self):
        plan = FaultPlan.parse("kill-shard:0@0.3", seed=7)
        cell = functional_overload_cell(
            plan, OverloadPolicy(), shard_count=4, record_count=200,
            operations=600,
        )
        contrast = cell["contrast"]
        assert contrast["backoff_saved_seconds"] > 0
        assert contrast["breaker_trips"] >= 1
        assert cell["protected"]["shed"].get("breaker", 0) > 0
        boards = cell["protected"]["breakers"]
        assert any(shard["transitions"] for shard in boards.values())
        # Availability barely moves: the shard is dead either way.
        assert abs(contrast["availability_delta"]) < 0.05

    def test_unprotected_arm_matches_plain_runner(self):
        """zero-cost-off on the functional path, verified byte-for-byte."""
        from repro.faults.report import _build_cluster

        plan = FaultPlan.parse("kill-shard:0@0.3", seed=7)
        spec = WORKLOADS["A"]

        def run(overload):
            cluster = _build_cluster("mongo-as", 4, 200, seed=7)
            runner = FaultedYcsbRun(
                cluster, spec, record_count=200, operations=400,
                plan=plan, policy=RetryPolicy(), seed=7, overload=overload,
            )
            runner.load()
            return runner.run()

        plain = run(None)
        cell = run(OverloadPolicy().unprotected())
        assert plain.succeeded == cell.succeeded
        assert plain.errors == cell.errors
        assert plain.backoff_seconds == cell.backoff_seconds
        assert plain.duration == cell.duration
        assert cell.shed == {} and cell.breakers == {}

    def test_needs_a_shard_fault(self):
        from repro.common.errors import FaultPlanError

        with pytest.raises(FaultPlanError):
            functional_overload_cell(FaultPlan(), OverloadPolicy())


# -- retry deadline (satellite: op_timeout is a true end-to-end deadline) ------


class TestRetryDeadline:
    def test_gives_up_before_overshooting_timeout(self):
        policy = RetryPolicy(max_attempts=50, base_backoff=0.4,
                             backoff_cap=0.4, op_timeout=1.0)
        # elapsed 0.7 + next delay 0.4 would land past the 1.0s deadline:
        # the client gives up now instead of sleeping through it.
        assert policy.gives_up(1, 0.7)
        assert not policy.gives_up(1, 0.3)

    def test_worst_case_latency_bounded_by_timeout(self):
        """Regression: an op's latency never exceeds op_timeout plus one
        service time plus one failure detection."""
        from repro.faults.report import _build_cluster
        from repro.faults.runner import (
            FAILURE_DETECT_LATENCY,
            SERVICE_LATENCY,
        )

        policy = RetryPolicy(max_attempts=100, base_backoff=0.05,
                             backoff_cap=0.2, op_timeout=0.5)
        plan = FaultPlan.parse("kill-shard:0@0.2", seed=7)
        cluster = _build_cluster("mongo-as", 4, 200, seed=7)
        runner = FaultedYcsbRun(
            cluster, WORKLOADS["A"], record_count=200, operations=500,
            plan=plan, policy=policy, seed=7,
        )
        runner.load()
        stats = runner.run()
        assert stats.error_count > 0  # the dead shard did force give-ups
        bound = (policy.op_timeout + max(SERVICE_LATENCY.values())
                 + FAILURE_DETECT_LATENCY)
        for histogram in stats.histograms.values():
            assert histogram.max_latency <= bound + 1e-9


# -- hotspot generator (satellite) ---------------------------------------------


class TestHotspotGenerator:
    def test_deterministic(self):
        a = HotspotGenerator(1000, SeedStream(5).rng_for("h"))
        b = HotspotGenerator(1000, SeedStream(5).rng_for("h"))
        assert [a.next() for _ in range(500)] == [b.next() for _ in range(500)]

    def test_celebrity_draw_share(self):
        gen = HotspotGenerator(10_000, SeedStream(5).rng_for("h"),
                               hot_weight=0.5, shift_every=100_000)
        celebrity = gen.celebrity(0)
        draws = [gen.next() for _ in range(20_000)]
        share = draws.count(celebrity) / len(draws)
        assert 0.45 < share < 0.60  # ~50% plus the Zipf base's own hits

    def test_celebrity_shifts_between_epochs(self):
        gen = HotspotGenerator(10_000, SeedStream(5).rng_for("h"),
                               shift_every=10)
        first, second = gen.celebrity(0), gen.celebrity(1)
        assert first != second
        assert gen.epoch == 0
        for _ in range(10):
            gen.next()
        assert gen.epoch == 1

    def test_cdf_monotone(self):
        gen = HotspotGenerator(100, SeedStream(5).rng_for("h"))
        values = [gen.cdf(f) for f in (0.0, 0.1, 0.5, 1.0)]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)

    def test_workload_accepts_hotspot(self):
        from repro.ycsb.workloads import WorkloadSpec

        hot = WorkloadSpec(name="hot", description="hotspot smoke",
                           read=1.0, request_distribution="hotspot")
        assert hot.request_distribution == "hotspot"


# -- CLI ------------------------------------------------------------------------


class TestOverloadCli:
    def test_malformed_spec_exits_2(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["oltp", "--overload", "bogus=1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_overload_report_does_not_compose_with_reshard(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["oltp", "--overload", "--reshard"]) == 2
        assert "--reshard" in capsys.readouterr().err

"""Cross-cutting property-based tests on scheduler and queueing invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oltp import Station, closed_mva
from repro.mapreduce.dag import JobDag
from repro.mapreduce.jobs import JobResult, schedule_tasks

durations_strategy = st.lists(
    st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=60,
)


class TestScheduleTasksProperties:
    @given(durations_strategy, st.integers(min_value=1, max_value=16))
    @settings(max_examples=80)
    def test_makespan_bounds(self, durations, slots):
        """List scheduling is within the classic Graham bounds:
        max(avg load, longest task) <= makespan <= avg load + longest task."""
        makespan = schedule_tasks(durations, slots)
        total = sum(durations)
        longest = max(durations)
        lower = max(total / slots, longest)
        assert makespan >= lower - 1e-9
        assert makespan <= total / slots + longest + 1e-9

    @given(durations_strategy)
    @settings(max_examples=40)
    def test_single_slot_is_serial(self, durations):
        assert schedule_tasks(durations, 1) == pytest.approx(sum(durations))

    @given(durations_strategy, st.integers(min_value=1, max_value=8))
    @settings(max_examples=40)
    def test_more_slots_never_hurt(self, durations, slots):
        assert (
            schedule_tasks(durations, slots + 1)
            <= schedule_tasks(durations, slots) + 1e-9
        )


class TestMvaProperties:
    @given(
        st.floats(min_value=0.0005, max_value=0.05),
        st.integers(min_value=1, max_value=32),
        st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=60)
    def test_throughput_bounded_by_capacity_and_population(self, service, servers, n):
        station = Station("s", servers, service={"op": service})
        x, r, _ = closed_mva([station], {"op": 1.0}, n, 0.0)
        capacity = servers / service
        assert x <= capacity * 1.001
        assert x <= n / service + 1e-9  # cannot beat zero-queueing
        assert r >= service - 1e-12  # response at least one service time

    @given(st.integers(min_value=1, max_value=100))
    @settings(max_examples=30)
    def test_response_time_law_holds(self, n):
        station = Station("s", 4, service={"op": 0.01})
        x, r, _ = closed_mva([station], {"op": 1.0}, n, 0.05)
        assert x * (r + 0.05) == pytest.approx(n, rel=1e-6)

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30)
    def test_mix_weighting_interpolates(self, read_frac):
        cheap, pricey = 0.001, 0.02
        station = Station("s", 1, service={"read": cheap, "scan": pricey})
        mix = {"read": read_frac, "scan": 1.0 - read_frac}
        x, _, _ = closed_mva([station], mix, 50, 0.0)
        x_cheap, _, _ = closed_mva([station], {"read": 1.0, "scan": 0.0}, 50, 0.0)
        x_pricey, _, _ = closed_mva([station], {"read": 0.0, "scan": 1.0}, 50, 0.0)
        assert x_pricey - 1e-6 <= x <= x_cheap + 1e-6


class TestDagProperties:
    @given(
        st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=1, max_size=20),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50)
    def test_parallel_never_slower_than_serial(self, times, cap):
        dag = JobDag()
        previous = None
        chain_or_free = []
        for i, t in enumerate(times):
            job = JobResult(name=f"j{i}", map_time=t, shuffle_time=0.0,
                            reduce_time=0.0, overhead=0.0)
            # Alternate: every other job depends on its predecessor.
            deps = (previous,) if (previous and i % 2 == 0) else ()
            dag.add(f"j{i}", job, deps)
            previous = f"j{i}"
            chain_or_free.append(deps)
        serial = dag.schedule_serial().makespan
        parallel = dag.schedule_parallel(max_concurrent=cap).makespan
        assert parallel <= serial + 1e-9
        assert parallel >= dag.critical_path() - 1e-9

    @given(st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=1, max_size=15))
    @settings(max_examples=30)
    def test_full_chain_equals_serial(self, times):
        dag = JobDag()
        previous = None
        for i, t in enumerate(times):
            job = JobResult(name=f"j{i}", map_time=t, shuffle_time=0.0,
                            reduce_time=0.0, overhead=0.0)
            dag.add(f"j{i}", job, (previous,) if previous else ())
            previous = f"j{i}"
        assert dag.schedule_parallel().makespan == pytest.approx(
            dag.schedule_serial().makespan
        )

"""Validation: the discrete-event closed loop agrees with the MVA model."""

import pytest

from repro.common.errors import SimulationError
from repro.ycsb.eventsim import (
    EventSimResult,
    SimStation,
    mva_prediction,
    simulate_closed_loop,
)


def single_station(service=0.01, servers=1):
    return [SimStation("disk", servers, {"read": service})]


class TestBasics:
    def test_rejects_bad_inputs(self):
        with pytest.raises(SimulationError):
            simulate_closed_loop(single_station(), {"read": 1.0}, clients=0)
        with pytest.raises(SimulationError):
            simulate_closed_loop(single_station(), {"read": 0.5}, clients=1)
        with pytest.raises(SimulationError):
            simulate_closed_loop(single_station(), {"read": 1.0}, clients=1,
                                 duration=5.0, warmup=10.0)

    def test_deterministic_given_seed(self):
        a = simulate_closed_loop(single_station(), {"read": 1.0}, clients=4,
                                 duration=20.0, seed=9)
        b = simulate_closed_loop(single_station(), {"read": 1.0}, clients=4,
                                 duration=20.0, seed=9)
        assert a.throughput == b.throughput
        assert a.latency == b.latency

    def test_result_reports_windows_and_errors(self):
        result = simulate_closed_loop(single_station(), {"read": 1.0}, clients=4,
                                      duration=40.0, windows=4, seed=2)
        assert isinstance(result, EventSimResult)
        assert len(result.window_throughputs) == 4
        assert result.throughput_stderr >= 0.0
        assert result.latency_stderr["read"] >= 0.0
        assert result.completed_ops > 100


class TestAgreementWithMva:
    def test_saturated_single_server(self):
        """At saturation throughput -> 1/service regardless of model."""
        stations = single_station(service=0.01)
        sim = simulate_closed_loop(stations, {"read": 1.0}, clients=20,
                                   duration=120.0, seed=5)
        x_mva, _, _ = mva_prediction(stations, {"read": 1.0}, 20)
        assert sim.throughput == pytest.approx(100.0, rel=0.08)
        assert x_mva == pytest.approx(100.0, rel=0.02)

    def test_moderate_load_throughput_agrees(self):
        stations = [
            SimStation("cpu", 8, {"read": 0.004, "update": 0.006}),
            SimStation("disk", 4, {"read": 0.008, "update": 0.004}),
        ]
        mix = {"read": 0.8, "update": 0.2}
        sim = simulate_closed_loop(stations, mix, clients=12, think_time=0.02,
                                   duration=120.0, seed=3)
        x_mva, r_mva, _ = mva_prediction(stations, mix, 12, 0.02)
        assert sim.throughput == pytest.approx(x_mva, rel=0.12)

    def test_latency_grows_with_clients(self):
        stations = single_station(service=0.01, servers=2)
        few = simulate_closed_loop(stations, {"read": 1.0}, clients=2,
                                   duration=60.0, seed=7)
        many = simulate_closed_loop(stations, {"read": 1.0}, clients=40,
                                    duration=60.0, seed=7)
        assert many.latency["read"] > few.latency["read"] * 2

    def test_think_time_throttles_throughput(self):
        stations = single_station(service=0.001, servers=4)
        unthrottled = simulate_closed_loop(stations, {"read": 1.0}, clients=10,
                                           duration=60.0, seed=11)
        throttled = simulate_closed_loop(stations, {"read": 1.0}, clients=10,
                                         think_time=0.05, duration=60.0, seed=11)
        assert throttled.throughput < 0.5 * unthrottled.throughput
        # Response-time law sanity: X ~ N / (R + Z).
        expected = 10 / (throttled.latency["read"] + 0.05)
        assert throttled.throughput == pytest.approx(expected, rel=0.1)

    def test_multi_class_latency_ordering(self):
        stations = [
            SimStation("cpu", 4, {"read": 0.002, "scan": 0.02}),
        ]
        mix = {"read": 0.9, "scan": 0.1}
        sim = simulate_closed_loop(stations, mix, clients=8, duration=90.0, seed=13)
        assert sim.latency["scan"] > sim.latency["read"]


class TestHotspotBehaviour:
    def test_single_server_hotspot_queues_like_the_paper(self):
        """A 1-server station at overload absorbs clients (workload E appends)."""
        stations = [
            SimStation("work", 16, {"read": 0.004, "insert": 0.004}),
            SimStation("hotspot", 1, {"insert": 0.02}),
        ]
        mix = {"read": 0.5, "insert": 0.5}
        sim = simulate_closed_loop(stations, mix, clients=40, duration=90.0, seed=17)
        # Appends pile up at the hotspot; reads stay fast.
        assert sim.latency["insert"] > 5 * sim.latency["read"]


class TestPercentiles:
    def test_tail_latency_exceeds_mean(self):
        stations = single_station(service=0.01, servers=2)
        result = simulate_closed_loop(stations, {"read": 1.0}, clients=10,
                                      duration=90.0, seed=23)
        assert result.latency_p95["read"] > result.latency["read"]
        assert result.latency_p99["read"] >= result.latency_p95["read"]

    def test_percentiles_tighten_under_light_load(self):
        stations = single_station(service=0.001, servers=8)
        light = simulate_closed_loop(stations, {"read": 1.0}, clients=2,
                                     think_time=0.05, duration=60.0, seed=29)
        heavy = simulate_closed_loop(stations, {"read": 1.0}, clients=64,
                                     duration=60.0, seed=29)
        assert light.latency_p99["read"] < heavy.latency_p99["read"]


class TestHistogramIntegration:
    def test_histograms_match_summary_stats(self):
        stations = single_station(service=0.005, servers=2)
        result = simulate_closed_loop(stations, {"read": 1.0}, clients=8,
                                      duration=60.0, seed=37)
        hist = result.histograms["read"]
        assert hist.total == len(
            [1 for _ in range(hist.total)]
        )  # populated
        assert hist.mean == pytest.approx(result.latency["read"], rel=1e-9)
        # YCSB bucket semantics round up to the bucket edge.
        assert hist.percentile(95) >= result.latency_p95["read"] - hist.bucket_width
        assert "AverageLatency" in hist.render("READ")

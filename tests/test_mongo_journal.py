"""Tests for MongoDB's 100 ms journal — the paper's durability gap, live."""

import pytest

from repro.common.errors import StorageError
from repro.docstore.journal import (
    FLUSH_INTERVAL,
    Journal,
    JournaledMongod,
    JournalOp,
)
from repro.docstore.mongod import Mongod
from repro.sqlstore.recovery import crash
from repro.sqlstore.server import SqlServerNode
from repro.ycsb.workloads import make_key


class TestJournal:
    def test_append_and_flush_cycle(self):
        j = Journal()
        j.append(0.01, JournalOp.INSERT, "c", "k1", b"doc")
        assert j.durable_sequence == 0  # not yet flushed
        assert not j.maybe_flush(0.05)  # inside the 100 ms window
        assert j.maybe_flush(0.11)
        assert j.durable_sequence == 1
        assert j.flushes == 1

    def test_loss_window_is_100ms(self):
        assert Journal().max_loss_window == pytest.approx(0.1)
        assert FLUSH_INTERVAL == pytest.approx(0.1)

    def test_surviving_vs_lost(self):
        j = Journal()
        j.append(0.01, JournalOp.INSERT, "c", "k1", b"a")
        j.flush(0.02)
        j.append(0.03, JournalOp.INSERT, "c", "k2", b"b")
        assert [e.key for e in j.surviving_entries()] == ["k1"]
        assert [e.key for e in j.lost_entries()] == ["k2"]

    def test_replay_keeps_last_image_and_removes(self):
        j = Journal()
        j.append(0.0, JournalOp.INSERT, "c", "k", b"v1")
        j.append(0.01, JournalOp.UPDATE, "c", "k", b"v2")
        j.append(0.02, JournalOp.REMOVE, "c", "gone")
        j.flush(0.03)
        images = j.replay()
        assert images[("c", "k")] == b"v2"
        assert images[("c", "gone")] is None

    def test_clock_monotonicity(self):
        j = Journal()
        j.flush(1.0)
        with pytest.raises(StorageError):
            j.append(0.5, JournalOp.INSERT, "c", "k")


class TestWriteAhead:
    """Writes hit the journal before the mongod — order is the guarantee."""

    def test_update_survives_once_flushed(self):
        node = JournaledMongod(Mongod("m0"))
        node.insert("c", {"_id": "k", "field0": "v1"})
        node.advance(0.15)
        node.update("c", "k", "field0", "v2")
        node.advance(0.15)
        recovered = node.crash_and_recover()
        assert recovered.find_one("c", "k")["field0"] == "v2"

    def test_failed_journal_append_leaves_mongod_untouched(self):
        """If the journal write fails, the data page must not change."""
        node = JournaledMongod(Mongod("m0"))
        node.insert("c", {"_id": "k", "field0": "v1"})
        node.advance(0.15)
        node.journal.flush(10.0)  # journal clock runs ahead of node.clock
        with pytest.raises(StorageError):
            node.update("c", "k", "field0", "v2")
        assert node.find_one("c", "k")["field0"] == "v1"

    def test_update_of_missing_key_is_not_journaled(self):
        node = JournaledMongod(Mongod("m0"))
        assert node.update("c", "ghost", "field0", "v") is False
        assert node.journal.entries == []

    def test_remove_within_window_resurrects_on_recovery(self):
        node = JournaledMongod(Mongod("m0"))
        node.insert("c", {"_id": "k", "field0": "v"})
        node.advance(0.15)  # the insert is durable
        assert node.remove("c", "k") is True
        assert node.find_one("c", "k") is None  # gone on the live node...
        node.advance(0.05)  # ...but the tombstone never flushed
        recovered = node.crash_and_recover()
        assert recovered.find_one("c", "k") is not None

    def test_flushed_remove_stays_removed(self):
        node = JournaledMongod(Mongod("m0"))
        node.insert("c", {"_id": "k", "field0": "v"})
        node.advance(0.15)
        node.remove("c", "k")
        node.advance(0.15)
        recovered = node.crash_and_recover()
        assert recovered.find_one("c", "k") is None

    def test_remove_of_missing_key_is_not_journaled(self):
        node = JournaledMongod(Mongod("m0"))
        assert node.remove("c", "ghost") is False
        assert node.journal.entries == []

    def test_replay_interleaves_updates_and_removes(self):
        node = JournaledMongod(Mongod("m0"))
        node.insert("c", {"_id": "keep", "field0": "v1"})
        node.insert("c", {"_id": "drop", "field0": "v1"})
        node.advance(0.15)
        node.update("c", "keep", "field0", "v2")
        node.remove("c", "drop")
        node.insert("c", {"_id": "drop", "field0": "v3"})  # re-insert
        node.advance(0.15)
        recovered = node.crash_and_recover()
        assert recovered.find_one("c", "keep")["field0"] == "v2"
        assert recovered.find_one("c", "drop")["field0"] == "v3"


class TestDurabilityGap:
    """The paper's §3.4.1 argument, executed."""

    def test_acknowledged_mongo_write_can_be_lost(self):
        node = JournaledMongod(Mongod("m0"))
        node.insert("c", {"_id": make_key(1), "field0": "v"})
        # The client got its safe-mode ack; the read sees the write...
        assert node.find_one("c", make_key(1)) is not None
        # ...but the process dies 50 ms later, inside the flush window.
        node.advance(0.05)
        recovered = node.crash_and_recover()
        assert recovered.find_one("c", make_key(1)) is None  # LOST

    def test_flushed_mongo_write_survives(self):
        node = JournaledMongod(Mongod("m0"))
        node.insert("c", {"_id": make_key(1), "field0": "v"})
        node.advance(0.15)  # a flush cycle passes
        recovered = node.crash_and_recover()
        assert recovered.find_one("c", make_key(1))["field0"] == "v"

    def test_updates_recover_to_last_flushed_image(self):
        node = JournaledMongod(Mongod("m0"))
        node.insert("c", {"_id": "k", "field0": "v1"})
        node.advance(0.15)
        node.update("c", "k", "field0", "v2")
        node.advance(0.15)
        node.update("c", "k", "field0", "v3-unflushed")
        node.advance(0.05)  # crash before the next flush
        recovered = node.crash_and_recover()
        assert recovered.find_one("c", "k")["field0"] == "v2"

    def test_sql_server_has_no_such_window(self):
        """The contrast: SQL forces the log at commit — zero loss window."""
        sql = SqlServerNode(checkpoint_interval_ops=10**9)
        sql.insert(make_key(1), {"field0": "v"})
        # Crash immediately; the commit already forced the log.
        recovered, _ = crash(sql).recover()
        assert recovered.read(make_key(1))["field0"] == "v"

    def test_loss_bounded_by_flush_interval(self):
        node = JournaledMongod(Mongod("m0"))
        lost_batches = []
        for batch in range(5):
            for i in range(10):
                node.insert("c", {"_id": make_key(batch * 10 + i), "v": "x"})
            node.advance(0.11)  # flush between batches
        # Everything flushed so far survives; now one unflushed batch.
        for i in range(50, 60):
            node.insert("c", {"_id": make_key(i), "v": "x"})
        recovered = node.crash_and_recover()
        survivors = sum(
            1 for i in range(60) if recovered.find_one("c", make_key(i)) is not None
        )
        assert survivors == 50  # exactly the unflushed 100 ms batch is gone

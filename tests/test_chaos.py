"""Chaos schedules + the acknowledged-write safety invariant, per system."""

import pytest

from repro.common.errors import ConfigurationError
from repro.faults.availability import CHAOS_RETRY_POLICY, _build_chaos_cluster
from repro.faults.chaos import (
    ChaosConfig,
    ChaosYcsbRun,
    WriteLedger,
    chaos_plan,
)
from repro.replication import JOURNALED, MAJORITY, SAFE, UNACKED
from repro.replication.config import ReplicationConfig
from repro.replication.replicaset import LastWrite
from repro.ycsb.workloads import WORKLOADS


class TestChaosConfig:
    def test_parse(self):
        config = ChaosConfig.parse("kills=3,partitions=0,lag-spikes=2")
        assert (config.kills, config.partitions, config.lag_spikes) == (3, 0, 2)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            ChaosConfig.parse("kills=lots")
        with pytest.raises(ConfigurationError):
            ChaosConfig.parse("mayhem=1")
        with pytest.raises(ConfigurationError):
            ChaosConfig(kills=0, partitions=0, lag_spikes=0)


class TestChaosPlan:
    def test_deterministic(self):
        a = chaos_plan(ChaosConfig(), 500, 4, 3, 11)
        b = chaos_plan(ChaosConfig(), 500, 4, 3, 11)
        assert a.spec_string() == b.spec_string()
        assert a.spec_string() != chaos_plan(
            ChaosConfig(), 500, 4, 3, 12
        ).spec_string()

    def test_first_kill_targets_the_initial_primary(self):
        plan = chaos_plan(ChaosConfig(kills=2), 500, 4, 3, 11)
        kills = sorted(plan.of_kind("kill-member"), key=lambda s: s.at)
        assert kills[0].member_target()[1] == 0  # member 0 = first primary

    def test_every_kill_is_paired_with_a_restart(self):
        plan = chaos_plan(ChaosConfig(kills=3), 500, 4, 3, 11)
        killed = {s.target for s in plan.of_kind("kill-member")}
        restarted = {s.target for s in plan.of_kind("restart-member")}
        assert killed == restarted

    def test_bare_cluster_degrades_to_shard_faults(self):
        plan = chaos_plan(ChaosConfig(), 500, 4, 0, 11)
        kinds = {s.kind for s in plan.faults}
        assert kinds <= {"kill-shard", "restart-shard"}

    def test_needs_enough_operations(self):
        with pytest.raises(ConfigurationError):
            chaos_plan(ChaosConfig(), 20, 4, 3, 11)


class TestWriteLedger:
    @staticmethod
    def _write(key, concern, ack_time, op="insert", fieldname=None,
               value=None):
        return LastWrite(seq=1, op=op, collection="usertable", key=key,
                         fieldname=fieldname, value=value, write_time=ack_time,
                         ack_time=ack_time, concern=concern)

    def test_lost_journaled_write_is_a_violation(self):
        ledger = WriteLedger()
        ledger.record(self._write("k1", "journaled", 0.5))
        report = ledger.audit(lambda key: None, loss_events=[0.55])
        assert not report.invariant_ok
        assert len(report.violations) == 1

    def test_safe_loss_inside_the_window_is_allowed(self):
        ledger = WriteLedger()
        ledger.record(self._write("k1", "safe", 0.5))
        report = ledger.audit(lambda key: None, loss_events=[0.55])
        assert report.invariant_ok
        assert report.lost_allowed == 1

    def test_safe_loss_outside_the_window_is_a_violation(self):
        ledger = WriteLedger()
        ledger.record(self._write("k1", "safe", 0.5))
        report = ledger.audit(lambda key: None, loss_events=[2.0])
        assert not report.invariant_ok

    def test_unacked_losses_are_informational(self):
        ledger = WriteLedger()
        ledger.record(self._write("k1", "unacked", 0.5))
        report = ledger.audit(lambda key: None, loss_events=[])
        assert report.invariant_ok and report.lost_allowed == 1

    def test_update_audit_checks_the_value(self):
        ledger = WriteLedger()
        ledger.record(self._write("k1", "journaled", 0.5, op="update",
                                  fieldname="field0", value="v2"))
        ok = ledger.audit(lambda key: {"field0": "v2"}, [])
        stale = ledger.audit(lambda key: {"field0": "v1"}, [])
        assert ok.invariant_ok and not stale.invariant_ok

    def test_later_ack_supersedes_earlier(self):
        ledger = WriteLedger()
        ledger.record(self._write("k1", "journaled", 0.1, op="update",
                                  fieldname="field0", value="old"))
        ledger.record(self._write("k1", "journaled", 0.2, op="update",
                                  fieldname="field0", value="new"))
        report = ledger.audit(lambda key: {"field0": "new"}, [])
        assert report.checked == 1 and report.invariant_ok


def run_chaos(system, concern, operations=500, seed=11):
    if system == "sql-cs":
        replication = ReplicationConfig(replicas=3)
        replicas = 0
    else:
        replication = ReplicationConfig(replicas=3, concern=concern)
        replicas = 3
    plan = chaos_plan(ChaosConfig(), operations, 4, replicas, seed)
    cluster = _build_chaos_cluster(system, 4, 300, replication, seed)
    runner = ChaosYcsbRun(
        cluster, WORKLOADS["A"], record_count=300, operations=operations,
        plan=plan, policy=CHAOS_RETRY_POLICY, seed=seed,
    )
    runner.load()
    stats = runner.run()
    return stats, runner.audit()


class TestSafetyInvariant:
    """The tentpole's contract, exercised with 500-op chaos runs."""

    @pytest.mark.parametrize("system", ["mongo-as", "mongo-cs"])
    def test_journaled_and_majority_lose_nothing(self, system):
        for concern in (JOURNALED, MAJORITY):
            _stats, audit = run_chaos(system, concern)
            assert audit.lost == [], f"{system}/{concern.name} lost writes"
            assert audit.invariant_ok

    @pytest.mark.parametrize("system", ["mongo-as", "mongo-cs"])
    def test_safe_losses_are_bounded_by_the_journal_window(self, system):
        _stats, audit = run_chaos(system, SAFE)
        assert audit.invariant_ok  # every loss inside the 100 ms window
        assert audit.violations == []

    def test_unacked_carries_no_promise(self):
        _stats, audit = run_chaos("mongo-as", UNACKED)
        assert audit.invariant_ok
        assert all(w.allowed for w in audit.lost)

    def test_mirrored_sql_loses_nothing(self):
        _stats, audit = run_chaos("sql-cs", None)
        assert audit.lost == []
        assert audit.invariant_ok

    def test_chaos_runs_stay_available(self):
        """Replica sets + retries keep the client loop fully served."""
        stats, _audit = run_chaos("mongo-as", MAJORITY)
        assert stats.availability == 1.0
        assert stats.attempted == 500

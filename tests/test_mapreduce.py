"""Tests for the MapReduce scheduling and cost model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import GB, MB
from repro.mapreduce import HadoopParams, JobTracker, MapPhase, schedule_tasks, task_waves
from repro.simcluster import paper_testbed


class TestScheduleTasks:
    def test_single_wave(self):
        assert schedule_tasks([5.0] * 10, slots=10) == 5.0

    def test_two_waves(self):
        assert schedule_tasks([5.0] * 20, slots=10) == 10.0

    def test_empty(self):
        assert schedule_tasks([], slots=4) == 0.0

    def test_invalid_slots(self):
        with pytest.raises(ConfigurationError):
            schedule_tasks([1.0], slots=0)

    def test_greedy_order_pathology(self):
        """The paper's Q1 effect: interleaved short/long tasks stretch a wave.

        With 2 slots and tasks [long, short, long], the short-task slot picks
        up the second long task: makespan = short + long, not 2 * long when
        the ideal pairing (long | short+long) would give long + short too...
        the pathological case is [short, short, long, long] on 2 slots vs
        sorted-descending order.
        """
        # In arrival order both slots take a short task first, then each
        # takes a long one: makespan = 1 + 10 = 11.
        arrival = schedule_tasks([1.0, 1.0, 10.0, 10.0], slots=2)
        assert arrival == 11.0
        # Longest-first would overlap shorts behind longs: makespan = 10 + 1.
        ideal = schedule_tasks([10.0, 10.0, 1.0, 1.0], slots=2)
        assert ideal == 11.0
        # The genuinely bad case: one slot ends up with two long tasks.
        bad = schedule_tasks([10.0, 1.0, 10.0], slots=2)
        assert bad == 11.0  # slot 2: 1 + 10

    def test_task_waves(self):
        assert task_waves(512, 128) == 4
        assert task_waves(0, 128) == 0
        assert task_waves(1, 128) == 1


class TestMapPhase:
    def test_durations_include_startup(self):
        params = HadoopParams(map_task_startup=6.0, map_scan_rate=10 * MB)
        phase = MapPhase([0.0, 20 * MB], params)
        durations = phase.task_durations()
        assert durations[0] == pytest.approx(6.0)  # empty file: startup only
        assert durations[1] == pytest.approx(8.0)

    def test_split_for_blocks(self):
        params = HadoopParams()
        phase = MapPhase([100 * MB, 600 * MB], params)
        split = phase.split_for_blocks(256 * MB)
        assert split.task_count == 4  # 1 + 3
        assert split.total_bytes == pytest.approx(700 * MB)


class TestJobTracker:
    def setup_method(self):
        self.profile = paper_testbed()
        self.params = HadoopParams()
        self.tracker = JobTracker(self.profile, self.params)

    def test_map_only_job(self):
        phase = MapPhase([10 * MB] * 128, self.params)
        result = self.tracker.run_map_only("scan", phase)
        assert result.map_tasks == 128
        assert result.map_waves == 1
        assert result.total_time > result.map_time  # job overhead added

    def test_empty_files_still_cost_startup(self):
        sparse = MapPhase([10 * MB] * 128 + [0.0] * 384, self.params)
        dense = MapPhase([10 * MB] * 128, self.params)
        t_sparse = self.tracker.run_map_only("sparse", sparse).map_time
        t_dense = self.tracker.run_map_only("dense", dense).map_time
        assert t_sparse > t_dense  # 384 empty tasks still take waves

    def test_map_reduce_reducer_default_is_all_slots(self):
        phase = MapPhase([10 * MB] * 10, self.params)
        result = self.tracker.run_map_reduce("join", phase, 1 * GB, 1 * GB)
        assert result.reduce_tasks == self.params.reduce_slots(self.profile) == 128

    def test_one_reduce_round_beats_many(self):
        """Section 3.2.1: reducers = total slots lets one round finish."""
        phase = MapPhase([10 * MB] * 10, self.params)
        one_round = self.tracker.run_map_reduce("j", phase, 10 * GB, 10 * GB, reducers=128)
        # 512 reducers -> 4 rounds of startup cost over the same data.
        many = self.tracker.run_map_reduce("j", phase, 10 * GB, 10 * GB, reducers=512)
        assert one_round.reduce_time < many.reduce_time

    def test_shuffle_scales_with_bytes(self):
        phase = MapPhase([10 * MB], self.params)
        small = self.tracker.run_map_reduce("a", phase, 1 * GB, 1 * GB)
        large = self.tracker.run_map_reduce("b", phase, 100 * GB, 1 * GB)
        assert large.shuffle_time == pytest.approx(small.shuffle_time * 100)

    def test_map_join_success(self):
        phase = MapPhase([10 * MB] * 4, self.params)
        result = self.tracker.run_map_join("mj", phase, hashtable_bytes=100 * MB)
        assert not result.failed_mapjoin
        assert result.reduce_time == 0.0
        assert "map-side join succeeded" in result.notes

    def test_map_join_failure_runs_backup(self):
        """The Q22 sub-query 4 behaviour: heap error then backup common join."""
        phase = MapPhase([10 * MB] * 4, self.params)
        result = self.tracker.run_map_join("mj", phase, hashtable_bytes=10 * GB)
        assert result.failed_mapjoin
        assert result.map_time >= self.params.mapjoin_failure_delay
        assert result.reduce_tasks > 0

    def test_map_join_failure_threshold(self):
        budget = self.params.task_heap_bytes * self.params.hashtable_memory_fraction
        phase = MapPhase([MB], self.params)
        ok = self.tracker.run_map_join("a", phase, hashtable_bytes=budget * 0.99)
        bad = self.tracker.run_map_join("b", phase, hashtable_bytes=budget * 1.01)
        assert not ok.failed_mapjoin
        assert bad.failed_mapjoin

"""Tests for the YCSB generators, workloads, and the functional client."""

import pytest

from repro.common.errors import WorkloadError
from repro.common.rng import TpchRandom64
from repro.docstore import MongoAsCluster, MongoCsCluster
from repro.sqlstore import SqlCsCluster
from repro.ycsb import (
    CounterGenerator,
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    WORKLOADS,
    YcsbClient,
    ZipfianGenerator,
    make_key,
    make_record,
)
from repro.ycsb.workloads import WorkloadSpec


class TestGenerators:
    def test_uniform_bounds_and_spread(self):
        gen = UniformGenerator(100, TpchRandom64(1))
        values = [gen.next() for _ in range(5000)]
        assert min(values) >= 0 and max(values) <= 99
        assert len(set(values)) > 90

    def test_zipfian_skew(self):
        gen = ZipfianGenerator(10_000, TpchRandom64(2))
        values = [gen.next() for _ in range(20_000)]
        assert all(0 <= v < 10_000 for v in values)
        # Rank 0 should be by far the most common.
        share_0 = values.count(0) / len(values)
        assert share_0 > 0.05
        # The top 1% of ranks should carry a large share of requests.
        top = sum(1 for v in values if v < 100) / len(values)
        assert top > 0.3

    def test_zipfian_cdf_properties(self):
        gen = ZipfianGenerator(640_000_000, TpchRandom64(3))
        # The YCSB-paper property: a tiny hot fraction carries most mass
        # (theta = 0.99 over 640M keys puts ~76% of requests on the top 1%).
        assert gen.cdf(0.01) > 0.7
        assert gen.cdf(1.0) == pytest.approx(1.0, rel=1e-6)
        assert gen.cdf(0.5) < gen.cdf(0.9)

    def test_scrambled_zipfian_scatters(self):
        gen = ScrambledZipfianGenerator(10_000, TpchRandom64(4))
        values = [gen.next() for _ in range(5000)]
        # Still skewed onto few keys, but the hot keys are not rank 0..k.
        assert all(0 <= v < 10_000 for v in values)
        hottest = max(set(values), key=values.count)
        assert hottest > 100  # scattered away from the low ranks

    def test_latest_prefers_new_keys(self):
        gen = LatestGenerator(1000, TpchRandom64(5))
        values = [gen.next() for _ in range(5000)]
        assert sum(1 for v in values if v > 900) / len(values) > 0.5
        for _ in range(200):
            gen.observe_insert()
        assert gen.item_count == 1200
        later = [gen.next() for _ in range(2000)]
        assert max(later) > 1000  # new keys are now chosen

    def test_counter(self):
        c = CounterGenerator(10)
        assert [c.next() for _ in range(3)] == [10, 11, 12]
        assert c.last == 12

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            UniformGenerator(0, TpchRandom64(1))
        with pytest.raises(WorkloadError):
            ZipfianGenerator(10, TpchRandom64(1), theta=1.5)


class TestWorkloads:
    def test_table6_mixes(self):
        assert WORKLOADS["A"].read == 0.5 and WORKLOADS["A"].update == 0.5
        assert WORKLOADS["B"].read == 0.95
        assert WORKLOADS["C"].read == 1.0
        assert WORKLOADS["D"].insert == 0.05
        assert WORKLOADS["D"].request_distribution == "latest"
        assert WORKLOADS["E"].scan == 0.95

    def test_pick_operation_respects_mix(self):
        rng = TpchRandom64(6)
        picks = [WORKLOADS["B"].pick_operation(rng) for _ in range(10_000)]
        read_share = picks.count("read") / len(picks)
        assert 0.93 < read_share < 0.97

    def test_invalid_mix_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec("X", "bad", read=0.5, update=0.4)

    def test_key_and_record_shape(self):
        assert make_key(42) == "0" * 22 + "42"
        assert len(make_key(0)) == 24
        record = make_record(TpchRandom64(7))
        assert len(record) == 10
        assert all(len(v) == 100 for v in record.values())


@pytest.mark.parametrize(
    "make_cluster",
    [
        lambda: MongoAsCluster(shard_count=4, max_chunk_docs=100),
        lambda: MongoCsCluster(shard_count=4),
        lambda: SqlCsCluster(shard_count=4),
    ],
    ids=["mongo-as", "mongo-cs", "sql-cs"],
)
class TestFunctionalRuns:
    """Every cluster implementation passes the same functional YCSB battery."""

    def test_workload_a_consistency(self, make_cluster):
        client = YcsbClient(make_cluster(), WORKLOADS["A"], record_count=400, seed=11)
        client.load()
        stats = client.run(600)
        assert stats.verification_failures == []
        assert stats.reads + stats.updates == 600
        assert stats.read_misses == 0

    def test_workload_d_appends_visible(self, make_cluster):
        client = YcsbClient(make_cluster(), WORKLOADS["D"], record_count=300, seed=12)
        client.load()
        stats = client.run(400)
        assert stats.verification_failures == []
        assert stats.inserts > 0

    def test_workload_e_scans_ordered(self, make_cluster):
        client = YcsbClient(make_cluster(), WORKLOADS["E"], record_count=300, seed=13)
        client.load()
        stats = client.run(120)
        assert stats.verification_failures == []
        assert stats.scans > 0
        assert stats.scanned_records > 0


class TestCrossSystemAgreement:
    def test_all_systems_return_identical_scan_results(self):
        """The three deployments must agree on query answers."""
        clusters = [
            MongoAsCluster(shard_count=3, max_chunk_docs=50),
            MongoCsCluster(shard_count=3),
            SqlCsCluster(shard_count=3),
        ]
        for cluster in clusters:
            for i in range(150):
                cluster.insert(make_key(i), {"field0": f"value-{i}"})
        scans = []
        for cluster in clusters:
            rows = cluster.scan(make_key(40), 12)
            scans.append([(r.get("_id") or r.get("_key"), r["field0"]) for r in rows])
        assert scans[0] == scans[1] == scans[2]
        expected = [(make_key(i), f"value-{i}") for i in range(40, 52)]
        assert scans[0] == expected

"""Tests for the forward-looking extensions (the paper's future work).

* indexed Hive (Section 3.3.2: "we plan on comparing PDW with Hive once
  Hive's optimizer starts considering indices");
* MongoDB with journaling on (the durability the paper disabled);
* MongoDB replica sets (the failover mechanism the paper did not deploy).
"""

from dataclasses import replace

import pytest

from repro.core.oltp import SYSTEMS, OltpStudy
from repro.hive.engine import HiveEngine
from repro.tpch.volumes import calibrate


@pytest.fixture(scope="module")
def calibration():
    return calibrate(0.01, 42)


class TestIndexedHive:
    def test_selective_queries_speed_up(self, calibration):
        stock = HiveEngine(calibration)
        indexed = HiveEngine(calibration, index_support=True)
        # Q6 is a tight single-table selection: indexes should help a lot.
        assert indexed.query_time(6, 4000) < 0.8 * stock.query_time(6, 4000)
        # Q19's filtered lineitem scan also shrinks.
        assert indexed.query_time(19, 4000) < stock.query_time(19, 4000)

    def test_unselective_queries_barely_change(self, calibration):
        stock = HiveEngine(calibration)
        indexed = HiveEngine(calibration, index_support=True)
        # Q1 touches ~98% of lineitem: indexes cannot help.
        ratio = indexed.query_time(1, 4000) / stock.query_time(1, 4000)
        assert ratio > 0.9

    def test_indexed_hive_still_loses_join_heavy_queries(self, calibration):
        """The paper's implied question: do indexes close the gap?  For
        join-heavy queries, no — the data movement and task overheads the
        paper blames remain.  Pure selections (Q6) are another story: an
        index that skips 98% of lineitem can beat a full parallel scan."""
        from repro.pdw.engine import PdwEngine

        indexed = HiveEngine(calibration, index_support=True)
        pdw = PdwEngine(calibration)
        # Join-heavy: indexes do not rescue Hive.
        assert indexed.query_time(5, 4000) > 3 * pdw.query_time(5, 4000)
        # Selection-only: the index flips the result.
        assert indexed.query_time(6, 4000) < pdw.query_time(6, 4000)


class TestJournaledMongo:
    def _study(self, **flags):
        systems = dict(SYSTEMS)
        systems["mongo-as"] = replace(SYSTEMS["mongo-as"], **flags)
        return OltpStudy(systems=systems)

    def test_journaling_adds_write_latency(self):
        stock = OltpStudy().evaluate("mongo-as", "A", 10_000)
        journaled = self._study(journaled=True).evaluate("mongo-as", "A", 10_000)
        # Half the 100 ms flush interval, on average.
        assert journaled.latency_ms("update") > stock.latency_ms("update") + 30
        # Reads are not directly delayed by the journal.
        assert journaled.latency_ms("read") < stock.latency_ms("read") * 2

    def test_journaling_preserves_read_only_workloads(self):
        stock = OltpStudy().peak_throughput("mongo-as", "C")
        journaled = self._study(journaled=True).peak_throughput("mongo-as", "C")
        assert journaled == pytest.approx(stock, rel=0.01)

    def test_replication_costs_capacity(self):
        stock = OltpStudy().peak_throughput("mongo-as", "A")
        replicated = self._study(replicated=True).peak_throughput("mongo-as", "A")
        assert replicated < 0.8 * stock

    def test_replication_raises_miss_rate(self):
        from repro.ycsb.workloads import WORKLOADS

        study = OltpStudy()
        stock = study.miss_rate(SYSTEMS["mongo-as"], WORKLOADS["C"])
        replica = study.miss_rate(
            replace(SYSTEMS["mongo-as"], replicated=True), WORKLOADS["C"]
        )
        assert replica > stock

"""Tests for the HiveQL parser/compiler against hand-built kernel plans."""

import pytest

from repro.common.errors import PlanError
from repro.hive.hiveql import compile_plan, execute, parse, tokenize
from repro.tpch.queries import run_query


class TestTokenizer:
    def test_basic(self):
        tokens = tokenize("SELECT a FROM t WHERE x = 1.5")
        kinds = [(t.kind, t.text) for t in tokens]
        assert ("keyword", "select") in kinds
        assert ("ident", "a") in kinds
        assert ("number", "1.5") in kinds

    def test_strings_with_escapes(self):
        tokens = tokenize("SELECT 'it''s'")
        assert tokens[1].kind == "string"

    def test_rejects_garbage(self):
        with pytest.raises(PlanError):
            tokenize("SELECT @")


class TestParser:
    def test_simple_select(self):
        q = parse("SELECT l_orderkey, l_quantity FROM lineitem LIMIT 5")
        assert q.tables == ["lineitem"]
        assert [name for name, _ in q.select] == ["l_orderkey", "l_quantity"]
        assert q.limit == 5

    def test_joins_in_written_order(self):
        q = parse(
            "SELECT o_orderkey FROM orders o "
            "JOIN customer c ON o.o_custkey = c.c_custkey "
            "JOIN nation n ON c.c_nationkey = n.n_nationkey"
        )
        assert q.tables == ["orders", "customer", "nation"]
        assert q.join_conditions == [
            ("o_custkey", "c_custkey"),
            ("c_nationkey", "n_nationkey"),
        ]

    def test_aggregates_and_grouping(self):
        q = parse(
            "SELECT l_returnflag, SUM(l_quantity) AS qty, COUNT(*) AS n "
            "FROM lineitem GROUP BY l_returnflag"
        )
        assert q.has_aggregates
        assert q.group_by == ["l_returnflag"]
        names = [name for name, _ in q.select]
        assert names == ["l_returnflag", "qty", "n"]

    def test_where_with_like_in_between(self):
        q = parse(
            "SELECT p_partkey FROM part WHERE p_name LIKE '%green%' "
            "AND p_size BETWEEN 1 AND 5 AND p_brand IN ('Brand#12', 'Brand#23')"
        )
        assert q.where is not None

    def test_order_and_having(self):
        q = parse(
            "SELECT o_custkey, COUNT(*) AS n FROM orders GROUP BY o_custkey "
            "HAVING n > 3 ORDER BY n DESC, o_custkey LIMIT 10"
        )
        assert q.having is not None
        assert len(q.order_by) == 2
        assert q.order_by[0][1] is True  # DESC

    def test_trailing_tokens_rejected(self):
        with pytest.raises(PlanError):
            parse("SELECT a FROM t nonsense extra ,")

    def test_aggregate_outside_select_rejected(self):
        with pytest.raises(PlanError):
            parse("SELECT a FROM t WHERE SUM(b) > 1")

    def test_ungrouped_column_rejected(self):
        q = parse("SELECT o_custkey, COUNT(*) AS n FROM orders")
        with pytest.raises(PlanError):
            compile_plan(q)


class TestExecution:
    def test_filter_and_project(self, small_db):
        rows = execute(
            "SELECT o_orderkey, o_totalprice FROM orders "
            "WHERE o_totalprice > 400000 ORDER BY o_totalprice DESC LIMIT 5",
            small_db,
        )
        assert len(rows) <= 5
        prices = [r["o_totalprice"] for r in rows]
        assert prices == sorted(prices, reverse=True)
        assert all(p > 400000 for p in prices)

    def test_q1_as_hiveql_matches_kernel_plan(self, small_db):
        sql = """
            SELECT l_returnflag, l_linestatus,
                   SUM(l_quantity) AS sum_qty,
                   SUM(l_extendedprice) AS sum_base_price,
                   AVG(l_discount) AS avg_disc,
                   COUNT(*) AS count_order
            FROM lineitem
            WHERE l_shipdate <= '1998-09-02'
            GROUP BY l_returnflag, l_linestatus
            ORDER BY l_returnflag, l_linestatus
        """
        hiveql_rows = execute(sql, small_db)
        kernel_rows = run_query(1, small_db)
        assert len(hiveql_rows) == len(kernel_rows)
        for h, k in zip(hiveql_rows, kernel_rows):
            assert h["l_returnflag"] == k["l_returnflag"]
            assert h["sum_qty"] == pytest.approx(k["sum_qty"])
            assert h["count_order"] == k["count_order"]
            assert h["avg_disc"] == pytest.approx(k["avg_disc"])

    def test_q6_as_hiveql_matches_kernel_plan(self, small_db):
        sql = """
            SELECT SUM(l_extendedprice * l_discount) AS revenue
            FROM lineitem
            WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01'
              AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24
        """
        rows = execute(sql, small_db)
        kernel = run_query(6, small_db)
        assert rows[0]["revenue"] == pytest.approx(kernel[0]["revenue"])

    def test_three_way_join_in_written_order(self, small_db):
        sql = """
            SELECT n_name, COUNT(*) AS orders_cnt
            FROM orders o
            JOIN customer c ON o.o_custkey = c.c_custkey
            JOIN nation n ON c.c_nationkey = n.n_nationkey
            GROUP BY n_name
            ORDER BY orders_cnt DESC
            LIMIT 3
        """
        rows = execute(sql, small_db)
        assert len(rows) == 3
        assert rows[0]["orders_cnt"] >= rows[-1]["orders_cnt"]
        total = execute(
            "SELECT COUNT(*) AS n FROM orders", small_db
        )[0]["n"]
        full = execute(sql.replace("LIMIT 3", "LIMIT 100"), small_db)
        assert sum(r["orders_cnt"] for r in full) == total

    def test_case_expression(self, small_db):
        sql = """
            SELECT SUM(CASE WHEN l_shipmode = 'MAIL' THEN 1 ELSE 0 END) AS mail,
                   COUNT(*) AS total
            FROM lineitem
        """
        rows = execute(sql, small_db)
        assert 0 < rows[0]["mail"] < rows[0]["total"]

    def test_count_distinct(self, small_db):
        rows = execute(
            "SELECT COUNT(DISTINCT o_custkey) AS custs FROM orders", small_db
        )
        brute = len({r["o_custkey"] for r in small_db.table("orders").rows})
        assert rows[0]["custs"] == brute

    def test_having_filters_groups(self, small_db):
        rows = execute(
            "SELECT o_custkey, COUNT(*) AS n FROM orders "
            "GROUP BY o_custkey HAVING n >= 4",
            small_db,
        )
        assert all(r["n"] >= 4 for r in rows)

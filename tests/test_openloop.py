"""Coordinated-omission-correct accounting in the open-loop simulator.

The regression at the heart of this file: stall the server mid-run and the
open loop must charge every missed departure's queueing delay to the
operations (latency from *intended* start), while a paired closed-loop run
over the same stalled stations — the paper's own protocol — reports nearly
unchanged latencies because its clients simply stop issuing.
"""

import dataclasses

import pytest

from repro.faults.plan import FaultPlan
from repro.obs import Tracer
from repro.ycsb.eventsim import (
    SimStation,
    simulate_closed_loop,
    simulate_open_loop,
)

MIX = {"read": 1.0}


def small_stations():
    """One two-server disk: capacity 2000 ops/s at 1 ms service."""
    return [SimStation("disk", 2, {"read": 0.001})]


def stalled_run(**kwargs):
    """Open loop at half capacity with the disk 50x slower over [2s, 5s)."""
    return simulate_open_loop(
        small_stations(), MIX, rate=1000.0, workers=8,
        duration=8.0, warmup=1.0, seed=21,
        faults=FaultPlan.parse("disk-stall:disk@2+3x50").station_faults,
        **kwargs,
    )


class TestCoordinatedOmission:
    def test_stall_is_charged_to_intended_start_times(self):
        result = stalled_run()
        # The stall parks ~3s of arrivals behind 8 workers: the corrected
        # p99 must see whole seconds of queueing...
        assert result.p99 > 0.5
        # ...while the uncorrected (dispatch-measured) view, which is what
        # a coordinating load generator reports, hides an order of
        # magnitude of it.
        assert result.p99 > 10.0 * result.uncorrected_overall_p99
        assert result.max_dispatch_lag > 1.0

    def test_paired_closed_loop_understates_the_stall(self):
        """The paper's protocol over the same stalled stations: clients slow
        down with the server, so the recorded p99 misses the queueing that
        the open loop charges."""
        open_result = stalled_run()
        closed = simulate_closed_loop(
            small_stations(), MIX, clients=8, think_time=0.0,
            duration=8.0, warmup=1.0, seed=21,
            faults=FaultPlan.parse("disk-stall:disk@2+3x50").station_faults,
        )
        closed_p99 = closed.latency_p99["read"]
        assert open_result.p99 > 5.0 * closed_p99

    def test_healthy_run_has_no_correction_gap(self):
        """At low utilization intended and dispatch starts coincide, so the
        corrected and uncorrected percentiles agree."""
        result = simulate_open_loop(
            small_stations(), MIX, rate=400.0, workers=64,
            duration=6.0, warmup=1.0, seed=4,
        )
        assert result.p99 == pytest.approx(
            result.uncorrected_overall_p99, rel=0.2)
        assert result.max_dispatch_lag < 0.01
        assert result.unfinished_ops <= 2


class TestCensoredTail:
    def test_unfinished_ops_count_toward_percentiles(self):
        """Above capacity the never-finishing backlog IS the tail; p99 must
        reflect it instead of surveying only the survivors."""
        result = simulate_open_loop(
            small_stations(), MIX, rate=4000.0, workers=4000,
            duration=4.0, warmup=1.0, seed=8,
        )
        assert result.unfinished_ops > 1000
        assert result.goodput_fraction < 0.9
        # Backlog grows ~linearly for 3 measured seconds; the censored
        # lower bounds push p99 into whole seconds.
        assert result.p99 > 0.5

    def test_percentiles_survive_zero_completions(self):
        """A fully wedged server completes nothing; dropping in-flight ops
        would report p99 = 0 for the worst possible run."""
        result = simulate_open_loop(
            [SimStation("disk", 1, {"read": 10.0})], MIX,
            rate=50.0, workers=100, duration=1.0, warmup=0.0, seed=3,
        )
        assert result.completed_ops <= 1
        assert result.unfinished_ops > 20
        assert result.p99 > 0.3
        assert result.mean > 0.0

    def test_saturation_caps_throughput(self):
        result = simulate_open_loop(
            small_stations(), MIX, rate=4000.0, workers=4000,
            duration=4.0, warmup=1.0, seed=8,
        )
        assert result.throughput < 2300.0  # capacity is 2000 ops/s


class TestDeterminismAndTrace:
    def test_same_seed_byte_identical(self):
        a = dataclasses.asdict(stalled_run())
        b = dataclasses.asdict(stalled_run())
        assert a == b

    def test_different_seed_differs(self):
        a = simulate_open_loop(small_stations(), MIX, rate=500.0,
                               duration=3.0, warmup=0.5, seed=1)
        b = simulate_open_loop(small_stations(), MIX, rate=500.0,
                               duration=3.0, warmup=0.5, seed=2)
        assert a.p99 != b.p99

    def test_dispatch_waits_become_spans(self):
        tracer = Tracer()
        stalled_run(tracer=tracer)
        dispatch = tracer.find(cat="dispatch")
        assert dispatch, "overload must emit dispatch.wait spans"
        requests = tracer.find(cat="request")
        assert requests
        # Request spans start at the intended arrival and carry both
        # timestamps so downstream tools can recompute either accounting.
        for span in requests[:50]:
            assert span.args["dispatch"] >= span.args["intended"]
            assert span.start == span.args["intended"]
        # Dispatch spans are parented under their request like visits are.
        parents = {s.parent for s in dispatch}
        request_ids = {s.span_id for s in requests}
        assert parents <= request_ids


class TestValidation:
    def test_bad_rate_rejected(self):
        from repro.common.errors import SimulationError

        with pytest.raises(SimulationError):
            simulate_open_loop(small_stations(), MIX, rate=0.0)

    def test_warmup_must_leave_a_window(self):
        from repro.common.errors import SimulationError

        with pytest.raises(SimulationError):
            simulate_open_loop(small_stations(), MIX, rate=100.0,
                               duration=5.0, warmup=5.0)

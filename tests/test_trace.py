"""Tests for YCSB trace generation, serialization, and cross-system replay."""

import pytest

from repro.common.errors import WorkloadError
from repro.docstore import MongoAsCluster, MongoCsCluster
from repro.sqlstore import SqlCsCluster
from repro.ycsb import WORKLOADS, make_key
from repro.ycsb.trace import (
    TraceOp,
    generate_trace,
    read_trace,
    replay,
    write_trace,
)


class TestTraceOps:
    def test_line_roundtrip(self):
        ops = [
            TraceOp("read", make_key(5)),
            TraceOp("update", make_key(6), field="field3"),
            TraceOp("insert", make_key(7)),
            TraceOp("scan", make_key(8), length=100),
            TraceOp("rmw", make_key(9), field="field0"),
        ]
        for op in ops:
            assert TraceOp.from_line(op.to_line()) == op

    def test_bad_lines_rejected(self):
        for line in ("FROB k", "UPDATE k", "SCAN k", "READ", "READ\tk\textra"):
            with pytest.raises(WorkloadError):
                TraceOp.from_line(line)


class TestGeneration:
    def test_deterministic(self):
        a = generate_trace(WORKLOADS["A"], 1000, 200, seed=5)
        b = generate_trace(WORKLOADS["A"], 1000, 200, seed=5)
        assert a == b
        c = generate_trace(WORKLOADS["A"], 1000, 200, seed=6)
        assert a != c

    def test_mix_respected(self):
        trace = generate_trace(WORKLOADS["B"], 1000, 5000, seed=1)
        reads = sum(1 for op in trace if op.op == "read")
        assert 0.92 < reads / len(trace) < 0.98

    def test_inserts_are_sequential_new_keys(self):
        trace = generate_trace(WORKLOADS["D"], 500, 2000, seed=2)
        inserted = [op.key for op in trace if op.op == "insert"]
        assert inserted == sorted(inserted)
        assert all(int(k) >= 500 for k in inserted)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            generate_trace(WORKLOADS["A"], 1, 10)


class TestFileRoundTrip:
    def test_write_read(self, tmp_path):
        trace = generate_trace(WORKLOADS["E"], 300, 150, seed=3)
        path = tmp_path / "e.trace"
        assert write_trace(trace, path) == 150
        assert read_trace(path) == trace


class TestReplay:
    def _loaded(self, cluster, n=300):
        for i in range(n):
            cluster.insert(make_key(i), {f"field{j}": f"v{i}" for j in range(10)})
        return cluster

    def test_replay_counts(self):
        cluster = self._loaded(SqlCsCluster(shard_count=3))
        trace = generate_trace(WORKLOADS["A"], 300, 400, seed=4)
        result = replay(trace, cluster)
        assert result.operations == 400
        assert result.read_hits > 0
        assert result.updates_applied > 0

    def test_identical_digests_across_systems(self):
        """The headline property: all three systems answer a trace the same."""
        trace = generate_trace(WORKLOADS["E"], 300, 120, seed=9)
        digests = []
        for cluster in (
            MongoAsCluster(shard_count=3, max_chunk_docs=80),
            MongoCsCluster(shard_count=3),
            SqlCsCluster(shard_count=3),
        ):
            result = replay(trace, self._loaded(cluster))
            digests.append((result.answer_digest, result.scanned_records))
        assert digests[0] == digests[1] == digests[2]
        assert digests[0][1] > 0

    def test_replay_with_inserts_and_rmw(self):
        cluster = self._loaded(MongoCsCluster(shard_count=2))
        trace = generate_trace(WORKLOADS["F"], 300, 200, seed=11)
        result = replay(trace, cluster)
        assert result.operations == 200
        assert result.updates_applied > 0

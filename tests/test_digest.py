"""Property tests for the streaming quantile digest (repro.obs.digest).

The digest's contract: bounded memory (log-bucketed counts, no samples),
percentiles within one log bucket of the exact nearest-rank answer, exact
merges (bucket counts are integers), and windowed queries that agree with
a from-scratch digest over the same operations.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.obs.digest import (
    DEFAULT_GROWTH,
    QuantileDigest,
    WindowedDigest,
)

latencies_strategy = st.lists(
    st.floats(min_value=1e-5, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=300,
)

percentiles_strategy = st.sampled_from([50.0, 90.0, 95.0, 99.0, 99.9, 100.0])


def exact_nearest_rank(values, pct):
    """The textbook nearest-rank percentile the digest approximates."""
    ordered = sorted(values)
    rank = max(1, min(len(ordered), math.ceil(pct / 100.0 * len(ordered))))
    return ordered[rank - 1]


class TestPercentileAccuracy:
    @given(latencies_strategy, percentiles_strategy)
    @settings(max_examples=120)
    def test_within_one_log_bucket_of_exact(self, values, pct):
        """Digest percentile is >= exact and <= exact * growth.

        The digest reports the upper edge of the bucket holding the
        nearest-rank sample, so it never understates, and a bucket spans a
        factor of ``growth`` — the documented 5% relative error bound.
        """
        digest = QuantileDigest()
        digest.record_many(values)
        exact = exact_nearest_rank(values, pct)
        reported = digest.percentile(pct)
        assert reported >= exact * (1.0 - 1e-9)
        assert reported <= max(exact, digest.min_value) * DEFAULT_GROWTH * (
            1.0 + 1e-9)

    @given(latencies_strategy)
    @settings(max_examples=60)
    def test_exact_stream_stats(self, values):
        digest = QuantileDigest()
        digest.record_many(values)
        assert digest.count == len(values)
        assert digest.mean == pytest.approx(sum(values) / len(values))
        assert digest.min == pytest.approx(min(values))
        assert digest.max == pytest.approx(max(values))

    @given(latencies_strategy,
           st.floats(min_value=1e-4, max_value=10.0, allow_nan=False))
    @settings(max_examples=80)
    def test_count_over_is_conservative(self, values, threshold):
        """count_over never overstates: whole buckets above the cutoff only."""
        digest = QuantileDigest()
        digest.record_many(values)
        actual = sum(1 for v in values if v > threshold)
        assert digest.count_over(threshold) <= actual


class TestMerge:
    @given(latencies_strategy, st.integers(min_value=1, max_value=7))
    @settings(max_examples=80)
    def test_merge_order_independent(self, values, chunks):
        """Chunked merges agree with each other exactly, regardless of order."""
        parts = [values[i::chunks] for i in range(chunks)]
        forward = QuantileDigest()
        for part in parts:
            chunk = QuantileDigest()
            chunk.record_many(part)
            forward.merge(chunk)
        backward = QuantileDigest()
        for part in reversed(parts):
            chunk = QuantileDigest()
            chunk.record_many(part)
            backward.merge(chunk)
        assert forward.buckets == backward.buckets
        assert forward.count == backward.count
        assert forward.total == pytest.approx(backward.total, rel=1e-12)
        assert forward.min == backward.min
        assert forward.max == backward.max

    @given(latencies_strategy, st.integers(min_value=2, max_value=5))
    @settings(max_examples=60)
    def test_merge_equals_single_stream(self, values, chunks):
        """Merging per-chunk digests reproduces the single-stream digest."""
        single = QuantileDigest()
        single.record_many(values)
        merged = QuantileDigest()
        for i in range(chunks):
            chunk = QuantileDigest()
            chunk.record_many(values[i::chunks])
            merged.merge(chunk)
        assert merged.buckets == single.buckets
        assert merged.count == single.count
        # Summation order differs, so the float total only matches closely.
        assert merged.total == pytest.approx(single.total, rel=1e-9)

    def test_merge_rejects_mismatched_geometry(self):
        with pytest.raises(ConfigurationError):
            QuantileDigest(growth=1.05).merge(QuantileDigest(growth=1.1))


class TestCensored:
    def test_censored_counts_toward_percentiles_not_mean(self):
        digest = QuantileDigest()
        digest.record_many([0.001] * 98)
        digest.record_censored(10.0)
        digest.record_censored(10.0)
        # The two in-flight lower bounds occupy the top 2% of the ranks.
        assert digest.percentile(99) >= 10.0
        assert digest.percentile(50) < 0.0011
        # ... but a lower bound must not bias the mean downward-looking stats.
        assert digest.mean == pytest.approx(0.001)
        assert digest.mean_with_censored > digest.mean
        assert digest.observations == 100
        assert digest.count == 98

    def test_roundtrip(self):
        digest = QuantileDigest()
        digest.record_many([0.001, 0.05, 2.0])
        digest.record_censored(7.0)
        clone = QuantileDigest.from_dict(digest.to_dict())
        assert clone.to_dict() == digest.to_dict()
        assert clone.percentile(99) == digest.percentile(99)


ops_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
        st.floats(min_value=1e-5, max_value=10.0, allow_nan=False),
    ),
    min_size=1, max_size=200,
)


class TestWindowed:
    @given(ops_strategy,
           st.floats(min_value=0.0, max_value=25.0, allow_nan=False),
           st.floats(min_value=0.5, max_value=10.0, allow_nan=False))
    @settings(max_examples=80)
    def test_window_query_equals_from_scratch(self, ops, start, width):
        """window(start, end) == a digest of every op in overlapping slices."""
        windowed = WindowedDigest(slice_s=1.0)
        for t, latency in ops:
            windowed.record(t, latency)
        end = start + width
        queried = windowed.window(start, end)
        scratch = QuantileDigest()
        for t, latency in ops:
            index = int(t / 1.0)
            if index * 1.0 < end and (index + 1) * 1.0 > start:
                scratch.record(latency)
        assert queried.buckets == scratch.buckets
        assert queried.count == scratch.count
        assert queried.total == pytest.approx(scratch.total, rel=1e-9)

    @given(ops_strategy)
    @settings(max_examples=40)
    def test_total_covers_everything(self, ops):
        windowed = WindowedDigest(slice_s=1.0)
        for t, latency in ops:
            windowed.record(t, latency)
        assert windowed.total().count == len(ops)

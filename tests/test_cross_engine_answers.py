"""Functional cross-check: different join orders, identical answers.

The two engines execute Q5 with different join orders (Section 3.3.4.1:
Hive joins the supplier side first, PDW builds the customer side first).
Both orders are executed for real on the kernel here and must produce the
same revenue-by-nation answer — the reproduction's guarantee that the cost
models are costing *equivalent* plans.
"""

import pytest

from repro.relational import (
    Agg,
    Aggregate,
    ExecutionContext,
    Filter,
    HashJoin,
    Scan,
    Sort,
    col,
    lit,
)
from repro.tpch.queries import REVENUE, run_query


def q5_hive_order(db):
    """Q5 executed in Hive's as-written order (supplier side first)."""
    asia_nations = HashJoin(
        Scan("nation"),
        Scan("region", predicate=col("r_name") == lit("ASIA")),
        ["n_regionkey"],
        ["r_regionkey"],
    )
    suppliers = HashJoin(
        Scan("supplier"), asia_nations, ["s_nationkey"], ["n_nationkey"]
    )
    lines = HashJoin(Scan("lineitem"), suppliers, ["l_suppkey"], ["s_suppkey"])
    with_orders = HashJoin(
        lines,
        Scan(
            "orders",
            predicate=(col("o_orderdate") >= lit("1994-01-01"))
            & (col("o_orderdate") < lit("1995-01-01")),
        ),
        ["l_orderkey"],
        ["o_orderkey"],
    )
    with_customer = Filter(
        HashJoin(with_orders, Scan("customer"), ["o_custkey"], ["c_custkey"]),
        col("c_nationkey") == col("s_nationkey"),
    )
    plan = Sort(
        Aggregate(with_customer, keys=["n_name"], aggs={"revenue": Agg("sum", REVENUE)}),
        [("revenue", True)],
    )
    return plan.execute(ExecutionContext(db))


class TestJoinOrderEquivalence:
    def test_q5_hive_and_pdw_orders_agree(self, small_db):
        pdw_order = run_query(5, small_db)
        hive_order = q5_hive_order(small_db)
        assert len(pdw_order) == len(hive_order)
        for a, b in zip(pdw_order, hive_order):
            assert a["n_name"] == b["n_name"]
            assert a["revenue"] == pytest.approx(b["revenue"])

    def test_answers_are_nontrivial(self, small_db):
        rows = run_query(5, small_db)
        assert rows and all(r["revenue"] > 0 for r in rows)


class TestDeterministicAnswers:
    """The whole study is reproducible: same seed, same answers."""

    @pytest.mark.parametrize("number", [1, 3, 6, 12, 14, 22])
    def test_rerun_identical(self, small_db, number):
        first = run_query(number, small_db)
        second = run_query(number, small_db)
        assert first == second

    def test_different_seed_different_data(self):
        from repro.tpch.dbgen import DbGen

        a = DbGen(0.002, seed=1).generate()
        b = DbGen(0.002, seed=2).generate()
        ra = run_query(6, a)
        rb = run_query(6, b)
        assert ra[0]["revenue"] != rb[0]["revenue"]

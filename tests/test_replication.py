"""Replica sets, write concerns, and SQL mirroring — the HA layer's contract."""

import pytest

from repro.common.errors import ConfigurationError, ReplicaSetUnavailable
from repro.replication import (
    CONCERNS,
    DEFAULT_ELECTION_TIMEOUT,
    JOURNAL_LOSS_WINDOW,
    JOURNALED,
    MAJORITY,
    SAFE,
    SPECTRUM,
    UNACKED,
    ReplicaSet,
    ReplicationConfig,
    WriteConcern,
    parse_concern_list,
)
from repro.sqlstore.mirroring import MirroredSqlServerNode


class TestWriteConcern:
    def test_spectrum_is_ordered_weakest_to_strongest(self):
        assert [c.name for c in SPECTRUM] == [
            "unacked", "safe", "journaled", "majority",
        ]

    def test_parse_names_and_aliases(self):
        assert WriteConcern.parse("safe") is SAFE
        assert WriteConcern.parse("replicated") is MAJORITY
        custom = WriteConcern.parse("w:2")
        assert custom.w == 2 and custom.journal

    def test_parse_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            WriteConcern.parse("fsync-everything")
        with pytest.raises(ConfigurationError):
            WriteConcern.parse("w:1")  # w:N is for N >= 2

    def test_loss_windows(self):
        assert UNACKED.loss_window == pytest.approx(JOURNAL_LOSS_WINDOW)
        assert SAFE.loss_window == pytest.approx(JOURNAL_LOSS_WINDOW)
        assert JOURNALED.loss_window == 0.0
        assert MAJORITY.loss_window == 0.0

    def test_required_members(self):
        assert MAJORITY.required_members(3) == 2
        assert MAJORITY.required_members(5) == 3
        assert SAFE.required_members(3) == 1

    def test_parse_concern_list(self):
        assert tuple(parse_concern_list("all")) == SPECTRUM
        assert tuple(parse_concern_list("safe,majority")) == (SAFE, MAJORITY)
        assert set(CONCERNS) >= {"unacked", "safe", "journaled", "majority"}


class TestReplicationConfig:
    def test_parse_off_and_on(self):
        assert ReplicationConfig.parse("off") is None
        assert ReplicationConfig.parse("on") == ReplicationConfig()

    def test_parse_key_values(self):
        config = ReplicationConfig.parse("replicas=5,lag=0.02,timeout=0.5")
        assert config.replicas == 5
        assert config.lag == pytest.approx(0.02)
        assert config.election_timeout == pytest.approx(0.5)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            ReplicationConfig.parse("replicas=many")
        with pytest.raises(ConfigurationError):
            ReplicationConfig.parse("flux=1")

    def test_concern_must_fit_membership(self):
        with pytest.raises(ConfigurationError):
            ReplicationConfig(replicas=1, concern=WriteConcern.parse("w:2"))

    def test_spec_string_round_trips(self):
        config = ReplicationConfig(replicas=3)
        assert ReplicationConfig.parse(config.spec_string()) == config


def make_set(**kwargs) -> ReplicaSet:
    kwargs.setdefault("members", 3)
    kwargs.setdefault("seed", 5)
    return ReplicaSet("rs-test", **kwargs)


def write_some(rs: ReplicaSet, count: int, start: int = 0,
               step: float = 0.002) -> None:
    for i in range(start, start + count):
        rs.insert("c", {"_id": f"k{i:04d}", "field0": "v"})
        rs.tick(rs.now + step)


class TestReplicaSet:
    def test_writes_replicate_to_secondaries(self):
        rs = make_set(concern=SAFE)
        write_some(rs, 20)
        rs.settle(rs.now + 1.0)
        assert all(m.applied_seq == 20 for m in rs.members)

    def test_secondary_reads_can_be_stale(self):
        rs = make_set(concern=SAFE, lag=0.5)
        rs.insert("c", {"_id": "fresh", "field0": "v"})
        # Before the lag elapses the secondaries have not applied the write.
        found = rs.find_one("c", "fresh", prefer_secondary=True)
        assert found is None
        assert rs.stale_reads >= 1

    def test_kill_primary_elects_a_new_one(self):
        rs = make_set(concern=SAFE)
        write_some(rs, 30)
        rs.settle(rs.now + 1.0)
        old_primary = rs.primary_index
        rs.kill_member(old_primary)
        with pytest.raises(ReplicaSetUnavailable):
            rs.insert("c", {"_id": "during-outage", "field0": "v"})
        rs.tick(rs.now + rs.election_timeout + 0.01)
        assert rs.elections == 1
        assert rs.primary_index != old_primary
        rs.insert("c", {"_id": "after-failover", "field0": "v"})

    def test_election_emits_failover_span(self):
        from repro.obs import Tracer

        tracer = Tracer()
        rs = ReplicaSet("rs-span", members=3, seed=5, tracer=tracer)
        write_some(rs, 10)
        rs.settle(rs.now + 1.0)
        rs.kill_member(rs.primary_index)
        rs.tick(rs.now + rs.election_timeout + 0.01)
        spans = [s for s in tracer.spans if s.name == "election.failover"]
        assert len(spans) == 1
        assert spans[0].cat == "election"
        assert spans[0].args["term"] == rs.term

    def test_safe_mode_loss_bounded_by_flush_window(self):
        rs = make_set(concern=SAFE)
        write_some(rs, 200)
        kill_time = rs.now
        rs.kill_member(rs.primary_index)
        for lost in rs.lost_records():
            assert kill_time - lost.entry.time <= JOURNAL_LOSS_WINDOW + 1e-9

    def test_majority_acked_writes_survive_any_single_failover(self):
        rs = make_set(concern=MAJORITY)
        write_some(rs, 50)
        rs.kill_member(rs.primary_index)
        rs.tick(rs.now + rs.election_timeout + 0.01)
        rs.settle(rs.now + 1.0)
        assert rs.lost_records() == []
        for i in range(50):
            assert rs.find_one("c", f"k{i:04d}") is not None

    def test_no_quorum_means_unavailable(self):
        rs = make_set(concern=SAFE)
        write_some(rs, 5)
        rs.partition_member(1)
        rs.partition_member(2)
        rs.kill_member(rs.primary_index)
        rs.tick(rs.now + rs.election_timeout + 0.01)
        assert rs.elections == 0  # one reachable member is not a quorum
        with pytest.raises(ReplicaSetUnavailable):
            rs.insert("c", {"_id": "nope", "field0": "v"})

    def test_majority_ack_needs_reachable_secondaries(self):
        rs = make_set(concern=MAJORITY)
        rs.partition_member(1)
        rs.partition_member(2)
        with pytest.raises(ReplicaSetUnavailable):
            rs.insert("c", {"_id": "w-needs-quorum", "field0": "v"})

    def test_ack_delay_orders_concern_spectrum(self):
        """Stronger concerns cost more acknowledged latency."""
        delays = {}
        for concern in SPECTRUM:
            rs = make_set(concern=concern)
            total = 0.0
            for i in range(40):
                rs.insert("c", {"_id": f"k{i:04d}", "field0": "v"})
                total += rs.consume_ack_delay()
                rs.tick(rs.now + 0.002)
            delays[concern.name] = total
        assert delays["unacked"] == 0.0
        assert delays["unacked"] <= delays["safe"] <= delays["journaled"]
        assert delays["safe"] < delays["majority"]

    def test_rolled_back_entries_recover_from_returning_member(self):
        """A member that durably holds rolled-back writes re-applies them."""
        rs = make_set(concern=SAFE, lag=0.001)
        write_some(rs, 100, step=0.005)
        rs.settle(rs.now + 1.0)
        # Now a burst the secondaries never see: partition both, write, kill.
        rs.partition_member(1)
        rs.partition_member(2)
        victim = rs.primary_index
        burst_start = rs.now
        while rs.now - burst_start < 0.25:  # crosses a journal flush
            rs.insert("c", {"_id": f"burst{rs.oplog[-1].seq}", "field0": "v"})
            rs.tick(rs.now + 0.02)
        rs.kill_member(victim)
        assert rs.rolled_back  # durably-journaled burst writes rolled back
        rs.heal_member(1)
        rs.heal_member(2)
        rs.tick(rs.now + rs.election_timeout + 0.01)
        rs.restart_member(victim)
        rs.settle(rs.now + 1.0)
        recovered = [r for r in rs.rolled_back if r.recovered]
        assert recovered
        for record in recovered:
            assert rs.find_one("c", record.entry.key) is not None

    def test_unavailable_seconds_accrue_during_failover(self):
        rs = make_set(concern=SAFE)
        write_some(rs, 10)
        rs.settle(rs.now + 1.0)
        rs.kill_member(rs.primary_index)
        rs.tick(rs.now + rs.election_timeout + 0.05)
        assert rs.unavailable_seconds() >= DEFAULT_ELECTION_TIMEOUT


class TestMirroredSqlServer:
    def test_synchronous_commit_charges_latency(self):
        node = MirroredSqlServerNode("m")
        node.insert("k1", {"field0": "v"})
        assert node.consume_ack_delay() == pytest.approx(
            node.mirror_commit_latency
        )
        assert node.consume_ack_delay() == 0.0  # drained

    def test_principal_crash_loses_nothing(self):
        node = MirroredSqlServerNode("m")
        for i in range(25):
            node.insert(f"k{i:03d}", {"field0": "v"})
        node.update("k000", "field0", "v2")
        rows = node.crash_principal_and_verify()
        assert rows == 25
        assert node.failovers == 1
        assert node.read("k000")["field0"] == "v2"

    def test_degraded_solo_mode_then_resync(self):
        node = MirroredSqlServerNode("m")
        node.insert("k0", {"field0": "v"})
        node.kill()  # mirror promotes
        # Old principal is down: writes keep landing, unmirrored (delay 0).
        node.insert("k1", {"field0": "v"})
        assert node.consume_ack_delay() == 0.0
        node.restart()
        assert node.mirror.alive
        # The resynced mirror holds everything, including the solo write.
        node.kill()
        assert node.row_count == 2

    def test_total_outage_recovers_from_wal(self):
        node = MirroredSqlServerNode("m")
        node.insert("k0", {"field0": "v"})
        node.kill()
        node.kill()  # both partners down now
        assert not node.alive
        node.restart()
        assert node.alive
        assert node.read("k0")["field0"] == "v"


class TestClusterWiring:
    def test_mongo_as_replicated_shards_fail_over(self):
        from repro.docstore.cluster import MongoAsCluster
        from repro.faults.availability import CHAOS_RETRY_POLICY
        from repro.faults.plan import FaultPlan
        from repro.faults.runner import FaultedYcsbRun
        from repro.ycsb.workloads import WORKLOADS, make_key

        record_count = 300
        cluster = MongoAsCluster(
            shard_count=4, max_chunk_docs=10 * record_count, mongos_count=2,
            replication=ReplicationConfig(replicas=3), seed=3,
        )
        boundaries = [make_key(i * record_count // 32) for i in range(1, 32)]
        cluster.pre_split(boundaries)
        plan = FaultPlan.parse("kill-shard:1@0.4", seed=3)
        runner = FaultedYcsbRun(
            cluster, WORKLOADS["A"], record_count=record_count,
            operations=400, plan=plan, policy=CHAOS_RETRY_POLICY, seed=3,
        )
        runner.load()
        stats = runner.run()
        # The replica set elects a new primary inside the retry budget:
        # zero client-visible errors, availability 1.0.
        assert stats.error_count == 0
        assert stats.availability == 1.0
        assert sum(s.elections for s in cluster.shards) >= 1

    def test_bare_cluster_baseline_accounting_unchanged(self):
        """replication=None must reproduce the PR 3 error accounting."""
        from repro.faults.plan import FaultPlan
        from repro.faults.report import dumps_fault_report, oltp_fault_report

        plan = FaultPlan.parse("kill-shard:0@0.25;restart-shard:0@0.75",
                               seed=7)

        def run(**kwargs):
            return dumps_fault_report(oltp_fault_report(
                plan, workload="A", system="mongo-as", shard_count=8,
                record_count=600, operations=1200, **kwargs,
            ))

        assert run() == run(replication=None)

    def test_sql_cs_mirrored_cluster(self):
        from repro.sqlstore.cluster import SqlCsCluster

        cluster = SqlCsCluster(shard_count=2, mirrored=True)
        cluster.insert("user0000000001", {"field0": "v"})
        assert cluster.consume_ack_delay() > 0.0
        write = cluster.take_last_write()
        assert write is not None and write.concern == "mirrored"
        cluster.kill_shard(0)
        cluster.kill_shard(1)
        assert cluster.read("user0000000001")["field0"] == "v"

"""Tests for the YCSB latency histogram and the mongos routing cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ShardingError, WorkloadError
from repro.docstore.chunks import ConfigServer, MongosRouter
from repro.ycsb.histogram import LatencyHistogram, from_latencies
from repro.ycsb.workloads import make_key


class TestLatencyHistogram:
    def test_basic_stats(self):
        h = from_latencies([0.001, 0.002, 0.003, 0.010])
        assert h.total == 4
        assert h.mean == pytest.approx(0.004)
        assert h.min_latency == 0.001
        assert h.max_latency == 0.010

    def test_percentiles_ycsb_semantics(self):
        # 100 samples of 1 ms and one of 500 ms.
        h = from_latencies([0.0015] * 100 + [0.5])
        assert h.percentile(95) == pytest.approx(0.002)  # upper bucket edge
        assert h.percentile(100) == pytest.approx(0.501, abs=0.01)

    def test_overflow_bucket(self):
        h = from_latencies([2.5])  # beyond the 1 s range
        assert h.overflow == 1
        assert h.percentile(99) == 2.5  # falls back to max

    def test_merge(self):
        a = from_latencies([0.001] * 10)
        b = from_latencies([0.005] * 10)
        a.merge(b)
        assert a.total == 20
        assert a.mean == pytest.approx(0.003)
        with pytest.raises(WorkloadError):
            a.merge(LatencyHistogram(buckets=10))

    def test_render(self):
        h = from_latencies([0.001, 0.004, 0.012])
        text = h.render("READ")
        assert "[READ] Operations: 3" in text
        assert "AverageLatency(ms)" in text
        assert "95thPercentileLatency(ms)" in text
        assert LatencyHistogram().render() == "[READ] no operations recorded"

    def test_validation(self):
        with pytest.raises(WorkloadError):
            LatencyHistogram(buckets=0)
        with pytest.raises(WorkloadError):
            from_latencies([-0.001])
        with pytest.raises(WorkloadError):
            LatencyHistogram().percentile(0)

    @given(st.lists(st.floats(min_value=0.0, max_value=0.9), min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_percentile_monotone_and_bounded(self, samples):
        h = from_latencies(samples)
        p50, p95, p99 = h.percentile(50), h.percentile(95), h.percentile(99)
        assert p50 <= p95 <= p99
        assert p99 <= h.max_latency + h.bucket_width
        assert h.total == len(samples)


class TestBucketBoundaries:
    """Regression: float division used to misplace exact-boundary latencies.

    ``0.003 / 0.001`` is ``2.999...96`` in IEEE arithmetic, so an
    exactly-3 ms latency landed in the [2 ms, 3 ms) bucket and every
    percentile that resolved to it came back one bucket (1 ms) low —
    right where p99/p999 of a millisecond-scale workload live.
    """

    def test_boundary_latency_lands_in_its_own_bucket(self):
        # Bucket 3 covers [3 ms, 4 ms): a 3 ms latency belongs there, and
        # YCSB reports its upper edge.
        h = from_latencies([0.003] * 100)
        assert h.counts[3] == 100
        assert h.counts[2] == 0
        assert h.percentile(99) == pytest.approx(0.004)
        assert h.percentile(99.9) == pytest.approx(0.004)

    def test_every_millisecond_boundary(self):
        """All 999 in-range exact boundaries index their own bucket, both
        the quotient-rounds-down (3 ms) and rounds-up (7 ms) flavours."""
        for k in range(1, 1000):
            h = LatencyHistogram()
            h.record(k * 0.001)
            assert h.counts[k] == 1, f"{k} ms landed in the wrong bucket"

    def test_interior_values_unmoved(self):
        h = LatencyHistogram()
        h.record(0.0035)
        assert h.counts[3] == 1

    def test_overflow_edge_still_overflows(self):
        h = LatencyHistogram()
        h.record(1.0)  # == buckets * width, first value past the range
        assert h.overflow == 1
        assert sum(h.counts) == 0

    @given(st.integers(min_value=0, max_value=999),
           st.integers(min_value=1, max_value=1000))
    @settings(max_examples=80)
    def test_bucket_invariant_holds_everywhere(self, k, denominator):
        """record() must honour bucket i = [i*w, (i+1)*w) for arbitrary
        latencies, including ugly fractions near boundaries."""
        latency = k * 0.001 + 0.001 / denominator
        h = LatencyHistogram()
        h.record(latency)
        if h.overflow:
            assert latency >= h.buckets * h.bucket_width
            return
        index = h.counts.index(1)
        assert index * h.bucket_width <= latency < (index + 1) * h.bucket_width


class TestMongosRouter:
    def _config(self):
        cfg = ConfigServer()
        cfg.pre_split([make_key(100), make_key(200)], shard_count=3)
        return cfg

    def test_routes_from_cache(self):
        cfg = self._config()
        router = MongosRouter(cfg)
        assert router.refreshes == 1
        chunk = router.route(make_key(150))
        assert chunk.contains(make_key(150))
        assert router.stale_routes == 0

    def test_split_staleness_triggers_refresh(self):
        cfg = self._config()
        router = MongosRouter(cfg)
        target = cfg.chunk_for(make_key(150))
        cfg.split_chunk(target, make_key(150))
        assert router.is_stale
        chunk = router.route(make_key(175))
        assert chunk.low == make_key(150)
        assert router.stale_routes == 1
        assert router.refreshes == 2
        # Subsequent routes hit the fresh cache.
        router.route(make_key(175))
        assert router.stale_routes == 1

    def test_two_routers_refresh_independently(self):
        cfg = self._config()
        a, b = MongosRouter(cfg, "mongos-a"), MongosRouter(cfg, "mongos-b")
        cfg.split_chunk(cfg.chunk_for(make_key(50)), make_key(50))
        a.route(make_key(10))
        assert a.stale_routes == 1
        assert b.is_stale  # b has not routed yet
        b.route(make_key(10))
        assert b.stale_routes == 1

    def test_version_bumps_on_split_and_migration(self):
        cfg = ConfigServer()
        cfg.bootstrap()
        v0 = cfg.version
        cfg.split_chunk(cfg.chunks[0], make_key(10))
        assert cfg.version == v0 + 1

    def test_route_miss_raises(self):
        cfg = ConfigServer()  # no chunks at all
        router = MongosRouter(cfg)
        with pytest.raises(ShardingError):
            router.route(make_key(1))

"""Same seed, same bytes: determinism of traces and metrics exports.

The obs layer promises that a trace carries only simulated time and
caller-supplied attributes — nothing wall-clock- or id()-derived — so two
runs with the same seed must serialize to byte-identical Chrome trace JSON
and metrics JSON.  Property-tested across seeds and closed-loop shapes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    MetricsRegistry,
    Tracer,
    UtilizationSampler,
    dumps_chrome_trace,
    dumps_series,
    series_to_csv,
)
from repro.ycsb.eventsim import SimStation, simulate_closed_loop

STATIONS = [
    SimStation("cpu", 4, {"read": 0.002, "update": 0.003}),
    SimStation("disk", 2, {"read": 0.004, "update": 0.004}),
    SimStation("hotlock", 1, {"update": 0.001}),
]
MIX = {"read": 0.5, "update": 0.5}


def _traced_run(seed: int, clients: int, duration: float = 6.0):
    tracer, metrics = Tracer(), MetricsRegistry()
    result = simulate_closed_loop(
        STATIONS, MIX, clients=clients, think_time=0.01,
        duration=duration, warmup=2.0, windows=2, seed=seed,
        tracer=tracer, metrics=metrics,
    )
    return result, dumps_chrome_trace(tracer, metrics), metrics.to_json()


class TestEventSimDeterminism:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           clients=st.integers(min_value=1, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_same_seed_byte_identical(self, seed, clients):
        result_a, trace_a, metrics_a = _traced_run(seed, clients)
        result_b, trace_b, metrics_b = _traced_run(seed, clients)
        assert trace_a == trace_b
        assert metrics_a == metrics_b
        assert result_a.throughput == result_b.throughput
        assert result_a.latency == result_b.latency

    def test_different_seed_different_trace(self):
        _, trace_a, _ = _traced_run(1, 4)
        _, trace_b, _ = _traced_run(2, 4)
        assert trace_a != trace_b

    def test_tracing_does_not_perturb_simulation(self):
        """Attaching a tracer must not change a single simulated number."""
        bare = simulate_closed_loop(
            STATIONS, MIX, clients=6, think_time=0.01,
            duration=6.0, warmup=2.0, windows=2, seed=99,
        )
        traced, _, _ = _traced_run(99, 6)
        assert bare.throughput == traced.throughput
        assert bare.completed_ops == traced.completed_ops
        assert bare.latency == traced.latency
        assert bare.window_throughputs == traced.window_throughputs


def _sampled_run(seed: int, clients: int, duration: float = 6.0):
    sampler = UtilizationSampler(interval=0.5)
    result = simulate_closed_loop(
        STATIONS, MIX, clients=clients, think_time=0.01,
        duration=duration, warmup=2.0, windows=2, seed=seed,
        sampler=sampler,
    )
    return result, series_to_csv(sampler), dumps_series(sampler)


class TestUtilizationSeriesDeterminism:
    """Same seed, same bytes — extended to the utilization series files."""

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           clients=st.integers(min_value=1, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_same_seed_byte_identical_series(self, seed, clients):
        _, csv_a, json_a = _sampled_run(seed, clients)
        _, csv_b, json_b = _sampled_run(seed, clients)
        assert csv_a == csv_b
        assert json_a == json_b

    def test_different_seed_different_series(self):
        _, csv_a, _ = _sampled_run(1, 4)
        _, csv_b, _ = _sampled_run(2, 4)
        assert csv_a != csv_b

    def test_sampling_does_not_perturb_simulation(self):
        """Attaching a sampler must not change a single simulated number."""
        bare = simulate_closed_loop(
            STATIONS, MIX, clients=6, think_time=0.01,
            duration=6.0, warmup=2.0, windows=2, seed=99,
        )
        sampled, _, _ = _sampled_run(99, 6)
        assert bare.throughput == sampled.throughput
        assert bare.completed_ops == sampled.completed_ops
        assert bare.latency == sampled.latency
        assert bare.window_throughputs == sampled.window_throughputs

    def test_series_files_byte_identical_on_disk(self, tmp_path):
        """The CLI-style file writes are byte-identical across same-seed runs."""
        from repro.obs import write_series_csv, write_series_json

        payloads = []
        for name in ("a", "b"):
            sampler = UtilizationSampler(interval=0.5)
            simulate_closed_loop(
                STATIONS, MIX, clients=5, think_time=0.01,
                duration=6.0, warmup=2.0, windows=2, seed=7,
                sampler=sampler,
            )
            csv_path = tmp_path / f"{name}.csv"
            json_path = tmp_path / f"{name}.json"
            write_series_csv(str(csv_path), sampler)
            write_series_json(str(json_path), sampler)
            payloads.append((csv_path.read_bytes(), json_path.read_bytes()))
        assert payloads[0] == payloads[1]

    def test_hive_series_byte_identical_across_studies(self):
        from repro.core.dss import DssStudy

        payloads = []
        for _ in range(2):
            study = DssStudy(fit=False)
            sampler = UtilizationSampler()
            study.trace_query(5, 1000, engine="hive", sampler=sampler)
            payloads.append(series_to_csv(sampler))
        assert payloads[0] == payloads[1]


class TestAnalyticDeterminism:
    def test_dss_trace_byte_identical_across_studies(self):
        """Two independently built studies trace a query identically."""
        from repro.core.dss import DssStudy

        payloads = []
        for _ in range(2):
            study = DssStudy(fit=False)
            _, tracer, metrics = study.trace_query(5, 1000, engine="hive")
            payloads.append(dumps_chrome_trace(tracer, metrics))
        assert payloads[0] == payloads[1]

    def test_pdw_trace_byte_identical_across_studies(self):
        from repro.core.dss import DssStudy

        payloads = []
        for _ in range(2):
            study = DssStudy(fit=False)
            _, tracer, metrics = study.trace_query(19, 4000, engine="pdw")
            payloads.append(dumps_chrome_trace(tracer, metrics))
        assert payloads[0] == payloads[1]

    def test_docstore_trace_deterministic(self):
        from repro.docstore.cluster import MongoAsCluster

        payloads = []
        for _ in range(2):
            tracer, metrics = Tracer(), MetricsRegistry()
            cluster = MongoAsCluster(
                shard_count=4, max_chunk_docs=8, balancer_threshold=2,
                tracer=tracer, metrics=metrics,
            )
            for i in range(120):
                cluster.insert(f"user{i:04d}", {"field0": "v"})
            cluster.run_balancer()
            payloads.append(dumps_chrome_trace(tracer, metrics))
        assert payloads[0] == payloads[1]

"""Tests for the unit helpers and the TPC-H text pools."""

import pytest

from repro.common.units import (
    GB,
    KB,
    MB,
    TB,
    fmt_bytes,
    fmt_seconds,
    gbit_to_bytes_per_sec,
)
from repro.tpch import text


class TestUnits:
    def test_binary_ladder(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB
        assert TB == 1024 * GB

    def test_gbit_conversion(self):
        # 1 Gbit/s = 125 MB/s decimal.
        assert gbit_to_bytes_per_sec(1.0) == pytest.approx(125e6)
        assert gbit_to_bytes_per_sec(10.0) == pytest.approx(1.25e9)

    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(2048) == "2.0 KB"
        assert fmt_bytes(3 * MB) == "3.0 MB"
        assert fmt_bytes(1.5 * TB) == "1.5 TB"

    def test_fmt_seconds(self):
        assert fmt_seconds(0.0123) == "12.3 ms"
        assert fmt_seconds(42.0) == "42 sec"
        assert fmt_seconds(3600.0) == "60 min"


class TestTextPools:
    def test_part_name_words_count(self):
        # The spec's colour list has 92 words, all distinct.
        assert len(text.P_NAME_WORDS) == 92
        assert len(set(text.P_NAME_WORDS)) == 92
        assert "green" in text.P_NAME_WORDS
        assert "forest" in text.P_NAME_WORDS

    def test_part_types(self):
        types = text.all_part_types()
        assert len(types) == 6 * 5 * 5 == 150
        assert "ECONOMY ANODIZED STEEL" in types  # Q8's parameter
        assert "MEDIUM POLISHED TIN" in types  # Q16's NOT LIKE prefix

    def test_containers(self):
        containers = text.all_containers()
        assert len(containers) == 5 * 8 == 40
        # Q19's branch containers must exist.
        for c in ("SM CASE", "MED BOX", "LG PKG", "JUMBO DRUM"):
            assert c in containers
        assert "MED BOX" in containers  # Q17's parameter

    def test_nations_and_regions(self):
        assert len(text.NATIONS) == 25
        assert len(text.REGIONS) == 5
        region_keys = {r for _, r in text.NATIONS}
        assert region_keys == {0, 1, 2, 3, 4}
        names = [n for n, _ in text.NATIONS]
        for param in ("FRANCE", "GERMANY", "BRAZIL", "SAUDI ARABIA", "CANADA"):
            assert param in names  # query substitution parameters

    def test_modes_and_instructions(self):
        # Q19 needs these exact values.
        assert "AIR" in text.MODES
        assert "DELIVER IN PERSON" in text.INSTRUCTIONS
        # Q12's parameters.
        assert "MAIL" in text.MODES and "SHIP" in text.MODES

    def test_comment_lexicon_has_query_needles(self):
        for word in ("special", "requests"):
            assert word in text.COMMENT_WORDS

"""The repro-availability/1 report: schema, determinism, CLI, what-if."""

import json

import pytest

from repro.cli import main
from repro.common.errors import ConfigurationError
from repro.faults.availability import (
    SCHEMA,
    availability_report,
    availability_row,
    dumps_availability_report,
    render_availability_report,
    validate_availability_report,
)
from repro.faults.chaos import ChaosConfig
from repro.replication import JOURNALED, SAFE


@pytest.fixture(scope="module")
def report():
    return availability_report(
        systems=["mongo-as", "sql-cs"], concerns=[SAFE, JOURNALED],
        chaos=ChaosConfig(kills=1, partitions=0, lag_spikes=0),
        operations=120, record_count=150, seed=11,
    )


class TestAvailabilityReport:
    def test_validates(self, report):
        validate_availability_report(report)
        assert report["schema"] == SCHEMA

    def test_one_row_per_system_concern_cell(self, report):
        cells = [(r["system"], r["concern"]) for r in report["rows"]]
        assert cells == [
            ("mongo-as", "safe"), ("mongo-as", "journaled"),
            ("sql-cs", "mirrored"),
        ]

    def test_durability_cost_shows_in_the_rows(self, report):
        by_cell = {(r["system"], r["concern"]): r for r in report["rows"]}
        safe = by_cell[("mongo-as", "safe")]
        journaled = by_cell[("mongo-as", "journaled")]
        # Stronger concern: zero documented loss window, slower acks.
        assert safe["loss_window_seconds"] > 0.0
        assert journaled["loss_window_seconds"] == 0.0
        assert journaled["lost_writes"] == 0
        assert journaled["duration_seconds"] >= safe["duration_seconds"]

    def test_invariant_holds_end_to_end(self, report):
        assert report["invariant_ok"]
        assert all(row["violations"] == 0 for row in report["rows"])

    def test_deterministic_bytes(self, report):
        again = availability_report(
            systems=["mongo-as", "sql-cs"], concerns=[SAFE, JOURNALED],
            chaos=ChaosConfig(kills=1, partitions=0, lag_spikes=0),
            operations=120, record_count=150, seed=11,
        )
        assert dumps_availability_report(report) == \
            dumps_availability_report(again)

    def test_render_smoke(self, report):
        text = render_availability_report(report)
        assert "safety invariant: holds" in text
        assert "mirrored" in text

    def test_row_requires_concern_for_mongo(self):
        with pytest.raises(ConfigurationError):
            availability_row("mongo-as", None, chaos=ChaosConfig(),
                             operations=120, record_count=150)


class TestValidation:
    def test_rejects_wrong_schema(self, report):
        bad = dict(report, schema="repro-faults/1")
        with pytest.raises(ConfigurationError):
            validate_availability_report(bad)

    def test_rejects_missing_row_field(self, report):
        bad = json.loads(dumps_availability_report(report))
        del bad["rows"][0]["lost_writes"]
        with pytest.raises(ConfigurationError):
            validate_availability_report(bad)

    def test_rejects_inconsistent_invariant(self, report):
        bad = json.loads(dumps_availability_report(report))
        bad["rows"][0]["violations"] = 3
        with pytest.raises(ConfigurationError):
            validate_availability_report(bad)

    def test_rejects_wrong_types(self, report):
        bad = json.loads(dumps_availability_report(report))
        bad["rows"][0]["elections"] = "one"
        with pytest.raises(ConfigurationError):
            validate_availability_report(bad)


class TestStudyHook:
    def test_oltp_study_delegates(self):
        from repro.core.oltp import OltpStudy

        report = OltpStudy().availability_report(
            systems=["sql-cs"], operations=120, record_count=150, seed=11,
        )
        validate_availability_report(report)
        assert report["rows"][0]["system"] == "sql-cs"


class TestCli:
    def test_chaos_sweep_writes_and_validates(self, tmp_path, capsys):
        out = tmp_path / "availability.json"
        code = main([
            "oltp", "--chaos", "kills=1,partitions=0,lag-spikes=0",
            "--write-concern", "safe,journaled", "--operations", "120",
            "--availability-report", str(out),
        ])
        assert code == 0
        validate_availability_report(json.loads(out.read_text()))
        assert "safety invariant: holds" in capsys.readouterr().out

    def test_replication_off_with_chaos_is_a_usage_error(self, capsys):
        assert main(["oltp", "--chaos", "--replication", "off"]) == 2

    def test_lone_write_concern_is_a_usage_error(self, capsys):
        assert main(["oltp", "--write-concern", "safe"]) == 2

    def test_bad_chaos_spec_is_a_usage_error(self, capsys):
        assert main(["oltp", "--chaos", "kills=lots"]) == 2

    def test_member_fault_needs_replication(self, capsys):
        assert main([
            "oltp", "--workload", "A", "--faults", "kill-member:1.0@0.4",
        ]) == 2


class TestWhatIfElection:
    def test_election_mechanism_registered(self):
        from repro.obs.whatif import MECHANISMS, parse_whatif

        assert MECHANISMS["election"][0] == "oltp"
        assert parse_whatif("election=0") == {"election": 0.0}

    def test_replay_subtracts_election_waits(self):
        from repro.obs import Tracer
        from repro.obs.whatif import replay_oltp

        tracer = Tracer()
        request = tracer.add("request.update", 1.0, 1.5, cat="request",
                             node="client", lane="ops", cls="update")
        wait = tracer.add("election.wait", 1.1, 1.4, cat="election",
                          node="client", lane="ops")
        wait.parent = request.span_id
        base = replay_oltp(tracer, {}, warmup=0.0)
        halved = replay_oltp(tracer, {"election": 0.5}, warmup=0.0)
        gone = replay_oltp(tracer, {"election": 0.0}, warmup=0.0)
        assert base["mean"] == pytest.approx(0.5)
        assert halved["mean"] == pytest.approx(0.35)
        assert gone["mean"] == pytest.approx(0.2)

    def test_chaos_run_emits_linked_election_waits(self):
        from repro.faults.availability import (
            CHAOS_RETRY_POLICY,
            _build_chaos_cluster,
        )
        from repro.faults.chaos import ChaosYcsbRun, chaos_plan
        from repro.obs import Tracer
        from repro.replication.config import ReplicationConfig
        from repro.ycsb.workloads import WORKLOADS

        tracer = Tracer()
        replication = ReplicationConfig(replicas=3)
        plan = chaos_plan(ChaosConfig(kills=1, partitions=0, lag_spikes=0),
                          300, 4, 3, 11)
        cluster = _build_chaos_cluster("mongo-as", 4, 300, replication, 11,
                                       tracer=tracer)
        runner = ChaosYcsbRun(
            cluster, WORKLOADS["A"], record_count=300, operations=300,
            plan=plan, policy=CHAOS_RETRY_POLICY, seed=11, tracer=tracer,
        )
        runner.load()
        runner.run()
        waits = [s for s in tracer.spans if s.name == "election.wait"]
        failovers = [s for s in tracer.spans
                     if s.name == "election.failover"]
        assert waits and failovers
        by_id = {s.span_id: s for s in tracer.spans}
        for wait in waits:
            assert by_id[wait.parent].cat == "request"
        assert any(
            by_id[src].name == "election.failover"
            for wait in waits for src, kind in wait.links
            if kind == "handoff"
        )

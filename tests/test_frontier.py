"""The repro-frontier/1 report: knee search, schema, determinism, CLI."""

import json

import pytest

from repro.cli import main
from repro.common.errors import ConfigurationError, SloUnreachableError
from repro.ycsb.frontier import (
    FRONTIER_SYSTEMS,
    LADDER_FRACTIONS,
    SCHEMA,
    apply_concern,
    dumps_frontier_report,
    find_knee,
    frontier_report,
    frontier_system_models,
    render_frontier_report,
    validate_frontier_report,
    write_frontier_report,
)

# Smoke budget: with only a 0.2 s measured window the backlog above the
# peak is small, so the SLO must be proportionally tight (20 ms, not the
# CLI's 250 ms default) for the knee bracket to close.
SMOKE = dict(systems=["mongo-as"], workloads=["A"], seed=11, slo_ms=20.0,
             measure_ops=1500, warmup_ops=300, min_window_s=0.2)


@pytest.fixture(scope="module")
def report():
    return frontier_report(**SMOKE)


class TestKneeSearch:
    def test_step_curve_converges_on_known_knee(self):
        """p99 jumps from 1 ms to 1 s at rate 5000: the knee must land
        within rel_tol below 5000."""
        measure = lambda rate: 0.001 if rate <= 5000.0 else 1.0
        knee = find_knee(measure, slo=0.010, lo=500.0, rel_tol=0.02)
        assert knee.bracketed
        assert 4900.0 <= knee.rate <= 5000.0
        assert knee.p99 == 0.001

    def test_queueing_curve_converges_on_analytic_knee(self):
        """M/M/1-shaped p99 ~ s/(1 - rate/cap): the SLO crossing has a
        closed form the bisection must find."""
        cap, service, slo = 10_000.0, 0.002, 0.050
        measure = lambda rate: (service / (1.0 - rate / cap)
                                if rate < cap else 60.0)
        knee = find_knee(measure, slo=slo, lo=1000.0, rel_tol=0.01)
        analytic = cap * (1.0 - service / slo)  # p99(rate) == slo
        assert knee.bracketed
        assert knee.rate == pytest.approx(analytic, rel=0.02)
        assert knee.p99 <= slo

    def test_probe_trail_is_recorded(self):
        measure = lambda rate: 0.001 if rate <= 5000.0 else 1.0
        knee = find_knee(measure, slo=0.010, lo=500.0)
        assert knee.evaluations == len(knee.probes) >= 3
        assert knee.probes[0][0] == 500.0  # search starts at the bracket lo

    def test_slo_boundary_exactly_met_passes(self):
        """p99 == SLO is inside the objective, not a violation."""
        knee = find_knee(lambda rate: 0.010, slo=0.010, lo=100.0,
                         max_doublings=3)
        assert not knee.bracketed  # never violated, bracket ran out
        assert knee.rate == 800.0  # lo doubled three times

    def test_unreachable_slo_raises(self):
        with pytest.raises(SloUnreachableError):
            find_knee(lambda rate: 1.0, slo=0.010, lo=100.0)

    def test_unreachable_is_a_configuration_error(self):
        """The CLI maps ConfigurationError to exit 2; unreachable SLOs must
        ride that path."""
        assert issubclass(SloUnreachableError, ConfigurationError)

    def test_explicit_hi_that_passes_is_unbracketed(self):
        knee = find_knee(lambda rate: 0.001, slo=0.010, lo=100.0, hi=1000.0)
        assert not knee.bracketed
        assert knee.rate == 1000.0

    def test_explicit_hi_that_fails_bisects(self):
        measure = lambda rate: 0.001 if rate <= 600.0 else 1.0
        knee = find_knee(measure, slo=0.010, lo=100.0, hi=1000.0,
                         rel_tol=0.02)
        assert knee.bracketed
        assert 580.0 <= knee.rate <= 600.0

    @pytest.mark.parametrize("kwargs", [
        dict(lo=0.0), dict(lo=-5.0),
        dict(lo=100.0, hi=50.0), dict(lo=100.0, hi=100.0),
        dict(lo=100.0, rel_tol=0.0), dict(lo=100.0, rel_tol=-1.0),
    ])
    def test_bad_brackets_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            find_knee(lambda rate: 0.001, slo=0.010, **kwargs)

    def test_bad_slo_rejected(self):
        with pytest.raises(ConfigurationError):
            find_knee(lambda rate: 0.001, slo=0.0, lo=100.0)


class TestSystemsAndConcerns:
    def test_default_sweep_has_four_systems(self):
        models = frontier_system_models()
        assert set(FRONTIER_SYSTEMS) <= set(models)
        assert len(FRONTIER_SYSTEMS) == 4

    def test_mongo_as_safe_is_journaled_mongo_as(self):
        models = frontier_system_models()
        safe, base = models["mongo-as-safe"], models["mongo-as"]
        assert safe.journaled and not base.journaled
        assert safe.read_io_bytes == base.read_io_bytes
        assert safe.uses_global_lock == base.uses_global_lock

    def test_safe_concern_enables_journal_on_mongo(self):
        models = frontier_system_models()
        assert apply_concern(models["mongo-as"], "safe").journaled

    def test_safe_concern_is_noop_on_sql(self):
        """SQL-CS always forces its commit log; there is nothing to add."""
        models = frontier_system_models()
        assert apply_concern(models["sql-cs"], "safe") is models["sql-cs"]

    def test_majority_concern_adds_replication(self):
        models = frontier_system_models()
        majority = apply_concern(models["mongo-as"], "majority")
        assert majority.replicated and majority.journaled

    def test_paper_concern_changes_nothing(self):
        models = frontier_system_models()
        assert apply_concern(models["mongo-as"], "paper") is models["mongo-as"]
        assert apply_concern(models["mongo-as"], None) is models["mongo-as"]

    def test_unknown_concern_rejected(self):
        with pytest.raises(ConfigurationError):
            apply_concern(frontier_system_models()["mongo-as"], "yolo")


class TestReport:
    def test_schema_and_shape(self, report):
        validate_frontier_report(report)
        assert report["schema"] == SCHEMA
        assert len(report["rows"]) == 1
        row = report["rows"][0]
        assert row["system"] == "mongo-as"
        assert row["workload"] == "A"
        assert len(row["points"]) == len(LADDER_FRACTIONS)

    def test_knee_meets_slo_and_sits_above_the_ladder_floor(self, report):
        row = report["rows"][0]
        knee = row["knee"]
        assert knee["p99_ms"] <= row["slo_ms"]
        assert knee["rate_ops_per_s"] >= row["points"][0]["offered_ops_per_s"]
        assert knee["bracketed"]
        assert knee["evaluations"] == len(knee["probes"])

    def test_ladder_tracks_the_mva_peak(self, report):
        row = report["rows"][0]
        offered = [p["offered_ops_per_s"] for p in row["points"]]
        for rate, fraction in zip(offered, LADDER_FRACTIONS):
            assert rate == pytest.approx(
                fraction * row["mva_peak_ops_per_s"], rel=1e-6)

    def test_saturation_shows_up_past_the_peak(self, report):
        """The 1.1x-peak rung cannot sustain its offered rate."""
        last = report["rows"][0]["points"][-1]
        assert last["saturated"]
        assert last["p99_ms"] > report["rows"][0]["points"][0]["p99_ms"]

    def test_byte_deterministic_per_seed(self, report):
        again = frontier_report(**SMOKE)
        assert dumps_frontier_report(again) == dumps_frontier_report(report)

    def test_seed_changes_the_bytes(self, report):
        other = frontier_report(**dict(SMOKE, seed=12))
        assert dumps_frontier_report(other) != dumps_frontier_report(report)

    def test_json_round_trip_validates(self, report):
        parsed = json.loads(dumps_frontier_report(report))
        validate_frontier_report(parsed)

    def test_write_and_reload(self, report, tmp_path):
        path = tmp_path / "frontier.json"
        write_frontier_report(report, str(path))
        assert json.loads(path.read_text()) == json.loads(
            dumps_frontier_report(report))

    def test_render_mentions_the_essentials(self, report):
        text = render_frontier_report(report)
        assert "mongo-as" in text
        assert "knee ops/s" in text
        assert "no coordinated omission" in text
        assert "Workload A" in text

    def test_unknown_system_rejected(self):
        with pytest.raises(ConfigurationError):
            frontier_report(**dict(SMOKE, systems=["riak"]))

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            frontier_report(**dict(SMOKE, workloads=["Z"]))

    @pytest.mark.parametrize("override", [
        dict(slo_ms=0.0), dict(measure_ops=0), dict(warmup_ops=-1),
        dict(min_window_s=0.0), dict(scale=0.0),
    ])
    def test_bad_budgets_rejected(self, override):
        with pytest.raises(ConfigurationError):
            frontier_report(**dict(SMOKE, **override))


class TestValidationRejections:
    def mutated(self, report, **changes):
        clone = json.loads(dumps_frontier_report(report))
        clone.update(changes)
        return clone

    def test_wrong_schema(self, report):
        bad = self.mutated(report, schema="repro-frontier/0")
        with pytest.raises(ConfigurationError):
            validate_frontier_report(bad)

    def test_empty_rows(self, report):
        bad = self.mutated(report, rows=[])
        with pytest.raises(ConfigurationError):
            validate_frontier_report(bad)

    def test_missing_point_field(self, report):
        bad = json.loads(dumps_frontier_report(report))
        del bad["rows"][0]["points"][0]["p99_ms"]
        with pytest.raises(ConfigurationError):
            validate_frontier_report(bad)

    def test_knee_violating_its_own_slo(self, report):
        bad = json.loads(dumps_frontier_report(report))
        bad["rows"][0]["knee"]["p99_ms"] = bad["rows"][0]["slo_ms"] + 1.0
        with pytest.raises(ConfigurationError):
            validate_frontier_report(bad)

    def test_wrong_field_type(self, report):
        bad = json.loads(dumps_frontier_report(report))
        bad["rows"][0]["knee"]["bracketed"] = "yes"
        with pytest.raises(ConfigurationError):
            validate_frontier_report(bad)

    def test_not_an_object(self):
        with pytest.raises(ConfigurationError):
            validate_frontier_report([])


class TestCli:
    ARGS = ["oltp", "--frontier", "--frontier-systems", "mongo-as",
            "--frontier-workloads", "A", "--frontier-ops", "1200",
            "--frontier-window", "0.1", "--slo-ms", "20", "--seed", "11"]

    def test_frontier_writes_a_valid_report(self, tmp_path, capsys):
        path = tmp_path / "frontier.json"
        assert main(self.ARGS + ["--frontier-report", str(path)]) == 0
        data = json.loads(path.read_text())
        validate_frontier_report(data)
        out = capsys.readouterr().out
        assert "knee ops/s" in out
        assert str(path) in out

    def test_report_path_implies_frontier(self, tmp_path, capsys):
        path = tmp_path / "implied.json"
        args = [a for a in self.ARGS if a != "--frontier"]
        assert main(args + ["--frontier-report", str(path)]) == 0
        validate_frontier_report(json.loads(path.read_text()))

    def test_unreachable_slo_exits_2(self, capsys):
        assert main(self.ARGS + ["--slo-ms", "0.01"]) == 2
        assert "unreachable" in capsys.readouterr().err

    def test_unknown_system_exits_2(self, capsys):
        args = list(self.ARGS)
        args[args.index("mongo-as")] = "riak"
        assert main(args) == 2

    def test_write_concern_composes_with_frontier(self, capsys):
        # Journaled writes wait on the 100 ms group flush, so the smoke
        # SLO must come back up to the default (the last --slo-ms wins).
        assert main(self.ARGS + ["--write-concern", "safe",
                                 "--slo-ms", "250"]) == 0
        assert "concern safe" in capsys.readouterr().out

    def test_write_concern_still_gated_without_a_mode(self, capsys):
        assert main(["oltp", "--write-concern", "safe"]) == 2

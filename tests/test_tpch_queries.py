"""Tests that all 22 TPC-H queries execute and satisfy semantic invariants.

The brute-force checks recompute a few query answers with plain Python over
the raw rows, which validates the kernel plans independently of the operator
implementations they are built from.
"""

import pytest

from repro.relational import ExecutionContext
from repro.tpch.queries import QUERY_NUMBERS, run_query


@pytest.fixture(scope="module")
def answers(small_db):
    ctx = ExecutionContext(small_db)
    return {n: run_query(n, small_db, ctx) for n in QUERY_NUMBERS}, ctx


class TestAllQueriesRun:
    def test_every_query_returns_rows_object(self, answers):
        results, _ = answers
        assert set(results) == set(range(1, 23))
        for n, rows in results.items():
            assert isinstance(rows, list), f"Q{n}"

    def test_expected_nonempty(self, answers):
        results, _ = answers
        # These queries always produce rows on any non-trivial database.
        for n in (1, 3, 4, 5, 6, 10, 12, 13, 14, 16, 19, 22):
            assert results[n], f"Q{n} unexpectedly empty"

    def test_unknown_query_rejected(self, small_db):
        with pytest.raises(KeyError):
            run_query(23, small_db)


class TestQ1BruteForce:
    def test_matches_manual_aggregation(self, small_db, answers):
        results, _ = answers
        cutoff = "1998-09-02"
        groups = {}
        for r in small_db.table("lineitem").rows:
            if r["l_shipdate"] <= cutoff:
                key = (r["l_returnflag"], r["l_linestatus"])
                g = groups.setdefault(key, {"qty": 0.0, "n": 0, "disc_price": 0.0})
                g["qty"] += r["l_quantity"]
                g["n"] += 1
                g["disc_price"] += r["l_extendedprice"] * (1 - r["l_discount"])
        assert len(results[1]) == len(groups)
        for row in results[1]:
            g = groups[(row["l_returnflag"], row["l_linestatus"])]
            assert row["sum_qty"] == pytest.approx(g["qty"])
            assert row["count_order"] == g["n"]
            assert row["sum_disc_price"] == pytest.approx(g["disc_price"])

    def test_sorted_by_flags(self, answers):
        results, _ = answers
        keys = [(r["l_returnflag"], r["l_linestatus"]) for r in results[1]]
        assert keys == sorted(keys)


class TestQ6BruteForce:
    def test_matches_manual_sum(self, small_db, answers):
        results, _ = answers
        expected = sum(
            r["l_extendedprice"] * r["l_discount"]
            for r in small_db.table("lineitem").rows
            if "1994-01-01" <= r["l_shipdate"] < "1995-01-01"
            and 0.05 <= r["l_discount"] <= 0.07
            and r["l_quantity"] < 24
        )
        assert results[6][0]["revenue"] == pytest.approx(expected)


class TestQ4BruteForce:
    def test_matches_manual_exists(self, small_db, answers):
        results, _ = answers
        late_orders = {
            r["l_orderkey"]
            for r in small_db.table("lineitem").rows
            if r["l_commitdate"] < r["l_receiptdate"]
        }
        counts = {}
        for r in small_db.table("orders").rows:
            if "1993-07-01" <= r["o_orderdate"] < "1993-10-01" and r["o_orderkey"] in late_orders:
                counts[r["o_orderpriority"]] = counts.get(r["o_orderpriority"], 0) + 1
        assert {r["o_orderpriority"]: r["order_count"] for r in results[4]} == counts


class TestQ5Semantics:
    def test_only_asia_nations_and_positive_revenue(self, small_db, answers):
        results, _ = answers
        asia = {
            n["n_name"]
            for n in small_db.table("nation").rows
            if n["n_regionkey"] == 2  # ASIA
        }
        for row in results[5]:
            assert row["n_name"] in asia
            assert row["revenue"] > 0

    def test_sorted_by_revenue_desc(self, answers):
        results, _ = answers
        revenues = [r["revenue"] for r in results[5]]
        assert revenues == sorted(revenues, reverse=True)


class TestQ13Semantics:
    def test_customer_counts_total(self, small_db, answers):
        results, _ = answers
        assert sum(r["custdist"] for r in results[13]) == small_db.table("customer").row_count

    def test_zero_bucket_exists(self, small_db, answers):
        # A third of customers never order, so the 0-orders bucket is large.
        results, _ = answers
        zero = [r for r in results[13] if r["c_count"] == 0]
        assert zero and zero[0]["custdist"] >= small_db.table("customer").row_count // 4


class TestQ22Semantics:
    def test_country_codes_restricted(self, answers):
        results, _ = answers
        valid = {"13", "31", "23", "29", "30", "18", "17"}
        assert results[22]
        for row in results[22]:
            assert row["cntrycode"] in valid
            assert row["numcust"] > 0
            assert row["totacctbal"] > 0

    def test_customers_have_no_orders(self, small_db, answers):
        # Re-derive: every counted customer must be absent from orders.
        ordered_custs = {r["o_custkey"] for r in small_db.table("orders").rows}
        candidates = [
            c
            for c in small_db.table("customer").rows
            if c["c_phone"][:2] in {"13", "31", "23", "29", "30", "18", "17"}
        ]
        positives = [c["c_acctbal"] for c in candidates if c["c_acctbal"] > 0]
        avg = sum(positives) / len(positives)
        expected = [
            c
            for c in candidates
            if c["c_acctbal"] > avg and c["c_custkey"] not in ordered_custs
        ]
        results, _ = answers
        assert sum(r["numcust"] for r in results[22]) == len(expected)


class TestQ19BruteForce:
    def test_matches_manual(self, small_db, answers):
        parts = {p["p_partkey"]: p for p in small_db.table("part").rows}
        total = 0.0
        for l in small_db.table("lineitem").rows:
            if l["l_shipmode"] not in ("AIR", "AIR REG"):
                continue
            if l["l_shipinstruct"] != "DELIVER IN PERSON":
                continue
            p = parts[l["l_partkey"]]
            q = l["l_quantity"]
            ok = (
                (p["p_brand"] == "Brand#12"
                 and p["p_container"] in ("SM CASE", "SM BOX", "SM PACK", "SM PKG")
                 and 1 <= q <= 11 and 1 <= p["p_size"] <= 5)
                or (p["p_brand"] == "Brand#23"
                    and p["p_container"] in ("MED BAG", "MED BOX", "MED PKG", "MED PACK")
                    and 10 <= q <= 20 and 1 <= p["p_size"] <= 10)
                or (p["p_brand"] == "Brand#34"
                    and p["p_container"] in ("LG CASE", "LG BOX", "LG PACK", "LG PKG")
                    and 20 <= q <= 30 and 1 <= p["p_size"] <= 15)
            )
            if ok:
                total += l["l_extendedprice"] * (1 - l["l_discount"])
        results, _ = answers
        assert results[19][0]["revenue"] == pytest.approx(total) or (
            results[19][0]["revenue"] is None and total == 0.0
        )


class TestStatsRecorded:
    def test_tagged_intermediates_present(self, answers):
        _, ctx = answers
        for tag in ("q1.scan", "q5.join_lineitem", "q19.join", "q22.anti"):
            assert tag in ctx.stats, f"missing stage stat {tag}"
            assert ctx.stats[tag].rows >= 0

    def test_q5_funnel_shrinks(self, answers):
        _, ctx = answers
        # Joining filtered orders against lineitem must not exceed lineitem.
        assert ctx.stats["q5.join_lineitem"].rows <= ctx.stats["q5.lineitem"].rows
        assert ctx.stats["q5.local_only"].rows <= ctx.stats["q5.join_supplier"].rows

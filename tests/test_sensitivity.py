"""Tests for the hardware sensitivity sweeps."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import GB, MB
from repro.core.sensitivity import (
    SweepResult,
    render_sweep,
    sweep_dss_speedup,
    sweep_oltp_peaks,
)
from repro.tpch.volumes import calibrate


@pytest.fixture(scope="module")
def calibration():
    return calibrate(0.01, 42)


class TestDssSweeps:
    def test_network_bandwidth_helps_hive_more(self, calibration):
        """Hive's common joins shuffle everything: faster networks close
        part of the gap (one of the paper's implicit future predictions)."""
        result = sweep_dss_speedup(
            "network_bandwidth",
            [125 * MB, 1250 * MB],  # 1 GbE -> 10 GbE
            scale_factor=4000,
            calibration=calibration,
        )
        speedups = [p.metrics["speedup"] for p in result.points]
        assert speedups[1] < speedups[0]

    def test_memory_sweep_runs(self, calibration):
        result = sweep_dss_speedup(
            "memory_per_node", [32 * GB, 128 * GB], scale_factor=1000,
            calibration=calibration,
        )
        assert len(result.points) == 2
        assert all(p.metrics["speedup"] > 1 for p in result.points)

    def test_empty_values_rejected(self, calibration):
        with pytest.raises(ConfigurationError):
            sweep_dss_speedup("network_bandwidth", [], calibration=calibration)


class TestOltpSweeps:
    def test_memory_lifts_every_peak_on_c(self):
        result = sweep_oltp_peaks(
            "memory_per_node", [16 * GB, 32 * GB, 128 * GB], workload="C"
        )
        for name in ("sql-cs", "mongo-as"):
            series = [p.metrics[name] for p in result.points]
            assert series == sorted(series)

    def test_client_threads_bound_the_closed_loop(self):
        result = sweep_oltp_peaks("client_threads", [100, 800], workload="C")
        assert (
            result.points[0].metrics["sql-cs"] < result.points[1].metrics["sql-cs"]
        )

    def test_sql_advantage_reported(self):
        result = sweep_oltp_peaks("disk_seek", [0.008], workload="C")
        assert result.points[0].metrics["sql_advantage"] > 1.0


class TestRendering:
    def test_render_sweep(self):
        result = sweep_oltp_peaks("client_threads", [100, 800], workload="C")
        text = render_sweep(result, ["sql-cs", "sql_advantage"])
        assert "client_threads" in text
        assert "sql_advantage" in text
        assert "increasing" in text or "decreasing" in text or "mixed" in text

    def test_direction(self):
        r = SweepResult(knob="k")
        from repro.core.sensitivity import SweepPoint

        r.points = [SweepPoint(1, {"m": 1.0}), SweepPoint(2, {"m": 2.0})]
        assert r.direction("m") == "increasing"
        assert r.series("m") == [(1, 1.0), (2, 2.0)]

"""Tests for the workload F extension (read-modify-write)."""

import pytest

from repro.core.oltp import OltpStudy
from repro.docstore import MongoCsCluster
from repro.sqlstore import SqlCsCluster
from repro.ycsb import WORKLOADS, YcsbClient
from repro.ycsb.workloads import PAPER_WORKLOADS, WorkloadSpec


class TestSpec:
    def test_f_is_an_extension_not_a_paper_workload(self):
        assert "F" in WORKLOADS
        assert "F" not in PAPER_WORKLOADS
        assert WORKLOADS["F"].rmw == 0.5
        assert WORKLOADS["F"].write_fraction == 0.5

    def test_mix_validation_includes_rmw(self):
        WorkloadSpec("X", "ok", read=0.3, rmw=0.7)
        with pytest.raises(Exception):
            WorkloadSpec("X", "bad", read=0.3, rmw=0.3)

    def test_pick_operation_emits_rmw(self):
        from repro.common.rng import TpchRandom64

        rng = TpchRandom64(3)
        picks = [WORKLOADS["F"].pick_operation(rng) for _ in range(4000)]
        share = picks.count("rmw") / len(picks)
        assert 0.45 < share < 0.55


class TestFunctional:
    @pytest.mark.parametrize(
        "make_cluster",
        [lambda: MongoCsCluster(shard_count=4), lambda: SqlCsCluster(shard_count=4)],
        ids=["mongo-cs", "sql-cs"],
    )
    def test_rmw_is_read_your_writes(self, make_cluster):
        client = YcsbClient(make_cluster(), WORKLOADS["F"], record_count=300, seed=31)
        client.load()
        stats = client.run(500)
        assert stats.rmws > 150
        assert stats.verification_failures == []
        assert stats.total_ops == 500


class TestModel:
    def test_f_behaves_like_a_update_heavy_workload(self):
        """F's 50% RMW does a read AND a write per op: it should sit at or
        below workload A's throughput for every system."""
        study = OltpStudy()
        for system in ("sql-cs", "mongo-as", "mongo-cs"):
            f_peak = study.peak_throughput(system, "F")
            a_peak = study.peak_throughput(system, "A")
            assert f_peak <= a_peak * 1.1

    def test_rmw_latency_exceeds_both_parts(self):
        study = OltpStudy()
        point = study.evaluate("sql-cs", "F", 10_000)
        assert point.latency["rmw"] > point.latency["read"]

    def test_sql_still_wins_f(self):
        study = OltpStudy()
        assert study.peak_throughput("sql-cs", "F") > study.peak_throughput(
            "mongo-as", "F"
        )

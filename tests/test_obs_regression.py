"""Tracing must be off by default and change nothing when off.

The zero-overhead contract: every hook defaults to ``tracer=None`` /
``metrics=None``, and a run without collectors produces exactly the numbers
it produced before the obs layer existed.  The CLI tests double as the
acceptance check: exported Chrome traces must reconcile with the reported
simulated times.
"""

import json

import pytest


class TestDisabledByDefault:
    def test_environment_defaults_off(self):
        from repro.simcluster.events import Environment, Resource

        env = Environment()
        assert env.tracer is None and env.metrics is None
        assert env.sampler is None
        resource = Resource(env, name="named")
        assert resource._trace is False
        assert resource._sample is False

    def test_engines_default_off(self):
        import inspect

        from repro.core.oltp import OltpStudy
        from repro.docstore.mongod import Mongod
        from repro.hive.engine import HiveEngine
        from repro.pdw.engine import PdwEngine
        from repro.sqlstore.server import SqlServerNode
        from repro.ycsb.eventsim import simulate_closed_loop

        for func in (
            HiveEngine.run_query,
            PdwEngine.run_query,
            simulate_closed_loop,
            OltpStudy.event_sim_point,
            Mongod.__init__,
            SqlServerNode.__init__,
        ):
            params = inspect.signature(func).parameters
            assert params["tracer"].default is None, func
            assert params["metrics"].default is None, func
            if "sampler" in params:
                assert params["sampler"].default is None, func

    def test_stores_emit_nothing_without_collectors(self):
        from repro.docstore.mongod import Mongod
        from repro.sqlstore.server import SqlServerNode

        mongod = Mongod("m")
        mongod.insert("c", {"_id": "k"})
        assert mongod.tracer is None
        node = SqlServerNode(pool_pages=2)
        node.insert("k", {"f": "v"})
        assert node.tracer is None


class TestTracingOffChangesNothing:
    def test_hive_times_identical_with_and_without_tracer(self):
        from repro.core.dss import DssStudy
        from repro.obs import MetricsRegistry, Tracer

        study = DssStudy(fit=False)
        for number in (1, 5, 22):
            bare = study.hive.run_query(number, 250)
            traced = study.hive.run_query(
                number, 250, tracer=Tracer(), metrics=MetricsRegistry()
            )
            assert traced.total_time == bare.total_time
            assert [j.total_time for j in traced.jobs] == [
                j.total_time for j in bare.jobs
            ]

    def test_pdw_times_identical_with_and_without_tracer(self):
        from repro.core.dss import DssStudy
        from repro.obs import MetricsRegistry, Tracer

        study = DssStudy(fit=False)
        bare = study.pdw.run_query(5, 1000)
        traced = study.pdw.run_query(
            5, 1000, tracer=Tracer(), metrics=MetricsRegistry()
        )
        assert traced.total_time == bare.total_time
        assert [s.elapsed(1.0) for s in traced.steps] == [
            s.elapsed(1.0) for s in bare.steps
        ]

    def test_store_answers_identical_with_and_without_tracer(self):
        from repro.docstore.cluster import MongoAsCluster
        from repro.obs import MetricsRegistry, Tracer

        def drive(cluster):
            for i in range(80):
                cluster.insert(f"user{i:04d}", {"field0": f"v{i}"})
            cluster.run_balancer()
            return (
                [cluster.read(f"user{i:04d}") for i in (0, 41, 79)],
                cluster.scan("user0010", 5),
                cluster.config.migrations,
            )

        bare = drive(MongoAsCluster(shard_count=4, max_chunk_docs=8,
                                    balancer_threshold=2))
        traced = drive(MongoAsCluster(shard_count=4, max_chunk_docs=8,
                                      balancer_threshold=2,
                                      tracer=Tracer(), metrics=MetricsRegistry()))
        assert bare == traced


class TestCliExports:
    """Acceptance: DSS and OLTP runs export reconciling Chrome traces."""

    def test_dss_cli_trace_reconciles(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "dss-trace.json"
        metrics_path = tmp_path / "dss-metrics.json"
        rc = main([
            "dss", "--trace", str(trace_path), "--metrics", str(metrics_path),
            "--trace-query", "1", "--trace-sf", "250",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hive q1" in out

        doc = json.loads(trace_path.read_text())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        root = next(e for e in spans if e["name"] == "hive.q1")
        jobs = [e for e in spans if e["args"]["cat"] == "job"]
        # Job spans tile the root query span (all times in microseconds).
        assert sum(e["dur"] for e in jobs) == pytest.approx(root["dur"])
        # And the root span matches the CLI's reported simulated seconds.
        reported = float(out.split(":")[1].split("s simulated")[0])
        assert root["dur"] / 1e6 == pytest.approx(reported, abs=0.05)
        metrics = json.loads(metrics_path.read_text())
        assert metrics["hive.jobs"]["value"] >= 1

    def test_oltp_cli_trace_reconciles(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "oltp-trace.json"
        rc = main([
            "oltp", "--workload", "A", "--trace", str(trace_path),
            "--duration", "20", "--target", "20000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        measured = int(out.split("ops/s (scaled), ")[1].split(" measured")[0])

        doc = json.loads(trace_path.read_text())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        requests = [e for e in spans if e["args"]["cat"] == "request"]
        # Request spans ending after warm-up == measured completions.
        warmup_us = 10.0 * 1e6
        finished = [e for e in requests if e["ts"] + e["dur"] >= warmup_us]
        assert len(finished) == measured
        # Metrics ride along and agree.
        ops = doc["otherData"]["metrics"]["ycsb.measured_ops"]["value"]
        assert ops == measured
        # The scorecard itself runs untraced elsewhere in the suite
        # (test_scorecard.py); tracing-off leaving it untouched is exactly
        # what TestTracingOffChangesNothing pins down per engine.

"""Tests for the dbgen port: cardinalities, spec rules, and the sparse keys."""

import pytest

from repro.tpch.dbgen import (
    CURRENT_DATE,
    DbGen,
    demonstrate_random_overflow,
    partsupp_suppkey,
    retail_price,
)
from repro.tpch.schema import (
    orderkey_bucket,
    row_count,
    sparse_orderkey,
    table_bytes,
    database_bytes,
)


class TestSchemaMetadata:
    def test_row_counts_scale_linearly(self):
        assert row_count("customer", 1.0) == 150_000
        assert row_count("customer", 0.01) == 1500
        assert row_count("orders", 2.0) == 3_000_000
        assert row_count("nation", 1000.0) == 25
        assert row_count("region", 0.001) == 5

    def test_table_bytes_positive_and_linear(self):
        assert table_bytes("lineitem", 2.0) == pytest.approx(
            2.0 * table_bytes("lineitem", 1.0)
        )
        assert database_bytes(1.0) > table_bytes("lineitem", 1.0)

    def test_sparse_orderkey_pattern(self):
        # First 8 keys of every 32 are used: 1..8, then 33..40, ...
        keys = [sparse_orderkey(i) for i in range(1, 17)]
        assert keys == [1, 2, 3, 4, 5, 6, 7, 8, 33, 34, 35, 36, 37, 38, 39, 40]
        with pytest.raises(ValueError):
            sparse_orderkey(0)

    def test_sparse_keys_fill_exactly_128_of_512_buckets(self):
        # The root cause of Table 4: hash-bucketing sparse orderkeys into 512
        # buckets leaves only 128 non-empty.
        buckets = {orderkey_bucket(sparse_orderkey(i)) for i in range(1, 100_000)}
        assert len(buckets) == 128


class TestSpecFormulas:
    def test_retail_price_known_values(self):
        assert retail_price(1) == pytest.approx((90000 + 0 + 100) / 100)
        assert retail_price(1000) == pytest.approx((90000 + 100 + 0) / 100)

    def test_partsupp_suppkey_in_range_and_spread(self):
        suppliers = 100
        keys = {
            partsupp_suppkey(p, s, suppliers) for p in range(1, 500) for s in range(4)
        }
        assert all(1 <= k <= suppliers for k in keys)
        assert len(keys) == suppliers  # formula covers every supplier

    def test_part_has_four_distinct_suppliers(self):
        for partkey in (1, 57, 499, 2000):
            slots = {partsupp_suppkey(partkey, s, 1000) for s in range(4)}
            assert len(slots) == 4


class TestGeneratedData:
    def test_cardinalities(self, tiny_db):
        assert tiny_db.table("customer").row_count == 750
        assert tiny_db.table("orders").row_count == 7500
        assert tiny_db.table("part").row_count == 1000
        assert tiny_db.table("partsupp").row_count == 4000
        assert tiny_db.table("nation").row_count == 25
        assert tiny_db.table("region").row_count == 5
        lines = tiny_db.table("lineitem").row_count
        assert 7500 * 1 <= lines <= 7500 * 7
        # Average ~4 lines per order.
        assert 3.5 <= lines / 7500 <= 4.5

    def test_determinism(self):
        a = DbGen(0.002, seed=7).generate()
        b = DbGen(0.002, seed=7).generate()
        assert a.table("orders").rows[:50] == b.table("orders").rows[:50]
        c = DbGen(0.002, seed=8).generate()
        assert a.table("orders").rows[:50] != c.table("orders").rows[:50]

    def test_orderkeys_are_sparse(self, tiny_db):
        for row in tiny_db.table("orders").rows[:200]:
            assert 1 <= row["o_orderkey"] % 32 <= 8

    def test_custkeys_skip_multiples_of_three(self, tiny_db):
        assert all(r["o_custkey"] % 3 != 0 for r in tiny_db.table("orders").rows)

    def test_lineitem_foreign_keys_resolve(self, tiny_db):
        orderkeys = {r["o_orderkey"] for r in tiny_db.table("orders").rows}
        partkeys = {r["p_partkey"] for r in tiny_db.table("part").rows}
        suppkeys = {r["s_suppkey"] for r in tiny_db.table("supplier").rows}
        for row in tiny_db.table("lineitem").rows[:2000]:
            assert row["l_orderkey"] in orderkeys
            assert row["l_partkey"] in partkeys
            assert row["l_suppkey"] in suppkeys

    def test_lineitem_supplier_is_a_partsupp_supplier(self, tiny_db):
        ps = {(r["ps_partkey"], r["ps_suppkey"]) for r in tiny_db.table("partsupp").rows}
        for row in tiny_db.table("lineitem").rows[:2000]:
            assert (row["l_partkey"], row["l_suppkey"]) in ps

    def test_date_ordering_invariants(self, tiny_db):
        orders_by_key = {r["o_orderkey"]: r for r in tiny_db.table("orders").rows}
        for row in tiny_db.table("lineitem").rows[:2000]:
            order = orders_by_key[row["l_orderkey"]]
            assert row["l_shipdate"] > order["o_orderdate"]
            assert row["l_receiptdate"] > row["l_shipdate"]
            assert "1992-01-01" <= order["o_orderdate"] <= "1998-08-02"

    def test_returnflag_linestatus_rules(self, tiny_db):
        for row in tiny_db.table("lineitem").rows[:2000]:
            if row["l_receiptdate"] <= CURRENT_DATE:
                assert row["l_returnflag"] in ("R", "A")
            else:
                assert row["l_returnflag"] == "N"
            expected = "O" if row["l_shipdate"] > CURRENT_DATE else "F"
            assert row["l_linestatus"] == expected

    def test_orderstatus_consistent_with_lines(self, tiny_db):
        lines_by_order = {}
        for row in tiny_db.table("lineitem").rows:
            lines_by_order.setdefault(row["l_orderkey"], []).append(row["l_linestatus"])
        for row in tiny_db.table("orders").rows[:500]:
            statuses = lines_by_order[row["o_orderkey"]]
            if all(s == "F" for s in statuses):
                assert row["o_orderstatus"] == "F"
            elif all(s == "O" for s in statuses):
                assert row["o_orderstatus"] == "O"
            else:
                assert row["o_orderstatus"] == "P"

    def test_phone_country_code_matches_nation(self, tiny_db):
        for row in tiny_db.table("customer").rows[:200]:
            assert int(row["c_phone"][:2]) == row["c_nationkey"] + 10

    def test_selectivity_hooks_exist(self, tiny_db):
        parts = tiny_db.table("part").rows
        assert any("green" in r["p_name"] for r in parts)
        assert any(r["p_name"].startswith("forest") for r in parts)
        supp = tiny_db.table("supplier").rows
        assert any(
            "Customer" in r["s_comment"] and "Complaints" in r["s_comment"] for r in supp
        )
        orders = tiny_db.table("orders").rows
        needle = [r for r in orders if "special" in r["o_comment"] and "requests" in r["o_comment"]]
        assert 0 < len(needle) < len(orders) * 0.2

    def test_totalprice_matches_lineitems(self, tiny_db):
        lines_by_order = {}
        for row in tiny_db.table("lineitem").rows:
            lines_by_order.setdefault(row["l_orderkey"], []).append(row)
        for row in tiny_db.table("orders").rows[:100]:
            expected = sum(
                l["l_extendedprice"] * (1 + l["l_tax"]) * (1 - l["l_discount"])
                for l in lines_by_order[row["o_orderkey"]]
            )
            assert row["o_totalprice"] == pytest.approx(expected, abs=0.01)

    def test_invalid_scale_factor(self):
        with pytest.raises(ValueError):
            DbGen(0)


class TestOverflowDemonstration:
    def test_sf_16000_produces_negative_keys(self):
        keys = demonstrate_random_overflow(16_000)
        assert any(k < 0 for k in keys)

    def test_sf_4000_is_safe(self):
        keys = demonstrate_random_overflow(4_000)
        assert all(k >= 1 for k in keys)

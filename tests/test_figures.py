"""Tests for the ASCII figure rendering."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.figures import Series, figure_to_ascii, plot_bars, plot_xy
from repro.core.oltp import OltpStudy


class TestPlotXy:
    def test_basic_plot_contains_markers_and_legend(self):
        text = plot_xy(
            [
                Series.of("a", [(0, 1.0), (10, 2.0), (20, 8.0)]),
                Series.of("b", [(0, 2.0), (10, 4.0), (20, 16.0)]),
            ],
            title="demo",
        )
        assert "demo" in text
        assert "o=a" in text and "x=b" in text
        assert "o" in text and "x" in text
        assert "0 .. 20" in text

    def test_absent_points_skipped(self):
        text = plot_xy([Series.of("a", [(0, 1.0), None, (5, 2.0)])])
        assert "legend" in text

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            plot_xy([])
        with pytest.raises(ConfigurationError):
            plot_xy([Series.of("a", [None])])

    def test_monotone_series_rises_on_grid(self):
        text = plot_xy([Series.of("a", [(0, 0.0), (100, 10.0)])], height=10)
        rows = [l for l in text.splitlines() if l.startswith("|")]
        first_marker_row = next(i for i, r in enumerate(rows) if "o" in r)
        last_marker_row = max(i for i, r in enumerate(rows) if "o" in r)
        assert first_marker_row < last_marker_row  # higher y plots higher


class TestPlotBars:
    def test_grouped_bars(self):
        text = plot_bars(
            ["SF 250", "SF 1000"],
            {"hive": [22.0, 48.0], "pdw": [1.0, 4.0]},
            title="fig1",
        )
        assert "fig1" in text
        assert text.count("SF 250:") == 1
        assert "hive" in text and "pdw" in text
        # Bigger values draw longer bars.
        hive_bar = next(l for l in text.splitlines() if "hive" in l and "48" in l)
        pdw_bar = next(l for l in text.splitlines() if "pdw" in l and "4.0" in l)
        assert hive_bar.count("#") > pdw_bar.count("#")

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            plot_bars(["a"], {"s": [1.0, 2.0]})


class TestFigureToAscii:
    def test_workload_d_shows_crash_gaps(self):
        study = OltpStudy()
        figure = study.figure("D", [20_000, 40_000])
        text = figure_to_ascii(figure, "read", title="Workload D")
        assert "Workload D" in text
        assert "mongo-as" in text
        # All three systems appear in the legend.
        for name in ("sql-cs", "mongo-cs"):
            assert name in text

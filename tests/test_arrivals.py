"""Properties of the open-loop Poisson arrival generator."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.ycsb.arrivals import PoissonArrivals

rates = st.floats(min_value=0.01, max_value=1e6,
                  allow_nan=False, allow_infinity=False)
seeds = st.integers(min_value=0, max_value=2**63 - 1)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        a = PoissonArrivals(1000.0, seed=42).take(500)
        b = PoissonArrivals(1000.0, seed=42).take(500)
        assert a == b  # byte-identical floats, not approximately equal

    def test_different_seeds_differ(self):
        a = PoissonArrivals(1000.0, seed=42).take(50)
        b = PoissonArrivals(1000.0, seed=43).take(50)
        assert a != b

    def test_until_matches_take(self):
        """until() is the same schedule as repeated next_arrival()."""
        horizon = 0.25
        from_until = list(PoissonArrivals(800.0, seed=9).until(horizon))
        reference = [t for t in PoissonArrivals(800.0, seed=9).take(500)
                     if t < horizon]
        assert from_until == reference

    @given(rates, seeds)
    @settings(max_examples=60)
    def test_schedule_is_pure_function_of_rate_and_seed(self, rate, seed):
        assert (PoissonArrivals(rate, seed).take(40)
                == PoissonArrivals(rate, seed).take(40))


class TestMonotonicity:
    @given(rates, seeds)
    @settings(max_examples=60)
    def test_strictly_increasing(self, rate, seed):
        times = PoissonArrivals(rate, seed).take(200)
        assert all(b > a for a, b in zip(times, times[1:]))
        assert times[0] > 0.0

    def test_until_respects_horizon(self):
        for at in PoissonArrivals(500.0, seed=3).until(2.0):
            assert at < 2.0


class TestMeanRate:
    @pytest.mark.parametrize("rate", [10.0, 1_000.0, 50_000.0])
    def test_empirical_rate_within_tolerance(self, rate):
        """20k exponential gaps: the mean is within 3 stderr of 1/rate."""
        count = 20_000
        last = PoissonArrivals(rate, seed=1234).take(count)[-1]
        empirical = count / last
        # stderr of the mean gap is (1/rate)/sqrt(n); invert conservatively.
        tolerance = 3.0 / math.sqrt(count)
        assert abs(empirical - rate) / rate < tolerance

    def test_higher_rate_means_denser_schedule(self):
        slow = PoissonArrivals(100.0, seed=7).take(1000)[-1]
        fast = PoissonArrivals(10_000.0, seed=7).take(1000)[-1]
        assert fast < slow

    def test_gaps_are_finite(self):
        times = PoissonArrivals(0.5, seed=11).take(1000)
        assert all(math.isfinite(t) for t in times)


class TestValidation:
    @pytest.mark.parametrize("rate", [0.0, -1.0, -1e-9])
    def test_nonpositive_rate_rejected(self, rate):
        with pytest.raises(SimulationError):
            PoissonArrivals(rate)

    def test_negative_take_rejected(self):
        with pytest.raises(SimulationError):
            PoissonArrivals(1.0).take(-1)

"""The self-profiling layer: ``repro.obs.prof`` and its producers.

Covers the two instruments (stack sampler, exact subsystem counters), the
``repro-prof/1`` report shape, the flamegraph exporters, and the two
contracts the tentpole demands: zero-cost-off (a run without ``prof=``
constructs nothing from the profiling layer) and output byte-identity
(profiling must never perturb the simulation).
"""

import inspect
import json
import time

import pytest

from repro.common.errors import ConfigurationError
from repro.obs import (
    ProfiledRun,
    build_prof_report,
    dumps_prof_report,
    folded_stacks,
    host_meta,
    profile_summary,
    profiled_live,
    profiled_tracer,
    render_prof_report,
    speedscope_document,
    validate_prof_report,
    write_folded,
    write_prof_report,
    write_speedscope,
)


def _busy(seconds: float) -> int:
    """Spin the CPU so the sampler has something to catch."""
    total = 0
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


class TestCounters:
    def test_section_self_vs_total_nesting(self):
        ticks = iter([0.0, 1.0, 3.0, 10.0])
        prof = ProfiledRun(sample=False, clock=lambda: next(ticks))
        prof.enter("outer")       # t=0
        prof.enter("inner")       # t=1
        prof.exit()               # t=3: inner total=self=2
        prof.exit()               # t=10: outer total=10, self=10-2=8
        table = prof.subsystem_table()
        assert table["inner"] == {"calls": 1, "total_s": 2.0, "self_s": 2.0}
        assert table["outer"] == {"calls": 1, "total_s": 10.0, "self_s": 8.0}

    def test_section_context_manager(self):
        prof = ProfiledRun(sample=False)
        with prof.section("work"):
            pass
        assert prof.subsystem_table()["work"]["calls"] == 1

    def test_add_accumulates_flat_time(self):
        prof = ProfiledRun(sample=False)
        prof.add("io", 0.25, calls=3)
        prof.add("io", 0.75)
        assert prof.subsystem_table()["io"] == {
            "calls": 4, "total_s": 1.0, "self_s": 1.0}

    def test_throughput_accumulators(self):
        prof = ProfiledRun(sample=False)
        prof.count_events(100)
        prof.count_events(50)
        prof.note_ops(30)
        prof.note_virtual_time(60.0)
        prof.note_virtual_time(45.0)  # max-accumulate, not overwrite
        assert prof.events == 150
        assert prof.ops == 30
        assert prof.virtual_s == 60.0

    def test_double_start_raises(self):
        prof = ProfiledRun(sample=False).start()
        with pytest.raises(ConfigurationError):
            prof.start()
        prof.stop()

    def test_bad_interval_raises(self):
        with pytest.raises(ConfigurationError):
            ProfiledRun(sample_interval=0.0)


class TestSampler:
    def test_sampler_catches_the_hot_function(self):
        with ProfiledRun(sample_interval=0.001) as prof:
            _busy(0.15)
        assert prof.sample_count > 10
        hot = prof.hot_functions(top=5)
        assert hot, "expected at least one sampled stack"
        assert any(row["func"] == "_busy" for row in hot)
        top = hot[0]
        assert set(top) >= {"func", "file", "line", "self_samples",
                            "total_samples", "self_pct"}

    def test_sample_false_spawns_no_thread(self):
        prof = ProfiledRun(sample=False).start()
        assert prof._sampler is None
        prof.stop()
        assert prof.sample_count == 0


class TestProxies:
    class _Sink:
        def __init__(self):
            self.ops = []
            self.extra = "visible"

        def record_op(self, when, latency, ok=True):
            self.ops.append((when, latency, ok))

        def record_censored(self, when, bound):
            self.ops.append(("censored", when, bound))

        def finish(self, now):
            self.ops.append(("finish", now))

    class _Trace:
        def __init__(self):
            self.spans = []

        def add(self, span):
            self.spans.append(span)
            return span

        def link(self, a, b):
            self.spans.append((a, b))

    def test_factories_pass_none_through(self):
        prof = ProfiledRun(sample=False)
        assert profiled_live(None, prof) is None
        assert profiled_tracer(None, prof) is None

    def test_live_proxy_is_pure_passthrough(self):
        prof = ProfiledRun(sample=False)
        sink = self._Sink()
        wrapped = profiled_live(sink, prof)
        wrapped.record_op(1.0, 0.005)
        wrapped.record_censored(2.0, 0.1)
        wrapped.finish(3.0)
        assert sink.ops == [(1.0, 0.005, True), ("censored", 2.0, 0.1),
                            ("finish", 3.0)]
        assert wrapped.extra == "visible"  # attribute forwarding
        assert bool(wrapped)
        assert prof.subsystem_table()["digest.update"]["calls"] == 3

    def test_tracer_proxy_counts_and_forwards(self):
        prof = ProfiledRun(sample=False)
        tracer = self._Trace()
        wrapped = profiled_tracer(tracer, prof)
        for i in range(10):
            assert wrapped.add(i) == i
        wrapped.link("a", "b")
        assert len(tracer.spans) == 11
        assert prof.subsystem_table()["span.construct"]["calls"] == 11

    def test_leaf_time_credits_enclosing_section(self):
        """Flat-path proxy time must still reduce the parent's self time."""
        import repro.obs.prof as prof_mod

        prof = ProfiledRun(sample=False)
        tracer = self._Trace()
        wrapped = profiled_tracer(tracer, prof)
        prof.enter("eventsim.loop")
        # drive enough calls through the 1-in-N timing stride to record time
        for i in range(prof_mod._TIMING_STRIDE * 4):
            wrapped.add(i)
        prof.exit()
        table = prof.subsystem_table()
        loop = table["eventsim.loop"]
        span = table["span.construct"]
        assert span["calls"] == prof_mod._TIMING_STRIDE * 4
        assert span["total_s"] > 0.0
        assert loop["self_s"] < loop["total_s"]  # child time subtracted


class TestByteIdentity:
    def test_eventsim_outputs_identical_with_and_without_prof(self):
        from repro.obs import MetricsRegistry, Tracer
        from repro.ycsb.eventsim import SimStation, simulate_closed_loop

        def run(prof):
            stations = [SimStation("disk", 2, {"read": 0.002,
                                               "update": 0.004})]
            tracer, metrics = Tracer(), MetricsRegistry()
            result = simulate_closed_loop(
                stations, {"read": 0.5, "update": 0.5}, clients=4,
                duration=20.0, seed=7, tracer=tracer, metrics=metrics,
                prof=prof)
            spans = [(s.name, s.node, round(s.start, 9), round(s.end, 9))
                     for s in tracer.spans]
            return result, spans

        bare_result, bare_spans = run(None)
        prof = ProfiledRun(sample=False).start()
        prof_result, prof_spans = run(prof)
        prof.stop()
        assert prof_result == bare_result
        assert prof_spans == bare_spans
        assert prof.events > 0
        assert prof.subsystem_table()["eventsim.loop"]["calls"] == 1
        assert prof.subsystem_table()["span.construct"]["calls"] == len(
            bare_spans)

    def test_live_report_bytes_identical_with_and_without_prof(self):
        from repro.core.oltp import OltpStudy
        from repro.obs import dumps_live_report

        study = OltpStudy()
        kwargs = dict(operations=120, seed=5, slice_s=0.1)
        bare = study.live_report("mongo-as", **kwargs)
        prof = ProfiledRun(sample=False).start()
        profiled = study.live_report("mongo-as", prof=prof, **kwargs)
        prof.stop()
        assert dumps_live_report(profiled) == dumps_live_report(bare)
        table = prof.subsystem_table()
        assert table["routing"]["calls"] > 0
        assert table["digest.update"]["calls"] > 0

    def test_dss_trace_identical_with_and_without_prof(self):
        from repro.core.dss import DssStudy

        study = DssStudy()

        def spans(prof):
            _, tracer, _ = study.trace_query(1, 250.0, engine="hive",
                                             prof=prof)
            return [(s.name, s.node, round(s.start, 9), round(s.end, 9))
                    for s in tracer.spans]

        bare = spans(None)
        prof = ProfiledRun(sample=False).start()
        profiled = spans(prof)
        prof.stop()
        assert profiled == bare
        assert prof.subsystem_table()["hive.query"]["calls"] == 1


class TestZeroCostOff:
    def test_prof_defaults_are_none_everywhere(self):
        from repro.core.dss import DssStudy
        from repro.core.oltp import OltpStudy
        from repro.faults.availability import availability_row
        from repro.faults.runner import FaultedYcsbRun
        from repro.ycsb.eventsim import simulate_closed_loop, \
            simulate_open_loop

        for fn in (simulate_closed_loop, simulate_open_loop,
                   availability_row, FaultedYcsbRun.__init__,
                   OltpStudy.event_sim_point, OltpStudy.live_report,
                   DssStudy.trace_query):
            assert inspect.signature(fn).parameters["prof"].default is None

    def test_off_path_constructs_no_profiler_objects(self, monkeypatch):
        """A run without prof= must never touch the profiling layer."""
        import repro.obs.prof as prof_mod
        from repro.ycsb.eventsim import SimStation, simulate_closed_loop

        calls = {"n": 0}
        for cls in (prof_mod.ProfiledRun, prof_mod._ProfiledLive,
                    prof_mod._ProfiledTracer, prof_mod._StackSampler):
            original = cls.__init__

            def counting(self, *args, __orig=original, **kwargs):
                calls["n"] += 1
                return __orig(self, *args, **kwargs)

            monkeypatch.setattr(cls, "__init__", counting)
        stations = [SimStation("disk", 2, {"read": 0.001})]
        simulate_closed_loop(stations, {"read": 1.0}, clients=2,
                             duration=4.0, warmup=1.0, seed=3)
        assert calls["n"] == 0

    def test_unprofiled_run_method_is_the_plain_loop(self):
        """Environment.run without prof never calls _run_profiled."""
        from repro.simcluster.events import Environment

        env = Environment()
        assert env.prof is None
        called = {"n": 0}
        original = env._run_profiled

        def spy(until=None):
            called["n"] += 1
            return original(until)

        env._run_profiled = spy
        env.run(until=1.0)
        assert called["n"] == 0


class TestProfReport:
    def _profiled(self):
        prof = ProfiledRun(sample_interval=0.001).start()
        with prof.section("eventsim.loop"):
            _busy(0.05)
        prof.count_events(1000)
        prof.note_ops(100)
        prof.note_virtual_time(30.0)
        prof.stop()
        return prof

    def test_build_validate_render_roundtrip(self, tmp_path):
        prof = self._profiled()
        report = build_prof_report(prof, {"kind": "test"})
        validate_prof_report(report)
        assert report["schema"] == "repro-prof/1"
        assert report["scenario"] == {"kind": "test"}
        assert report["host"] == host_meta()
        assert report["throughput"]["events"] == 1000
        assert report["throughput"]["events_per_wall_s"] > 0
        assert report["throughput"]["ops"] == 100
        assert report["throughput"]["events_per_virtual_s"] == pytest.approx(
            1000 / 30.0, abs=0.05)  # report rounds rates to 3 decimals
        assert report["subsystems"]["eventsim.loop"]["calls"] == 1

        text = render_prof_report(report)
        assert "self-profile" in text
        assert "eventsim.loop" in text
        assert text.isascii()

        dumped = dumps_prof_report(report)
        assert dumped.endswith("\n")
        assert json.loads(dumped) == report
        path = tmp_path / "prof.json"
        write_prof_report(report, str(path))
        assert json.loads(path.read_text()) == report

    def test_build_requires_stopped_profiler(self):
        prof = ProfiledRun(sample=False).start()
        with pytest.raises(ConfigurationError):
            build_prof_report(prof, {"kind": "test"})
        prof.stop()

    def test_validate_rejects_wrong_schema(self):
        prof = self._profiled()
        report = build_prof_report(prof, {"kind": "test"})
        report["schema"] = "repro-prof/0"
        with pytest.raises(ConfigurationError):
            validate_prof_report(report)

    def test_profile_summary_shape(self):
        prof = self._profiled()
        summary = profile_summary(prof, top=5)
        assert set(summary) == {"samples", "interval_s", "top", "subsystems"}
        assert len(summary["top"]) <= 5
        assert "eventsim.loop" in summary["subsystems"]


class TestExporters:
    def _sampled(self):
        with ProfiledRun(sample_interval=0.001) as prof:
            _busy(0.08)
        return prof

    def test_folded_stacks_format(self, tmp_path):
        prof = self._sampled()
        folded = folded_stacks(prof)
        assert folded.endswith("\n")
        lines = folded.strip().splitlines()
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert int(count) > 0
            assert ";" in stack or stack  # root;...;leaf
        path = tmp_path / "stacks.folded"
        assert write_folded(prof, str(path)) == len(lines)
        assert path.read_text() == folded

    def test_speedscope_document(self, tmp_path):
        prof = self._sampled()
        doc = speedscope_document(prof)
        assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
        profile = doc["profiles"][0]
        assert profile["type"] == "sampled"
        assert len(profile["samples"]) == len(profile["weights"])
        assert profile["samples"], "expected sampled stacks"
        frame_count = len(doc["shared"]["frames"])
        for stack in profile["samples"]:
            assert all(0 <= index < frame_count for index in stack)
        path = tmp_path / "profile.speedscope.json"
        write_speedscope(prof, str(path))
        assert json.loads(path.read_text())["profiles"]

    def test_empty_profile_exports_cleanly(self):
        prof = ProfiledRun(sample=False)
        assert folded_stacks(prof) == ""
        doc = speedscope_document(prof)
        assert doc["profiles"][0]["samples"] == []
        text = render_prof_report(build_prof_report(prof, {"kind": "empty"}))
        assert "no samples" in text

"""Shared fixtures: a small generated TPC-H database reused across tests."""

import pytest

from repro.tpch.dbgen import DbGen


@pytest.fixture(scope="session")
def tiny_db():
    """SF 0.005 database (~750 customers, ~7.5k orders, ~30k lineitems)."""
    return DbGen(scale_factor=0.005, seed=42).generate()


@pytest.fixture(scope="session")
def small_db():
    """SF 0.01 database for the query-answer tests."""
    return DbGen(scale_factor=0.01, seed=42).generate()


@pytest.fixture(scope="session")
def causal_study():
    """Unfitted DSS study shared by the critical-path/what-if/decompose tests.

    ``fit=False`` skips the per-query weight fitting (the slow part of a
    fresh study); the causal layer only needs traced structure, not
    paper-calibrated absolute times.
    """
    from repro.core.dss import DssStudy

    return DssStudy(fit=False)

#!/usr/bin/env python3
"""Functional tour of the storage substrates, at human scale.

Everything the performance models are parameterized by is implemented for
real; this example drives those implementations directly:

* Mongo-AS: range-partitioned chunks, auto-split, balancer migration;
* Mongo-CS / SQL-CS: client-side hash sharding and broadcast scans;
* SQL Server node: 8 KB pages, buffer pool, WAL with crash recovery;
* the YCSB functional client verifying read-your-writes on all three.

Run: python examples/storage_engines_demo.py
"""

from repro.docstore import MongoAsCluster, MongoCsCluster
from repro.sqlstore import SqlCsCluster, SqlServerNode
from repro.sqlstore.wal import LogOp
from repro.ycsb import WORKLOADS, YcsbClient, make_key


def demo_auto_sharding() -> None:
    print("=== Mongo-AS: chunks, splits, and the balancer ===")
    cluster = MongoAsCluster(shard_count=4, max_chunk_docs=100, balancer_threshold=2)
    for i in range(2_000):
        cluster.insert(make_key(i), {"field0": f"v{i}"})
    counts = cluster.config.shard_chunk_counts(4)
    print(f"after ordered load: {len(cluster.config.chunks)} chunks, "
          f"per-shard counts {counts} (splits: {cluster.config.splits})")
    moved = cluster.run_balancer()
    print(f"balancer moved {moved} chunks "
          f"({cluster.config.migrated_docs} documents); "
          f"now {cluster.config.shard_chunk_counts(4)}")
    rows = cluster.scan(make_key(500), 5)
    print(f"scan from key 500 touches ~"
          f"{cluster.shards_touched_by_scan(make_key(500), 5)} shard(s): "
          f"{[r['_id'][-4:] for r in rows]}")


def demo_hash_sharding() -> None:
    print("\n=== Mongo-CS / SQL-CS: hash routing broadcasts scans ===")
    for name, cluster in (
        ("mongo-cs", MongoCsCluster(shard_count=4)),
        ("sql-cs", SqlCsCluster(shard_count=4)),
    ):
        for i in range(500):
            cluster.insert(make_key(i), {"field0": str(i)})
        touched = cluster.shards_touched_by_scan(make_key(100), 10)
        print(f"{name}: scan of 10 keys consults {touched}/4 shards "
              f"(vs 1 chunk for Mongo-AS)")


def demo_wal_recovery() -> None:
    print("\n=== SQL Server node: WAL crash recovery ===")
    node = SqlServerNode()
    node.insert("k1", {"f": "original"})
    node.update("k1", "f", "committed-change")
    # Simulate a crash with an in-flight uncommitted transaction.
    node.wal.append(999, LogOp.BEGIN)
    node.wal.append(999, LogOp.UPDATE, key="k1", before=b"x", after=b"lost-change")
    images = node.wal.replay_committed()
    survivors = {k for k in images}
    print(f"log: {node.wal.record_count} records, "
          f"flushed through LSN {node.wal.flushed_lsn}")
    print(f"redo pass recovers committed keys only: {sorted(survivors)} "
          f"(uncommitted tx 999's change is discarded)")
    print(f"buffer pool: {node.pool.hits} hits / {node.pool.misses} misses")


def demo_ycsb_functional() -> None:
    print("\n=== Functional YCSB on all three deployments ===")
    for name, cluster in (
        ("mongo-as", MongoAsCluster(shard_count=4, max_chunk_docs=200)),
        ("mongo-cs", MongoCsCluster(shard_count=4)),
        ("sql-cs", SqlCsCluster(shard_count=4)),
    ):
        client = YcsbClient(cluster, WORKLOADS["A"], record_count=500, seed=3)
        client.load()
        stats = client.run(1_000)
        ok = "OK" if not stats.verification_failures else "FAILED"
        print(f"{name:<9} {stats.total_ops} ops "
              f"({stats.reads} reads / {stats.updates} updates), "
              f"consistency: {ok}")


def demo_wire_protocol() -> None:
    from repro.docstore.wire import (
        WireServer,
        decode_message,
        encode_insert,
        encode_query,
        encode_update,
    )
    from repro.docstore import Mongod

    print("\n=== The MongoDB wire protocol, end to end ===")
    server = WireServer(Mongod("m0"))
    server.handle(encode_insert(1, "usertable", {"_id": "user42", "field0": "v1"}))
    server.handle(encode_update(2, "usertable", {"_id": "user42"},
                                {"$set": {"field0": "v2"}}))
    reply = server.handle(encode_query(3, "usertable", {"_id": "user42"}))
    header, payload = decode_message(reply)
    print(f"OP_QUERY -> OP_REPLY (responseTo={header.response_to}, "
          f"{len(reply)} bytes): {payload['documents'][0]['field0']!r}")


def demo_journal_durability() -> None:
    from repro.docstore import Mongod
    from repro.docstore.journal import JournaledMongod

    print("\n=== MongoDB's 100 ms journal window (why the paper ran without it) ===")
    node = JournaledMongod(Mongod("m0"))
    node.insert("c", {"_id": "acknowledged-write", "v": "x"})
    print("client got its safe-mode ack; crash 50 ms later...")
    node.advance(0.05)
    recovered = node.crash_and_recover()
    lost = recovered.find_one("c", "acknowledged-write") is None
    print(f"after recovery the write is {'LOST' if lost else 'present'} "
          f"(journal flushes every {node.journal.flush_interval * 1000:.0f} ms)")


def demo_mongostat() -> None:
    from repro.docstore.mongostat import format_mongostat, summarize

    print("\n=== mongostat over a zipfian workload-A run ===")
    cluster = MongoAsCluster(shard_count=4, max_chunk_docs=200,
                             balancer_threshold=2)
    client = YcsbClient(cluster, WORKLOADS["A"], record_count=600, seed=41)
    client.load()
    cluster.run_balancer()  # spread the ordered-load chunks first
    client.run(1500)
    print(format_mongostat(cluster.shards, top=4))
    summary = summarize(cluster.shards)
    print(f"hottest process: {summary.hottest_shard} "
          f"({100 * summary.hottest_share:.1f}% of all ops, "
          f"imbalance {summary.imbalance:.2f}x)")


def main() -> None:
    demo_auto_sharding()
    demo_hash_sharding()
    demo_wal_recovery()
    demo_wire_protocol()
    demo_journal_durability()
    demo_mongostat()
    demo_ycsb_functional()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario: the paper's closing question — "revisit ... in a few years".

The authors speculated that SQL and NoSQL systems would converge and that
hardware shifts would move the goalposts.  This script sweeps the testbed's
three scarcest resources through both studies and reports which of the
paper's conclusions are robust to 10x-better hardware and which were
artifacts of 2011 disks and 1 GbE.

Run: python examples/future_hardware.py
"""

from repro.common.units import GB, MB
from repro.core.sensitivity import render_sweep, sweep_dss_speedup, sweep_oltp_peaks
from repro.tpch.volumes import calibrate


def main() -> None:
    calibration = calibrate(0.01, 42)

    print("=== DSS: does faster networking save Hive? (SF 4000) ===")
    result = sweep_dss_speedup(
        "network_bandwidth",
        [125 * MB, 375 * MB, 1250 * MB],  # 1 / 3 / 10 GbE
        scale_factor=4000,
        calibration=calibration,
    )
    print(render_sweep(result, ["speedup", "hive_am", "pdw_am"]))
    print(
        "-> Hive's common joins are network-bound, so 10 GbE narrows the\n"
        "   gap — but PDW keeps a multiple: the task-startup and job\n"
        "   overheads are not network problems.\n"
    )

    print("=== DSS: bigger memory (SF 1000, PDW's buffer-pool cliff) ===")
    result = sweep_dss_speedup(
        "memory_per_node", [32 * GB, 64 * GB, 256 * GB],
        scale_factor=1000, calibration=calibration,
    )
    print(render_sweep(result, ["speedup", "pdw_am"]))
    print(
        "-> With 256 GB nodes the SF 1000 database is memory-resident for\n"
        "   PDW again: the speedup returns toward its SF 250 level.\n"
    )

    print("=== OLTP: flash-era disks (workload C) ===")
    result = sweep_oltp_peaks(
        "disk_seek", [0.008, 0.002, 0.0002], workload="C"
    )
    print(render_sweep(result, ["sql-cs", "mongo-as", "sql_advantage"]))
    print(
        "-> Cheap random I/O lifts every system, and shrinks (but does not\n"
        "   erase) SQL-CS's advantage: the remaining gap is CPU and cache\n"
        "   pollution, not seeks.\n"
    )

    print("=== OLTP: more memory (workload C) ===")
    result = sweep_oltp_peaks(
        "memory_per_node", [32 * GB, 64 * GB, 128 * GB], workload="C"
    )
    print(render_sweep(result, ["sql-cs", "mongo-as", "sql_advantage"]))
    print(
        "-> Once the working set is cached everywhere, the contest becomes\n"
        "   purely CPU-per-operation — the convergence the paper predicted."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario: sizing a decision-support migration (the paper's DSS question).

A team running nightly TPC-H-style reporting asks: if we move from a parallel
RDBMS appliance to Hive on the same 16 nodes, what happens to our batch
window?  This script reproduces the paper's full DSS study and then answers
two planning questions the paper's data supports:

* how much longer does the nightly 22-query batch take on Hive, per scale?
* at which data size does Hive's better *scaling* start to close the gap?

Run: python examples/warehouse_migration.py
"""

from repro.core.dss import DssStudy
from repro.core.report import (
    render_figure1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
)


def main() -> None:
    print("Calibrating engine models against real query executions...")
    study = DssStudy()
    table = study.table3()

    print()
    print(render_table2(study))
    print()
    print(render_table3(table))
    print()
    print(render_figure1(study, table))
    print()
    print(render_table4(study))
    print()
    print(render_table5(study))

    # -- planning answers -------------------------------------------------------
    print("\n=== Batch-window planning ===")
    for i, sf in enumerate(table.scale_factors):
        hive_total = sum(r.hive[i] for r in table.rows if r.hive[i] is not None)
        pdw_total = sum(r.pdw[i] for r in table.rows if r.hive[i] is not None)
        print(
            f"  SF {sf:>6}: PDW batch {pdw_total / 3600:6.1f} h -> "
            f"Hive batch {hive_total / 3600:6.1f} h "
            f"({hive_total / pdw_total:5.1f}x longer)"
        )

    speedups = [
        am_h / am_p
        for am_h, am_p in zip(table.am9("hive"), table.am9("pdw"))
    ]
    print("\n  Mean speedup by scale:", ", ".join(f"{s:.1f}x" for s in speedups))
    print(
        "  The gap shrinks as data grows (Hive's fixed overheads amortize),\n"
        "  but even at 16 TB the parallel RDBMS holds a large lead — the\n"
        "  paper's headline conclusion."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: the reproduction in five minutes.

1. Generate a small TPC-H database with the dbgen port and run a real query.
2. Cost the same query on the Hive and PDW engine models at paper scale.
3. Ask the YCSB model for one latency/throughput point per system.

Run: python examples/quickstart.py
"""

from repro.relational import ExecutionContext
from repro.tpch.dbgen import DbGen
from repro.tpch.queries import run_query
from repro.core.dss import DssStudy
from repro.core.oltp import OltpStudy


def main() -> None:
    # --- 1. real data, real answers -------------------------------------------
    print("Generating TPC-H at SF 0.01 (~86k rows)...")
    db = DbGen(scale_factor=0.01, seed=42).generate()
    ctx = ExecutionContext(db)
    answer = run_query(5, db, ctx)  # Q5: local supplier volume in ASIA
    print("Q5 answer (revenue by nation):")
    for row in answer:
        print(f"  {row['n_name']:<12} {row['revenue']:>16,.2f}")

    # --- 2. the same query, costed at paper scale ---------------------------------
    study = DssStudy()  # calibrates volumes and fits per-query CPU weights
    print("\nQ5 modelled on the paper's 16-node cluster:")
    for sf in (250, 1000, 4000, 16000):
        h = study.hive_time(5, sf)
        p = study.pdw_time(5, sf)
        print(f"  SF {sf:>6}: Hive {h:>8,.0f} s   PDW {p:>7,.0f} s   "
              f"speedup {h / p:5.1f}x   (paper: 16-22x)")

    # --- 3. one YCSB point per system ---------------------------------------------
    print("\nYCSB workload C (100% reads) at a 40k ops/s target:")
    oltp = OltpStudy()
    for system in ("sql-cs", "mongo-as", "mongo-cs"):
        point = oltp.evaluate(system, "C", 40_000)
        print(f"  {system:<9} achieved {point.achieved:>9,.0f} ops/s, "
              f"read latency {point.latency_ms('read'):5.2f} ms")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario: choosing a data-serving tier (the paper's "modern OLTP" question).

A Web 2.0 team must pick a store for a 640M-record, 1 KB-record serving tier
on 8 servers: MongoDB with auto-sharding, MongoDB with client-side sharding,
or client-side-sharded SQL Server.  This script reproduces the paper's five
YCSB figures and then answers the provisioning question the YCSB methodology
is designed for: how many ops/s can each system sustain at a given latency
SLA?

Run: python examples/dataserving_sizing.py
"""

from repro.core.oltp import SYSTEMS, OltpStudy
from repro.core.report import render_oltp_load_times, render_ycsb_figure

FIGURES = [
    ("C", [5_000, 10_000, 20_000, 40_000, 80_000, 160_000], ["read"]),
    ("B", [5_000, 10_000, 20_000, 40_000, 80_000, 160_000], ["read", "update"]),
    ("A", [1_000, 2_000, 5_000, 10_000, 20_000, 40_000], ["read", "update"]),
    ("D", [20_000, 40_000, 80_000, 160_000, 320_000, 640_000], ["read", "insert"]),
    ("E", [250, 500, 1_000, 2_000, 4_000, 8_000], ["scan", "insert"]),
]


def max_throughput_under_sla(study, system, workload, op_class, sla_ms):
    """Largest achieved throughput whose op latency stays under the SLA."""
    best = 0.0
    for target in (1, 2, 5, 10, 20, 40, 80, 160, 320):
        try:
            point = study.evaluate(system, workload, target * 1000.0)
        except Exception:
            break
        if point.latency_ms(op_class) <= sla_ms:
            best = max(best, point.achieved)
    return best


def main() -> None:
    study = OltpStudy()

    for workload, targets, op_classes in FIGURES:
        print(render_ycsb_figure(study, workload, targets, op_classes))
        print()

    print(render_oltp_load_times(study))

    print("\n=== Provisioning: max ops/s under a 10 ms read SLA ===")
    for workload in ("A", "B", "C", "D"):
        row = []
        for system in SYSTEMS:
            capacity = max_throughput_under_sla(study, system, workload, "read", 10.0)
            row.append(f"{system}={capacity / 1000:7.1f}k")
        print(f"  workload {workload}: " + "  ".join(row))

    print(
        "\nThe paper's conclusion holds across the board: the relational\n"
        "system sustains more load at lower latency on A-D even without\n"
        "MongoDB paying for durability; range-sharded MongoDB wins only\n"
        "the short-scan workload E — and pays for it with multi-second\n"
        "append latencies at its ordered-key hot spot."
    )


if __name__ == "__main__":
    main()

"""Table 5: time breakdown of Q22's four Hive sub-queries.

Paper: sub1 85-263 s, sub2 38-63 s, sub3 109-2234 s, sub4 654-813 s.  The
signature shapes: sub-query 4 is nearly flat across scale factors because it
is dominated by the constant ~400 s map-join failure before the backup
common join; sub-query 3 scales like Q1 (sparse orders buckets); sub-query 1
jumps at 16 TB when each customer bucket becomes 3 HDFS blocks.
"""

from repro.core import paper_data
from repro.core.report import render_table5


def test_table5_q22_breakdown(benchmark, dss_study, record):
    breakdown = benchmark(dss_study.table5)
    record("table5_q22_breakdown", render_table5(dss_study))

    # Sub-query 4: map-join failure dominates -> nearly flat.
    assert breakdown[4][-1] / breakdown[4][0] < 1.6
    assert abs(breakdown[4][0] - 654) / 654 < 0.35

    # Sub-query 3 grows the fastest of the four.
    growth = {s: breakdown[s][-1] / breakdown[s][0] for s in (1, 2, 3, 4)}
    assert growth[3] == max(growth.values())

    # The map join fails at every scale factor (the paper's observation).
    for sf in paper_data.SCALE_FACTORS:
        job = dss_study.hive.run_query(22, sf).job("join.q22.anti")
        assert job.failed_mapjoin

    # Sub-query 1's task count: 200 bucket files, 600 tasks at 16 TB.
    assert dss_study.hive.run_query(22, 250).job("mat.q22.candidates").map_tasks == 200
    assert dss_study.hive.run_query(22, 16000).job("mat.q22.candidates").map_tasks == 600

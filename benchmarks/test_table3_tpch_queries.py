"""Table 3: the 22 TPC-H queries on Hive and PDW at four scale factors.

Shape criteria (paper Section 3.3.4): PDW beats Hive on every query at every
scale factor; the mean speedup shrinks from ~34x at SF 250 toward ~9x at
16 TB; Hive's growth factors between adjacent SFs are smaller than PDW's at
the small end (its fixed overheads amortize); Hive's Q9 does not complete at
16 TB (out of disk space).
"""

from repro.core import paper_data
from repro.core.report import render_table3


def test_table3_tpch_queries(benchmark, dss_study, record):
    table = benchmark(dss_study.table3)
    record("table3_tpch_queries", render_table3(table))

    # PDW wins everywhere.
    for row in table.rows:
        for hive, pdw in zip(row.hive, row.pdw):
            if hive is not None:
                assert hive > pdw, f"Q{row.query}"

    # Q9 DNF at 16 TB only.
    assert table.row(9).hive[3] is None
    assert all(r.hive[3] is not None for r in table.rows if r.query != 9)

    # Speedup declines with scale.
    am9 = [h / p for h, p in zip(table.am9("hive"), table.am9("pdw"))]
    assert am9[0] > am9[-1]
    assert am9[0] > 15
    assert 4 < am9[-1] < 20

    # Fitted column within 2x of the paper for every query.
    for row in table.rows:
        target = paper_data.hive_time(row.query, 250)
        assert 0.5 < row.hive[0] / target < 2.0

"""Figure 6: workload E (95% short scans / 5% appends).

Paper: Mongo-AS achieves the highest throughput (6,337 ops/s) and lowest
scan latency (30.4 ms) because range partitioning routes each scan to a
single chunk, while the hash-sharded systems broadcast every scan.  The
price: Mongo-AS appends all land in the last chunk and cost 1,832 ms versus
SQL-CS's 2 ms.
"""

import pytest

from repro.core.report import render_ycsb_figure

TARGETS = [250, 500, 1_000, 2_000, 4_000, 8_000]


def test_fig6_workload_e(benchmark, oltp_study, record):
    figure = benchmark(oltp_study.figure, "E", TARGETS)
    record(
        "fig6_workload_e",
        render_ycsb_figure(oltp_study, "E", TARGETS, ["scan", "insert"]),
    )

    peaks = {name: max(p.achieved for p in pts) for name, pts in figure.items()}
    # Mongo-AS wins throughput (paper: 6,337 ops/s).
    assert peaks["mongo-as"] > peaks["sql-cs"]
    assert peaks["mongo-as"] > peaks["mongo-cs"]
    assert peaks["mongo-as"] == pytest.approx(6_337, rel=0.35)

    # Mongo-AS has the lowest scan latency at shared targets.
    for i in range(4):
        assert (
            figure["mongo-as"][i].latency["scan"]
            < figure["sql-cs"][i].latency["scan"]
        )
        assert (
            figure["mongo-as"][i].latency["scan"]
            < figure["mongo-cs"][i].latency["scan"]
        )

    # The append asymmetry: Mongo-AS >> SQL-CS near their peaks.
    as_append = figure["mongo-as"][-1].latency_ms("insert")
    sql_append = figure["sql-cs"][2].latency_ms("insert")
    assert as_append > 10 * sql_append

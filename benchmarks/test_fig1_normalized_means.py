"""Figure 1: normalized arithmetic/geometric means of TPC-H times.

Paper (normalized to PDW at SF 250): Hive AM 22/48/148/500, PDW AM
1/4/17/72; Hive GM 26/52/144/474, PDW GM 1/5/18/72.
"""

from repro.core.report import render_figure1

PAPER = {
    "hive_am": (22, 48, 148, 500),
    "pdw_am": (1, 4, 17, 72),
    "hive_gm": (26, 52, 144, 474),
    "pdw_gm": (1, 5, 18, 72),
}


def test_fig1_normalized_means(benchmark, dss_study, record):
    table = dss_study.table3()
    fig = benchmark(dss_study.figure1, table)
    record("fig1_normalized_means", render_figure1(dss_study, table))

    assert fig["pdw_am"][0] == 1.0
    for series, values in fig.items():
        # Monotone growth with scale factor, as in the paper.
        assert values == sorted(values)
        # Within ~2x of the published normalized points.
        for model, paper in zip(values, PAPER[series]):
            assert 0.4 < model / paper < 2.2, (series, model, paper)

"""Table 4: total map-phase time for Query 1's lineitem scan.

Paper: 148 / 339 / 1258 / 5220 seconds.  The interesting shape is the growth
pattern: sub-4x from 250 GB to 1 TB (the 384 empty bucket files' task
startup amortizes), then converging to ~4x per 4x of data.
"""

from repro.core import paper_data
from repro.core.report import render_table4


def test_table4_q1_map_phase(benchmark, dss_study, record):
    times = benchmark(dss_study.table4)
    record("table4_q1_map_phase", render_table4(dss_study))

    assert abs(times[0] - paper_data.Q1_MAP_PHASE_SEC[0]) / 148 < 0.35
    growth = [b / a for a, b in zip(times, times[1:])]
    assert growth[0] < 4.0  # empty-file overhead amortizes
    assert abs(growth[-1] - 4.0) < 0.6  # asymptotically linear

    # The mechanism: 512 bucket files, only 128 non-empty.
    job = dss_study.hive.run_query(1, 250).job("agg.q1.agg")
    assert job.map_tasks >= 512

"""Section 3.4.2: the YCSB load phase (640M records into 8 server nodes).

Paper: Mongo-AS with pre-split chunks 114 min; SQL-CS 146 min (every insert
is its own transaction, no bulk path); Mongo-CS 45 min.
"""

import pytest

from repro.core.report import render_oltp_load_times


def test_oltp_load_times(benchmark, oltp_study, record):
    times = benchmark(
        lambda: {
            name: oltp_study.load_time_minutes(name)
            for name in ("mongo-as", "sql-cs", "mongo-cs")
        }
    )
    record("oltp_load_times", render_oltp_load_times(oltp_study))

    assert times["mongo-cs"] < times["mongo-as"] < times["sql-cs"]
    assert times["mongo-as"] == pytest.approx(114, rel=0.2)
    assert times["sql-cs"] == pytest.approx(146, rel=0.2)
    assert times["mongo-cs"] == pytest.approx(45, rel=0.2)

    # The pre-split optimization the paper applied (§3.4.2).
    without = oltp_study.load_time_minutes("mongo-as", pre_split=False)
    assert without > times["mongo-as"] * 1.3

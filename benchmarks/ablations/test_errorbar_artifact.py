"""Error bars for Figure 2, from the discrete-event simulator.

The paper plots standard errors across sixty 10-second measurement windows;
the analytic MVA model is deterministic, so this bench re-measures the
workload C points with the event-driven closed loop (at 2% scale, same
utilizations) and records the window-to-window standard errors plus tail
percentiles.
"""

TARGETS = [10_000, 40_000, 160_000]


def test_fig2_error_bars(benchmark, oltp_study, record):
    def measure():
        rows = []
        for target in TARGETS:
            point, sim = oltp_study.event_sim_point(
                "sql-cs", "C", target, scale=0.02, duration=60.0
            )
            rows.append((target, point, sim))
        return rows

    rows = benchmark.pedantic(measure, iterations=1, rounds=1)
    lines = ["Workload C, SQL-CS: event-sim error bars (2% scale)",
             f"{'target':>10} {'X (MVA)':>12} {'X (sim)':>12} "
             f"{'read ms':>9} {'± se':>7} {'p95':>7} {'p99':>7}"]
    for target, point, sim in rows:
        lines.append(
            f"{target:>10,} {point.achieved:>12,.0f} {sim.throughput / 0.02:>12,.0f} "
            f"{sim.latency['read'] * 1000:>9.2f} "
            f"{sim.latency_stderr['read'] * 1000:>7.3f} "
            f"{sim.latency_p95['read'] * 1000:>7.2f} "
            f"{sim.latency_p99['read'] * 1000:>7.2f}"
        )
    record("fig2_error_bars", "\n".join(lines))

    for target, point, sim in rows:
        # Exponential service times cost ~20% of the deterministic capacity
        # at full saturation; below saturation the two agree tightly.
        assert sim.throughput / 0.02 > 0.7 * point.achieved
        assert sim.latency_stderr["read"] < sim.latency["read"]
        assert sim.latency_p99["read"] >= sim.latency_p95["read"]

"""Cross-validation: the analytic MVA figures vs the discrete-event simulator.

The YCSB figures are analytic (fast, deterministic).  This bench re-measures
representative points with the event-driven closed loop at 2% scale —
preserving utilizations — and checks throughput agreement, while also
producing the window-to-window standard errors that the paper's figures
plot and the analytic model cannot.
"""

import pytest


def test_mva_vs_eventsim_workload_c(benchmark, oltp_study, record):
    point, sim = benchmark(
        lambda: oltp_study.event_sim_point("sql-cs", "C", 40_000, scale=0.02,
                                           duration=60.0)
    )
    scaled_x = sim.throughput / 0.02
    record(
        "validation_mva_vs_eventsim",
        "Workload C, SQL-CS at 40k target (event sim at 2% scale)\n"
        f"  MVA:        X={point.achieved:,.0f} ops/s, "
        f"read={point.latency_ms('read'):.2f} ms\n"
        f"  event sim:  X={scaled_x:,.0f} ops/s, "
        f"read={sim.latency['read'] * 1000:.2f} ms "
        f"(std err {sim.latency_stderr['read'] * 1000:.3f} ms over windows)",
    )
    assert scaled_x == pytest.approx(point.achieved, rel=0.1)
    # Exponential service inflates latency vs the deterministic analytic
    # mean, but it must stay in the same regime.
    assert sim.latency["read"] * 1000 < 4 * max(point.latency_ms("read"), 0.5)


def test_mva_vs_eventsim_update_heavy(benchmark, oltp_study, record):
    point, sim = benchmark(
        lambda: oltp_study.event_sim_point("mongo-as", "A", 10_000, scale=0.02,
                                           duration=60.0)
    )
    scaled_x = sim.throughput / 0.02
    record(
        "validation_mva_vs_eventsim_a",
        "Workload A, Mongo-AS at 10k target (event sim at 2% scale)\n"
        f"  MVA:        X={point.achieved:,.0f} ops/s\n"
        f"  event sim:  X={scaled_x:,.0f} ops/s "
        f"(throughput std err {sim.throughput_stderr / 0.02:,.0f})",
    )
    assert scaled_x == pytest.approx(point.achieved, rel=0.15)

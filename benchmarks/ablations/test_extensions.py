"""Extension benches: the paper's future work and disabled features, costed.

* Indexed Hive — the comparison the authors deferred to future work.
* MongoDB with journaling on — the durability the evaluation ran without.
* MongoDB replica sets — the failover mechanism the evaluation skipped.
* TPC-H refresh functions — skipped because Hive 0.7 lacked INSERT INTO.
"""

from dataclasses import replace

import pytest

from repro.core.oltp import SYSTEMS, OltpStudy
from repro.hive.engine import HiveEngine
from repro.pdw.engine import PdwEngine
from repro.tpch.dbgen import DbGen
from repro.tpch.refresh import HIVE_07, HIVE_08, RefreshFunctions, UnsupportedRefresh
from repro.tpch.volumes import calibrate


@pytest.fixture(scope="module")
def calibration():
    return calibrate(0.01, 42)


def test_extension_indexed_hive(benchmark, calibration, record):
    stock = HiveEngine(calibration)
    indexed = HiveEngine(calibration, index_support=True)
    pdw = PdwEngine(calibration)
    rows = []
    for q in (1, 5, 6, 19):
        s = stock.query_time(q, 4000)
        i = indexed.query_time(q, 4000)
        p = pdw.query_time(q, 4000)
        rows.append(f"  Q{q:<3} stock Hive {s:8,.0f} s | indexed Hive {i:8,.0f} s "
                    f"| PDW {p:8,.0f} s")
    benchmark(indexed.query_time, 6, 4000)
    record(
        "extension_indexed_hive",
        "Future work (paper §3.3.2): Hive with an index-aware optimizer, SF 4000\n"
        + "\n".join(rows)
        + "\n  Indexes flip the pure-selection Q6 but cannot rescue the"
          " join-heavy queries — movement and task overheads dominate.",
    )
    assert indexed.query_time(6, 4000) < stock.query_time(6, 4000)


def test_extension_mongo_durability(benchmark, record):
    stock = OltpStudy()
    journaled_systems = dict(SYSTEMS)
    journaled_systems["mongo-as"] = replace(SYSTEMS["mongo-as"], journaled=True)
    journaled = OltpStudy(systems=journaled_systems)
    p0 = stock.evaluate("mongo-as", "A", 10_000)
    p1 = benchmark(journaled.evaluate, "mongo-as", "A", 10_000)
    record(
        "extension_mongo_durability",
        "MongoDB with journaling acks (the durability the paper disabled)\n"
        f"  workload A @ 10k, update latency: "
        f"{p0.latency_ms('update'):.1f} ms -> {p1.latency_ms('update'):.1f} ms\n"
        "  The paper's point sharpens: MongoDB lost to SQL-CS even while\n"
        "  skipping this cost.",
    )
    assert p1.latency_ms("update") > p0.latency_ms("update") + 30


def test_extension_mongo_replica_sets(benchmark, record):
    stock = OltpStudy()
    replicated_systems = dict(SYSTEMS)
    replicated_systems["mongo-as"] = replace(SYSTEMS["mongo-as"], replicated=True)
    replicated = OltpStudy(systems=replicated_systems)
    base_peak = stock.peak_throughput("mongo-as", "A")
    rep_peak = benchmark(replicated.peak_throughput, "mongo-as", "A")
    record(
        "extension_mongo_replica_sets",
        "MongoDB with a replica set (the failover the paper skipped)\n"
        f"  workload A peak: {base_peak:,.0f} -> {rep_peak:,.0f} ops/s\n"
        "  Secondaries consume cache and write capacity on the same nodes.",
    )
    assert rep_peak < base_peak


def test_extension_refresh_functions(benchmark, record):
    gen = DbGen(scale_factor=0.002, seed=5)
    db = gen.generate()
    rf = RefreshFunctions(db, gen)
    result = benchmark.pedantic(rf.rf1, args=(), kwargs={}, iterations=1, rounds=1)
    hive07_ok = True
    try:
        HIVE_07.check("rf1")
    except UnsupportedRefresh:
        hive07_ok = False
    record(
        "extension_refresh_functions",
        "TPC-H refresh functions (skipped by the paper: Hive 0.7 lacked INSERT INTO)\n"
        f"  RF1 inserted {result.orders} orders / {result.lineitems} lineitems "
        "against the kernel database\n"
        f"  Hive 0.7 can run RF1: {hive07_ok}; Hive 0.8: True; PDW: True",
    )
    assert not hive07_ok
    HIVE_08.check("rf1")


def test_extension_hive_exec_parallel(benchmark, calibration, record):
    """hive.exec.parallel (post-0.7): Q22's independent sub-queries overlap."""
    from repro.hive.engine import HiveEngine
    from repro.mapreduce.dag import Q22_DEPENDENCIES, dag_from_hive_result

    engine = HiveEngine(calibration)
    result = engine.run_query(22, 4000)
    dag = dag_from_hive_result(result, Q22_DEPENDENCIES)
    serial = dag.schedule_serial().makespan
    parallel = benchmark(lambda: dag.schedule_parallel().makespan)
    record(
        "extension_hive_exec_parallel",
        "Q22 at SF 4000 with hive.exec.parallel (unavailable in Hive 0.7)\n"
        f"  serial DAG (paper's Hive): {serial:,.0f} s\n"
        f"  parallel DAG:              {parallel:,.0f} s\n"
        f"  critical path lower bound: {dag.critical_path():,.0f} s",
    )
    assert parallel < serial


def test_extension_workload_f(benchmark, oltp_study, record):
    """YCSB workload F (read-modify-write) — in the standard, not the paper."""
    peaks = benchmark(
        lambda: {
            name: oltp_study.peak_throughput(name, "F")
            for name in ("sql-cs", "mongo-as", "mongo-cs")
        }
    )
    point = oltp_study.evaluate("sql-cs", "F", 20_000)
    record(
        "extension_workload_f",
        "YCSB workload F (50% reads / 50% read-modify-writes)\n"
        + "\n".join(f"  {n:>9} peak {p:,.0f} ops/s" for n, p in peaks.items())
        + f"\n  SQL-CS rmw latency @20k: {point.latency_ms('rmw'):.2f} ms"
        + "\n  An RMW pays both a read and a write: every system lands at or"
        + "\n  below its workload-A level, and the SQL advantage persists.",
    )
    assert peaks["sql-cs"] > peaks["mongo-as"]
    assert peaks["sql-cs"] <= oltp_study.peak_throughput("sql-cs", "A") * 1.1

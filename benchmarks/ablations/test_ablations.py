"""Ablations of the design choices DESIGN.md calls out.

Each ablation flips exactly one mechanism the paper blames (or credits) for
a result, and asserts the effect goes the right way — evidence that the
reproduction's explanation matches the paper's, not just its numbers.
"""

from dataclasses import replace

import pytest

from repro.core.oltp import SYSTEMS, OltpParams, OltpStudy
from repro.core.dss import DssStudy
from repro.hive.engine import HiveEngine
from repro.mapreduce import HadoopParams, JobTracker, MapPhase
from repro.pdw.engine import PdwEngine, PdwParams
from repro.simcluster import paper_testbed
from repro.tpch.plans import QuerySpec, spec_for
from repro.tpch.volumes import calibrate
from repro.common.units import GB, KB, MB


@pytest.fixture(scope="module")
def calibration():
    return calibrate(0.01, 42)


def test_ablation_mongo_read_granularity(benchmark, record):
    """32 KB vs 8 KB reads per miss: the workload C gap driver (§3.4.3)."""
    stock = OltpStudy()
    narrow_systems = dict(SYSTEMS)
    narrow_systems["mongo-as"] = replace(
        SYSTEMS["mongo-as"], read_io_bytes=8 * KB, cache_efficiency=1.0
    )
    narrow = OltpStudy(systems=narrow_systems)
    peak_32k = stock.peak_throughput("mongo-as", "C")
    peak_8k = benchmark(narrow.peak_throughput, "mongo-as", "C")
    record(
        "ablation_mongo_read_granularity",
        "Mongo-AS workload C peak throughput\n"
        f"  32 KB reads (stock): {peak_32k:,.0f} ops/s\n"
        f"  8 KB reads (ablated): {peak_8k:,.0f} ops/s",
    )
    assert peak_8k > 1.2 * peak_32k  # wasted bandwidth + cache pollution


def test_ablation_global_lock_vs_document_locks(benchmark, record):
    """Removing the per-process global write lock lifts workload A."""
    stock = OltpStudy()
    unlocked_systems = dict(SYSTEMS)
    unlocked_systems["mongo-as"] = replace(SYSTEMS["mongo-as"], uses_global_lock=False)
    unlocked = OltpStudy(systems=unlocked_systems)
    with_lock = stock.evaluate("mongo-as", "A", 40_000)
    without = benchmark(unlocked.evaluate, "mongo-as", "A", 40_000)
    record(
        "ablation_global_lock",
        "Mongo-AS workload A at 40k target\n"
        f"  global lock (1.8.x): update={with_lock.latency_ms('update'):.1f} ms, "
        f"achieved={with_lock.achieved:,.0f}\n"
        f"  no global lock:      update={without.latency_ms('update'):.1f} ms, "
        f"achieved={without.achieved:,.0f}",
    )
    assert without.latency["update"] <= with_lock.latency["update"]
    assert without.achieved >= with_lock.achieved


def test_ablation_range_vs_hash_sharding_for_scans(benchmark, record):
    """Giving Mongo-CS range sharding closes the workload E gap (§3.4.3)."""
    stock = OltpStudy()
    ranged_systems = dict(SYSTEMS)
    ranged_systems["mongo-cs"] = replace(SYSTEMS["mongo-cs"], range_sharded=True)
    ranged = OltpStudy(systems=ranged_systems)
    hash_peak = stock.peak_throughput("mongo-cs", "E")
    range_peak = benchmark(ranged.peak_throughput, "mongo-cs", "E")
    record(
        "ablation_range_vs_hash_scans",
        "Mongo-CS workload E peak throughput\n"
        f"  hash sharding (stock): {hash_peak:,.0f} ops/s\n"
        f"  range sharding:        {range_peak:,.0f} ops/s",
    )
    assert range_peak > 1.3 * hash_peak


def test_ablation_q5_join_order(benchmark, calibration, record):
    """Hive's as-written Q5 order vs the cost-based order PDW chose."""
    engine = HiveEngine(calibration)
    spec = spec_for(5)
    as_written = engine.query_time(5, 4000)
    reordered_spec = QuerySpec(
        number=5,
        scans=spec.scans,
        joins=spec.joins,
        hive_joins=None,  # fall back to the kernel/PDW order
        aggs=spec.aggs,
    )
    reordered = benchmark(
        lambda: engine.run_query(5, 4000, spec=reordered_spec).total_time
    )
    record(
        "ablation_q5_join_order",
        "Hive Q5 at SF 4000\n"
        f"  as-written order (supplier side first): {as_written:,.0f} s\n"
        f"  cost-based order (customer side first): {reordered:,.0f} s",
    )
    assert reordered < as_written


def test_ablation_q19_replicate_vs_shuffle(benchmark, calibration, record):
    """PDW Q19: replicating the filtered part beats shuffling lineitem."""
    stock = PdwEngine(calibration)
    no_replicate = PdwEngine(calibration, params=PdwParams(allow_replicate=False))
    with_rep = stock.query_time(19, 16000)
    without = benchmark(no_replicate.query_time, 19, 16000)
    record(
        "ablation_q19_replicate",
        "PDW Q19 at SF 16000\n"
        f"  replicate filtered part (stock): {with_rep:,.0f} s\n"
        f"  shuffle-only optimizer:          {without:,.0f} s",
    )
    assert without > with_rep
    assert stock.run_query(19, 16000).step("join.q19.join").kind == "replicate_right"
    assert no_replicate.run_query(19, 16000).step("join.q19.join").kind == "shuffle_join"


def test_ablation_one_reduce_round(benchmark, record):
    """Section 3.2.1: reducers = total slots lets the reduce finish in one
    round; 4x the reducers pays 4 rounds of startup."""
    tracker = JobTracker(paper_testbed())
    phase = MapPhase([64 * MB] * 64, tracker.params)
    one_round = tracker.run_map_reduce("j", phase, 40 * GB, 40 * GB, reducers=128)
    four_rounds = benchmark(
        tracker.run_map_reduce, "j", phase, 40 * GB, 40 * GB, 512
    )
    record(
        "ablation_one_reduce_round",
        "Common join, 40 GB shuffle\n"
        f"  128 reducers (= slots, one round): reduce {one_round.reduce_time:,.0f} s\n"
        f"  512 reducers (four rounds):        reduce {four_rounds.reduce_time:,.0f} s",
    )
    assert four_rounds.reduce_time > one_round.reduce_time


def test_ablation_pre_split_chunks(benchmark, oltp_study, record):
    """Section 3.4.2: pre-splitting chunks avoids mid-load migrations."""
    with_split = oltp_study.load_time_minutes("mongo-as", pre_split=True)
    without = benchmark(oltp_study.load_time_minutes, "mongo-as", False)
    record(
        "ablation_pre_split_chunks",
        "Mongo-AS 640M-record load\n"
        f"  pre-split chunks (paper's method): {with_split:,.0f} min\n"
        f"  balancer-driven:                   {without:,.0f} min",
    )
    assert without > 1.3 * with_split


def test_ablation_rcfile_vs_text(benchmark, calibration, record):
    """RCFile's compression cuts the bytes Q1/Q6 must scan vs text storage."""
    rcfile = HiveEngine(calibration)
    text = HiveEngine(calibration)
    text.metastore.compression_ratios = {}
    text.metastore.default_compression = 1.0  # plain text files
    rc_time = rcfile.query_time(6, 4000)
    text_time = benchmark(text.query_time, 6, 4000)
    record(
        "ablation_rcfile_vs_text",
        "Hive Q6 at SF 4000\n"
        f"  RCFile (GZIP, measured ratios): {rc_time:,.0f} s\n"
        f"  plain text storage:             {text_time:,.0f} s",
    )
    assert text_time > 1.5 * rc_time


def test_ablation_client_thread_count(benchmark, record):
    """The closed loop: peak throughput is bounded by threads / latency."""
    stock = OltpStudy()
    few = OltpStudy(OltpParams(client_threads=100))
    stock_peak = stock.peak_throughput("sql-cs", "C")
    few_peak = benchmark(few.peak_throughput, "sql-cs", "C")
    record(
        "ablation_client_threads",
        "SQL-CS workload C peak\n"
        f"  800 client threads (paper): {stock_peak:,.0f} ops/s\n"
        f"  100 client threads:         {few_peak:,.0f} ops/s",
    )
    assert few_peak < stock_peak

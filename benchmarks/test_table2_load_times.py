"""Table 2: data loading times for Hive and PDW at four scale factors.

Paper: Hive 38/125/519/2512 minutes; PDW 79/313/1180/4712 minutes.
Shape: PDW loads ~2x slower at every SF (the landing node serializes
dwloader); both are roughly linear in the scale factor.
"""

from repro.core import paper_data
from repro.core.report import render_table2


def test_table2_load_times(benchmark, dss_study, record):
    table = benchmark(dss_study.table2)
    record("table2_load_times", render_table2(dss_study))

    for i in range(len(paper_data.SCALE_FACTORS)):
        assert table["pdw"][i] > 1.5 * table["hive"][i]
    # Linearity: 4x the data within ~25% of 4x the time.
    for name in ("hive", "pdw"):
        for a, b in zip(table[name], table[name][1:]):
            assert 3.0 < b / a < 5.0
    # Anchor to the measured 250 GB points.
    assert abs(table["hive"][0] - 38) / 38 < 0.2
    assert abs(table["pdw"][0] - 79) / 79 < 0.2

"""The reproduction scorecard as a benchmark artifact.

Regenerates the paper-vs-model accuracy summary (the numbers quoted in
EXPERIMENTS.md) and the qualitative-claims checklist in one run.
"""

from repro.core.scorecard import build_scorecard


def test_scorecard(benchmark, dss_study, oltp_study, record):
    card = benchmark(build_scorecard, dss_study, oltp_study)
    record("scorecard", card.render())
    assert card.all_claims_hold
    assert card.accuracy["hive"].geomean < 1.45
    assert card.accuracy["pdw"].geomean < 1.85

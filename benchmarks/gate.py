#!/usr/bin/env python3
"""Benchmark regression gate: compare trajectory files, fail on regressions.

Loads every ``BENCH_*.json`` in the repository root (the trajectory files
``benchmarks/trajectory.py`` writes, one per PR), validates each against the
``repro-bench/1`` schema, and compares a candidate file against the best
baseline number for every benchmark it shares with an earlier file.  A
benchmark regresses when

    candidate_seconds > tolerance * min(baseline_seconds)

with the comparison restricted to files of the same ``smoke`` flavour — a
CI-sized smoke run is not comparable to a full run.  Benchmarks that are new
in the candidate, or that timed out on either side, are reported but never
fail the gate.  Exit 1 on any regression or invalid file, 0 otherwise.

Usage::

    python benchmarks/gate.py                       # newest BENCH_*.json
    python benchmarks/gate.py --candidate BENCH_smoke.json
    python benchmarks/gate.py --tolerance 1.5
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from trajectory import validate  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_TOLERANCE = 2.0

#: Absolute ceilings on benchmark *metadata*: ``(benchmark, meta key)`` ->
#: max allowed value.  Wall-clock comparisons only catch slowdowns loosely
#: (machines differ, hence the 2x tolerance); a ratio measured within one
#: process is machine-neutral, so it gets a hard ceiling instead.
META_THRESHOLDS = {
    # Attaching a UtilizationSampler to a traced query must stay cheap
    # relative to the bare run (was 19.6x before batched accumulation).
    ("utilization_sampling_overhead", "overhead_ratio"): 8.0,
    # Virtual-clock time for the throttled scale-up to finish rebalancing
    # (deterministic per seed, machine-neutral).  The full scenario commits
    # in ~0.4 virtual seconds; past this ceiling the migration engine is
    # stalling foreground traffic far longer than the scenario intends.
    ("reshard_time_to_rebalance", "rebalance_virtual_s"): 1.5,
}


def load_trajectories(root: Path) -> dict:
    """``{path: doc}`` for every BENCH_*.json under ``root`` (sorted by PR)."""
    out = {}
    for path in sorted(root.glob("BENCH_*.json"),
                       key=lambda p: (len(p.name), p.name)):
        out[path] = json.loads(path.read_text())
    return out


def compare(candidate: dict, baselines: list, tolerance: float) -> list:
    """Per-benchmark verdicts: ``(name, status, detail)`` tuples.

    ``status`` is one of ``ok``, ``regression``, ``new``, ``timed_out``.
    """
    comparable = [doc for doc in baselines
                  if doc.get("smoke") == candidate.get("smoke")]
    verdicts = []
    for name in sorted(candidate.get("benchmarks", {})):
        entry = candidate["benchmarks"][name]
        if entry.get("timed_out"):
            verdicts.append((name, "timed_out", "candidate section timed out"))
            continue
        seconds = entry.get("seconds")
        best = None
        for doc in comparable:
            base = doc.get("benchmarks", {}).get(name)
            if base is None or base.get("timed_out"):
                continue
            base_seconds = base.get("seconds")
            if isinstance(base_seconds, (int, float)):
                best = base_seconds if best is None else min(best, base_seconds)
        if best is None:
            verdicts.append((name, "new", f"{seconds:.4f} s (no baseline)"))
            continue
        ratio = seconds / best if best else float("inf")
        detail = (f"{seconds:.4f} s vs best baseline {best:.4f} s "
                  f"({ratio:.2f}x, tolerance {tolerance:g}x)")
        status = "regression" if ratio > tolerance else "ok"
        verdicts.append((name, status, detail))
    for (bench, key), limit in sorted(META_THRESHOLDS.items()):
        entry = candidate.get("benchmarks", {}).get(bench)
        if not entry or entry.get("timed_out"):
            continue
        value = entry.get("meta", {}).get(key)
        if not isinstance(value, (int, float)):
            continue  # older files legitimately lack the meta key
        status = "regression" if value > limit else "ok"
        verdicts.append((f"{bench}.{key}", status,
                         f"{value:g} vs ceiling {limit:g}"))
    return verdicts


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--candidate", metavar="PATH",
                        help="trajectory file to gate (default: the "
                             "highest-numbered BENCH_*.json in the repo root)")
    parser.add_argument("--root", default=str(REPO_ROOT),
                        help="directory holding the BENCH_*.json baselines")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed slowdown factor vs the best baseline "
                             f"(default {DEFAULT_TOLERANCE:g})")
    args = parser.parse_args(argv)
    if args.tolerance <= 0:
        print("error: --tolerance must be > 0", file=sys.stderr)
        return 2

    root = Path(args.root)
    try:
        trajectories = load_trajectories(root)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot load trajectories: {exc}", file=sys.stderr)
        return 1

    candidate_path = Path(args.candidate) if args.candidate else None
    if candidate_path is not None and candidate_path not in trajectories:
        try:
            trajectories[candidate_path] = json.loads(
                candidate_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {candidate_path}: {exc}",
                  file=sys.stderr)
            return 1

    invalid = False
    for path, doc in trajectories.items():
        # Earlier PRs' files had a legitimately shorter benchmark list, so
        # only the current PR's file must carry the full required set.
        required = () if doc.get("pr", -1) < max(
            d.get("pr", -1) for d in trajectories.values()) else None
        problems = (validate(doc) if required is None
                    else validate(doc, required=required))
        for problem in problems:
            print(f"INVALID {path.name}: {problem}", file=sys.stderr)
        invalid = invalid or bool(problems)

    if candidate_path is None:
        committed = [p for p in trajectories if p.parent == root]
        if not committed:
            print("no BENCH_*.json trajectory files found; nothing to gate")
            return 1 if invalid else 0
        candidate_path = max(
            committed, key=lambda p: trajectories[p].get("pr", -1))
    candidate = trajectories[candidate_path]
    baselines = [doc for path, doc in trajectories.items()
                 if path != candidate_path
                 and doc.get("pr", -1) <= candidate.get("pr", -1)]

    print(f"gating {candidate_path.name} (pr={candidate.get('pr')}, "
          f"smoke={candidate.get('smoke')}) against "
          f"{len(baselines)} baseline file(s)")
    verdicts = compare(candidate, baselines, args.tolerance)
    regressed = False
    for name, status, detail in verdicts:
        marker = {"ok": "ok ", "new": "new", "timed_out": "t/o",
                  "regression": "REG"}[status]
        print(f"  [{marker}] {name:<32} {detail}")
        regressed = regressed or status == "regression"

    if regressed:
        print("REGRESSION: candidate exceeds tolerance vs baseline",
              file=sys.stderr)
    return 1 if (regressed or invalid) else 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Benchmark regression gate: compare trajectory files, fail on regressions.

Loads every ``BENCH_*.json`` in the repository root (the trajectory files
``benchmarks/trajectory.py`` writes, one per PR), validates each against the
``repro-bench/1`` schema, and compares a candidate file against the best
baseline number for every benchmark it shares with an earlier file.  A
benchmark regresses when

    candidate_seconds > tolerance * min(baseline_seconds)

with the comparison restricted to files of the same ``smoke`` flavour — a
CI-sized smoke run is not comparable to a full run.  Benchmarks that are new
in the candidate, or that timed out on either side, are reported but never
fail the gate.  When both sides carry a ``host`` fingerprint and the
fingerprints differ, a would-be regression is annotated ``cross-host``
instead of failing — wall clocks from different machines are not
comparable (files from before the fingerprint was recorded are treated as
same-host, keeping the old strictness).  On a real tolerance failure the
gate renders a ``repro-compare/1`` attribution (via ``repro.obs.compare``)
so the CI log says *which subsystem* regressed, not just that something
got slower.  Exit 1 on any regression or invalid file, 0 otherwise.

Usage::

    python benchmarks/gate.py                       # newest BENCH_*.json
    python benchmarks/gate.py --candidate BENCH_smoke.json
    python benchmarks/gate.py --tolerance 1.5
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from trajectory import validate  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_TOLERANCE = 2.0

#: Absolute ceilings on benchmark *metadata*: ``(benchmark, meta key)`` ->
#: max allowed value.  Wall-clock comparisons only catch slowdowns loosely
#: (machines differ, hence the 2x tolerance); a ratio measured within one
#: process is machine-neutral, so it gets a hard ceiling instead.
META_THRESHOLDS = {
    # Attaching a UtilizationSampler to a traced query must stay cheap
    # relative to the bare run (was 19.6x before batched accumulation).
    ("utilization_sampling_overhead", "overhead_ratio"): 8.0,
    # Virtual-clock time for the throttled scale-up to finish rebalancing
    # (deterministic per seed, machine-neutral).  The full scenario commits
    # in ~0.4 virtual seconds; past this ceiling the migration engine is
    # stalling foreground traffic far longer than the scenario intends.
    ("reshard_time_to_rebalance", "rebalance_virtual_s"): 1.5,
    # Virtual-clock time for the protected arm of the metastable-failure
    # demo to sustain >=90% of pre-spike goodput after the trigger clears
    # (deterministic per seed, machine-neutral).  The shipped policy
    # recovers instantly; past this ceiling the protections are letting
    # the retry storm linger.
    ("overload_recovery_time", "recovery_virtual_s"): 15.0,
}


def load_trajectories(root: Path) -> dict:
    """``{path: doc}`` for every BENCH_*.json under ``root`` (sorted by PR)."""
    out = {}
    for path in sorted(root.glob("BENCH_*.json"),
                       key=lambda p: (len(p.name), p.name)):
        out[path] = json.loads(path.read_text())
    return out


def best_baselines(candidate: dict, baselines: list) -> dict:
    """``{benchmark: (best entry, owning doc)}`` among same-flavour files."""
    comparable = [doc for doc in baselines
                  if doc.get("smoke") == candidate.get("smoke")]
    best = {}
    for name in candidate.get("benchmarks", {}):
        for doc in comparable:
            base = doc.get("benchmarks", {}).get(name)
            if base is None or base.get("timed_out"):
                continue
            seconds = base.get("seconds")
            if not isinstance(seconds, (int, float)):
                continue
            if name not in best or seconds < best[name][0]["seconds"]:
                best[name] = (base, doc)
    return best


def compare(candidate: dict, baselines: list, tolerance: float) -> list:
    """Per-benchmark verdicts: ``(name, status, detail)`` tuples.

    ``status`` is one of ``ok``, ``regression``, ``cross-host``, ``new``,
    ``timed_out``.
    """
    best_by_name = best_baselines(candidate, baselines)
    verdicts = []
    for name in sorted(candidate.get("benchmarks", {})):
        entry = candidate["benchmarks"][name]
        if entry.get("timed_out"):
            verdicts.append((name, "timed_out", "candidate section timed out"))
            continue
        seconds = entry.get("seconds")
        if name not in best_by_name:
            verdicts.append((name, "new", f"{seconds:.4f} s (no baseline)"))
            continue
        base_entry, base_doc = best_by_name[name]
        best = base_entry["seconds"]
        ratio = seconds / best if best else float("inf")
        detail = (f"{seconds:.4f} s vs best baseline {best:.4f} s "
                  f"({ratio:.2f}x, tolerance {tolerance:g}x)")
        status = "regression" if ratio > tolerance else "ok"
        if status == "regression":
            cand_host = candidate.get("host")
            base_host = base_doc.get("host")
            if cand_host and base_host and cand_host != base_host:
                # Both sides are fingerprinted and the machines differ:
                # annotate instead of failing (wall clocks don't transfer).
                status = "cross-host"
                detail += " [hosts differ: annotated, not gated]"
        verdicts.append((name, status, detail))
    for (bench, key), limit in sorted(META_THRESHOLDS.items()):
        entry = candidate.get("benchmarks", {}).get(bench)
        if not entry or entry.get("timed_out"):
            continue
        value = entry.get("meta", {}).get(key)
        if not isinstance(value, (int, float)):
            continue  # older files legitimately lack the meta key
        status = "regression" if value > limit else "ok"
        verdicts.append((f"{bench}.{key}", status,
                         f"{value:g} vs ceiling {limit:g}"))
    return verdicts


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--candidate", metavar="PATH",
                        help="trajectory file to gate (default: the "
                             "highest-numbered BENCH_*.json in the repo root)")
    parser.add_argument("--root", default=str(REPO_ROOT),
                        help="directory holding the BENCH_*.json baselines")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed slowdown factor vs the best baseline "
                             f"(default {DEFAULT_TOLERANCE:g})")
    args = parser.parse_args(argv)
    if args.tolerance <= 0:
        print("error: --tolerance must be > 0", file=sys.stderr)
        return 2

    root = Path(args.root)
    try:
        trajectories = load_trajectories(root)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot load trajectories: {exc}", file=sys.stderr)
        return 1

    candidate_path = Path(args.candidate) if args.candidate else None
    if candidate_path is not None and candidate_path not in trajectories:
        try:
            trajectories[candidate_path] = json.loads(
                candidate_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {candidate_path}: {exc}",
                  file=sys.stderr)
            return 1

    invalid = False
    for path, doc in trajectories.items():
        # Earlier PRs' files had a legitimately shorter benchmark list, so
        # only the current PR's file must carry the full required set.
        required = () if doc.get("pr", -1) < max(
            d.get("pr", -1) for d in trajectories.values()) else None
        problems = (validate(doc) if required is None
                    else validate(doc, required=required))
        for problem in problems:
            print(f"INVALID {path.name}: {problem}", file=sys.stderr)
        invalid = invalid or bool(problems)

    if candidate_path is None:
        committed = [p for p in trajectories if p.parent == root]
        if not committed:
            print("no BENCH_*.json trajectory files found; nothing to gate")
            return 1 if invalid else 0
        candidate_path = max(
            committed, key=lambda p: trajectories[p].get("pr", -1))
    candidate = trajectories[candidate_path]
    baselines = [doc for path, doc in trajectories.items()
                 if path != candidate_path
                 and doc.get("pr", -1) <= candidate.get("pr", -1)]

    print(f"gating {candidate_path.name} (pr={candidate.get('pr')}, "
          f"smoke={candidate.get('smoke')}) against "
          f"{len(baselines)} baseline file(s)")
    verdicts = compare(candidate, baselines, args.tolerance)
    regressed = False
    regressed_names = []
    for name, status, detail in verdicts:
        marker = {"ok": "ok ", "new": "new", "timed_out": "t/o",
                  "cross-host": "X-H", "regression": "REG"}[status]
        print(f"  [{marker}] {name:<32} {detail}")
        if status == "regression":
            regressed = True
            # META_THRESHOLDS verdicts are named "bench.key"; only real
            # benchmark entries can be attributed by the compare layer.
            if name in candidate.get("benchmarks", {}):
                regressed_names.append(name)

    if regressed:
        print("REGRESSION: candidate exceeds tolerance vs baseline",
              file=sys.stderr)
        _print_attribution(candidate, baselines, regressed_names)
    return 1 if (regressed or invalid) else 0


def _print_attribution(candidate: dict, baselines: list,
                       names: list) -> None:
    """Render a ``repro-compare/1`` diff for the regressed benchmarks.

    Best-effort: the gate's verdict is already decided, so any failure in
    the attribution path is reported but never changes the exit code.
    """
    if not names:
        return
    try:
        from repro.obs.compare import compare_runs, render_compare_report

        best = best_baselines(candidate, baselines)
        merged = {
            "schema": candidate.get("schema"),
            "pr": min((doc.get("pr", -1) for _, doc in best.values()),
                      default=-1),
            "smoke": candidate.get("smoke"),
            "python": candidate.get("python"),
            "benchmarks": {name: entry for name, (entry, _) in best.items()},
        }
        hosts = {id(doc): doc.get("host") for _, doc in best.values()}
        host_values = [h for h in hosts.values() if h]
        if len(set(map(str, host_values))) == 1:
            merged["host"] = host_values[0]
        report = compare_runs(merged, candidate, a_label="best-baseline",
                              b_label="candidate", names=names)
        print("attribution (repro-compare/1):", file=sys.stderr)
        for line in render_compare_report(report).splitlines():
            print(f"  {line}", file=sys.stderr)
    except Exception as exc:  # pragma: no cover - diagnostic path only
        print(f"(compare attribution unavailable: {exc})", file=sys.stderr)


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 2: workload C (100% reads), read latency vs throughput.

Paper: SQL-CS peaks at 125,457 ops/s (6.4 ms); Mongo-AS at 68,533 (11.8 ms);
Mongo-CS at 60,907 (13.2 ms).  SQL-CS has the lowest latency at every
target; the Mongo systems never reach the 80k target.
"""

import pytest

from repro.core.report import render_ycsb_figure

TARGETS = [5_000, 10_000, 20_000, 40_000, 80_000, 160_000]


def test_fig2_workload_c(benchmark, oltp_study, record):
    figure = benchmark(oltp_study.figure, "C", TARGETS)
    record("fig2_workload_c", render_ycsb_figure(oltp_study, "C", TARGETS, ["read"]))

    peaks = {name: max(p.achieved for p in pts) for name, pts in figure.items()}
    assert peaks["sql-cs"] > peaks["mongo-as"] > peaks["mongo-cs"]
    assert peaks["sql-cs"] == pytest.approx(125_457, rel=0.25)
    assert peaks["mongo-as"] == pytest.approx(68_533, rel=0.25)
    assert peaks["mongo-cs"] == pytest.approx(60_907, rel=0.25)

    # Mongo systems never achieve the 80k target.
    assert figure["mongo-as"][4].achieved < 80_000
    assert figure["mongo-cs"][4].achieved < 80_000

    # SQL-CS has the lowest read latency at every target.
    for i in range(len(TARGETS)):
        assert (
            figure["sql-cs"][i].latency["read"]
            < figure["mongo-as"][i].latency["read"]
        )
        assert (
            figure["sql-cs"][i].latency["read"]
            < figure["mongo-cs"][i].latency["read"]
        )

"""Figure 3: workload B (95% reads / 5% updates), read + update latency.

Paper: SQL-CS achieves 103,789 ops/s (update 12 ms, read 8.4 ms); the Mongo
systems cannot reach the 40k target region before their latencies blow up;
every system peaks below its workload C level because dirty-page flushing
(checkpoints / fsync cycles) steals disk bandwidth.
"""

import pytest

from repro.core.report import render_ycsb_figure

TARGETS = [5_000, 10_000, 20_000, 40_000, 80_000, 160_000]


def test_fig3_workload_b(benchmark, oltp_study, record):
    figure = benchmark(oltp_study.figure, "B", TARGETS)
    record(
        "fig3_workload_b",
        render_ycsb_figure(oltp_study, "B", TARGETS, ["read", "update"]),
    )

    peaks = {name: max(p.achieved for p in pts) for name, pts in figure.items()}
    assert peaks["sql-cs"] == pytest.approx(103_789, rel=0.25)
    assert peaks["sql-cs"] > 1.5 * peaks["mongo-as"]
    assert peaks["sql-cs"] > 1.5 * peaks["mongo-cs"]

    # Checkpoint/flush cost: B peaks below C peaks for every system.
    for name in figure:
        assert peaks[name] < oltp_study.peak_throughput(name, "C")

    # Mongo latencies climb steeply between the 20k and 40k targets.
    for name in ("mongo-as", "mongo-cs"):
        l20 = figure[name][2].latency["read"]
        l40 = figure[name][3].latency["read"]
        assert l40 > l20

"""Figure 5: workload D (95% read-latest / 5% appends).

Paper: SQL-CS serves 99.5% of reads from the buffer pool (latencies in the
microsecond-to-millisecond range) and sustains the highest targets; Mongo-CS
peaks at 224,271 ops/s; Mongo-AS shows a 320 ms append latency at the 20k
target and *crashes* (socket exceptions) at any higher target, so those
points are absent from the figure.
"""

import pytest

from repro.core.report import render_ycsb_figure

TARGETS = [20_000, 40_000, 80_000, 160_000, 320_000, 640_000]


def test_fig5_workload_d(benchmark, oltp_study, record):
    figure = benchmark(oltp_study.figure, "D", TARGETS)
    record(
        "fig5_workload_d",
        render_ycsb_figure(oltp_study, "D", TARGETS, ["read", "insert"]),
    )

    # SQL-CS: cached read-latest -> CPU bound at very high throughput.
    sql_peak = max(p.achieved for p in figure["sql-cs"])
    assert sql_peak > 250_000
    assert figure["sql-cs"][3].latency_ms("read") < 2.0  # 160k target

    # Mongo-CS peak near the paper's 224,271 ops/s.
    cs_peak = max(p.achieved for p in figure["mongo-cs"])
    assert cs_peak == pytest.approx(224_271, rel=0.25)

    # Mongo-AS: one surviving point at 20k with a pathological append
    # latency, then crashes (absent data points).
    as_points = figure["mongo-as"]
    assert as_points[0] is not None
    assert as_points[0].latency_ms("insert") > 100  # paper: 320 ms
    assert all(p is None for p in as_points[1:])

#!/usr/bin/env python3
"""Benchmark-trajectory harness: time the simulator's own hot paths.

The ROADMAP's north star includes making the reproduction's hot paths
measurably faster over time.  This harness seeds that trajectory: it
wall-clock-times the paths every study run exercises — DSS calibration +
the SF-250 query sweep, the YCSB workload A and E figures (analytic MVA
and the discrete-event cross-validation), the open-loop frontier knee
search, the elastic-resharding scenario (live chunk migration plus the
write-safety audit), critical-path extraction plus
what-if replay — and writes ``BENCH_9.json`` so future PRs can regress
against the numbers (``BENCH_<n>.json`` per PR; ``gate.py`` compares them
and fails CI on a regression).

Format (see EXPERIMENTS.md, "Performance trajectory")::

    {
      "schema": "repro-bench/1",
      "pr": 2,
      "smoke": false,
      "python": "3.12.3",
      "host": {"python": ..., "platform": ..., "cpu_count": ...},
      "benchmarks": {
        "<name>": {"seconds": <best-of-runs wall seconds>,
                   "runs": <int>,
                   "max_seconds": ..., "stddev": ...,   # when runs > 1
                   "profile": {...},                    # with --profile
                   "meta": {...}},
        ...
      }
    }

``--profile`` re-runs each benchmark once under :class:`ProfiledRun` and
embeds the top-5 hot functions + subsystem counters per entry, so
``repro --compare`` can attribute a regression to a subsystem instead of
just reporting a slower wall clock.

Usage::

    python benchmarks/trajectory.py                  # full run -> BENCH_9.json
    python benchmarks/trajectory.py --smoke          # CI-sized subset
    python benchmarks/trajectory.py --smoke --profile
    python benchmarks/trajectory.py --check BENCH_9.json   # validate only
"""

from __future__ import annotations

import argparse
import json
import platform
import signal
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

SCHEMA = "repro-bench/1"
PR = 10
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / f"BENCH_{PR}.json"

# A trajectory file must carry these top-level keys and benchmark names;
# --check (and the CI step) fails without them.
REQUIRED_KEYS = ("schema", "pr", "smoke", "python", "benchmarks")
REQUIRED_BENCHMARKS = (
    "dss_calibration",
    "dss_sf250_queries",
    "ycsb_workload_a_mva",
    "ycsb_workload_e_mva",
    "ycsb_workload_a_eventsim",
    "ycsb_workload_e_eventsim",
    "ycsb_frontier_knee",
    "reshard_time_to_rebalance",
    "overload_recovery_time",
    "utilization_sampling_overhead",
    "critpath_whatif_replay",
)


#: Set by ``--profile``: benchmark thunks read ``_PROF["prof"]`` to thread
#: the profiler into producers (it is non-None only during the extra
#: profiled repetition ``_timed`` runs after its timing loop).
_PROF: dict = {"enabled": False, "prof": None}


def _timed(fn, runs: int = 1) -> dict:
    """Best-of-``runs`` wall-clock timing (the usual benchmarking guard).

    ``seconds`` is the best run; with ``runs > 1`` the spread rides along
    (``max_seconds``/``stddev``) so the regression gate and the compare
    layer can tell noise from a real slowdown.  With ``--profile`` one
    extra repetition runs under a :class:`ProfiledRun` — *after* the timing
    loop, so the profiler never pollutes ``seconds``.
    """
    times = []
    value = None
    for _ in range(runs):
        t0 = time.perf_counter()
        value = fn()
        times.append(time.perf_counter() - t0)
    timing = {"seconds": round(min(times), 4), "runs": runs, "value": value}
    if runs > 1:
        timing["max_seconds"] = round(max(times), 4)
        timing["stddev"] = round(statistics.stdev(times), 4)
    if _PROF["enabled"]:
        from repro.obs import ProfiledRun, profile_summary

        prof = ProfiledRun().start()
        _PROF["prof"] = prof
        try:
            fn()
        finally:
            _PROF["prof"] = None
            prof.stop()
        timing["profile"] = profile_summary(prof, top=5)
    return timing


class SectionTimeout(Exception):
    """A benchmark section exceeded its wall-clock limit."""


def _run_with_limit(fn, limit: float):
    """Run ``fn`` under a SIGALRM wall-clock limit (0 or unsupported = off)."""
    if not limit or not hasattr(signal, "SIGALRM"):
        return fn()

    def on_alarm(signum, frame):
        raise SectionTimeout(f"exceeded {limit:g} s")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, limit)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def run_benchmarks(smoke: bool, utilization_csv: str | None = None,
                   section_timeout: float = 0.0) -> dict:
    from repro.core.dss import QUERY_NUMBERS, DssStudy
    from repro.core.oltp import OltpStudy
    from repro.obs import UtilizationSampler, write_series_csv

    benchmarks: dict[str, dict] = {}

    def record(name: str, timing: dict, **meta) -> None:
        entry = {"seconds": timing["seconds"], "runs": timing["runs"]}
        for key in ("max_seconds", "stddev", "profile"):
            if key in timing:
                entry[key] = timing[key]
        if meta:
            entry["meta"] = meta
        benchmarks[name] = entry
        print(f"  {name:<32} {timing['seconds']:>9.3f} s  {meta or ''}")

    def guard(names: tuple, thunk) -> bool:
        """Run one section under the wall-clock limit.

        On timeout, every benchmark the section did not manage to record
        gets a ``timed_out`` entry instead — so a hung section still yields
        a valid, partial trajectory file rather than a dead CI job.
        """
        try:
            _run_with_limit(thunk, section_timeout)
            return True
        except SectionTimeout:
            for name in names:
                if name not in benchmarks:
                    benchmarks[name] = {"timed_out": True,
                                        "limit_seconds": section_timeout}
                    print(f"  {name:<32} TIMED OUT (> {section_timeout:g} s)")
            return False

    def skip(names: tuple, after: str) -> None:
        for name in names:
            benchmarks[name] = {"timed_out": True, "skipped_after": after}
            print(f"  {name:<32} skipped ({after} timed out)")

    print(f"trajectory benchmarks ({'smoke' if smoke else 'full'}):")

    # DSS: calibration is the dominant cost of a fresh study (tiny-SF query
    # execution + per-query weight fitting); the SF-250 sweep is the cost
    # model itself.
    holder: dict = {}

    def build_study():
        holder["study"] = DssStudy()
        return None

    guard(("dss_calibration",),
          lambda: record("dss_calibration", _timed(build_study),
                         calibration_sf=0.01))
    study = holder.get("study")

    queries = [1, 5, 22] if smoke else list(QUERY_NUMBERS)

    def sweep():
        total = 0.0
        for number in queries:
            total += study.hive_time(number, 250.0) or 0.0
            total += study.pdw_time(number, 250.0)
        return round(total, 1)

    def sweep_section():
        timing = _timed(sweep, runs=1 if smoke else 3)
        record("dss_sf250_queries", timing, queries=len(queries), engines=2,
               simulated_seconds=timing["value"])

    if study is not None:
        guard(("dss_sf250_queries",), sweep_section)
    else:
        skip(("dss_sf250_queries",), "dss_calibration")

    # YCSB: the analytic figure curves and the event-sim cross-validation.
    targets_a = [5_000, 10_000] if smoke else [1_000, 2_000, 5_000, 10_000,
                                               20_000, 40_000]
    targets_e = [500, 1_000] if smoke else [250, 500, 1_000, 2_000, 4_000,
                                            8_000]

    def mva_section():
        holder["oltp"] = OltpStudy()
        oltp = holder["oltp"]
        record("ycsb_workload_a_mva",
               _timed(lambda: len(oltp.figure("A", targets_a)), runs=3),
               targets=len(targets_a))
        record("ycsb_workload_e_mva",
               _timed(lambda: len(oltp.figure("E", targets_e)), runs=3),
               targets=len(targets_e))

    guard(("ycsb_workload_a_mva", "ycsb_workload_e_mva"), mva_section)
    oltp = holder.get("oltp")

    duration = 20.0 if smoke else 60.0
    eventsim_names = ("ycsb_workload_a_eventsim", "ycsb_workload_e_eventsim")
    # The measured window excludes the sim's 10 s warmup, so the virtual
    # rate is ops / (duration - warmup) — deterministic, unlike the
    # wall-clock rate that is derived from the best-of timing.
    measured_window = duration - 10.0

    def eventsim_bench(name: str, workload: str, target: float) -> None:
        timing = _timed(lambda: oltp.event_sim_point(
            "mongo-as", workload, target,
            duration=duration, prof=_PROF["prof"])[1].completed_ops)
        ops = timing["value"]
        record(name, timing, duration=duration, ops=ops,
               ops_per_virtual_s=round(ops / measured_window, 3),
               ops_per_wall_s=round(ops / timing["seconds"], 3)
               if timing["seconds"] else 0.0)

    if oltp is not None:
        guard(eventsim_names[:1],
              lambda: eventsim_bench("ycsb_workload_a_eventsim", "A", 10_000))
        guard(eventsim_names[1:],
              lambda: eventsim_bench("ycsb_workload_e_eventsim", "E", 2_000))
    else:
        skip(eventsim_names, "ycsb_workload_mva")

    # The open-loop frontier: Poisson arrivals, CO-correct accounting, and
    # the knee bisection over one system/workload cell.  This is the cost
    # of a single frontier row, i.e. 1/8 of the default `--frontier` sweep.
    def frontier_section():
        from repro.ycsb.frontier import frontier_report

        budget = (dict(measure_ops=1500, warmup_ops=300, min_window_s=0.2)
                  if smoke else
                  dict(measure_ops=8000, warmup_ops=2000, min_window_s=0.5))

        def knee():
            report = frontier_report(systems=["mongo-as"], workloads=["A"],
                                     seed=11, slo_ms=20.0, **budget)
            return report["rows"][0]["knee"]["evaluations"]

        timing = _timed(knee)
        record("ycsb_frontier_knee", timing,
               knee_probes=timing["value"], **budget)

    guard(("ycsb_frontier_knee",), frontier_section)

    # Elastic resharding end to end: a seeded YCSB run whose topology
    # changes mid-stream, with the throttled migration engine, retry
    # semantics, and the acknowledged-write audit.  ``seconds`` is the
    # harness wall-clock; the *virtual* rebalance time rides in the meta,
    # where the gate holds it to a hard ceiling (it is machine-neutral).
    def reshard_section():
        from repro.faults.reshard import reshard_row

        params = (dict(reshard="scale:shards=3@0.3", shard_count=2,
                       record_count=150, operations=300)
                  if smoke else
                  dict(reshard="scale:shards=6@0.3", shard_count=4,
                       record_count=300, operations=600))

        def rebalance():
            row = reshard_row(
                "mongo-as", params["reshard"],
                shard_count=params["shard_count"],
                record_count=params["record_count"],
                operations=params["operations"], seed=11,
            )
            return row["time_to_rebalance_s"]

        timing = _timed(rebalance, runs=1 if smoke else 3)
        record("reshard_time_to_rebalance", timing,
               rebalance_virtual_s=timing["value"],
               operations=params["operations"],
               shards=params["shard_count"])

    guard(("reshard_time_to_rebalance",), reshard_section)

    # The metastable-failure demo end to end: both arms of the overload
    # scenario (retry storm vs. admission control + retry budget).
    # ``seconds`` is the harness wall-clock for the two-arm run; the
    # *virtual* time the protected arm needs to recover pre-spike goodput
    # rides in the meta, where the gate holds it to a hard ceiling
    # (deterministic per seed, machine-neutral).
    def overload_section():
        from repro.overload import overload_report

        timing = _timed(lambda: overload_report(seed=1234)["contrast"])
        contrast = timing["value"]
        record("overload_recovery_time", timing,
               recovery_virtual_s=contrast["protected_time_to_recovery_s"],
               collapsed_virtual_s=contrast["unprotected_collapsed_for_s"],
               goodput_ratio=contrast["goodput_ratio"],
               metastable_demonstrated=contrast["metastable_demonstrated"])

    guard(("overload_recovery_time",), overload_section)

    # Overhead of the new sampling layer on a traced hot path: Q1 with a
    # sampler attached vs. bare.  Also produces the CI utilization artifact.
    sampler = UtilizationSampler()

    def overhead_section():
        bare = _timed(lambda: study.hive.run_query(1, 250.0).total_time,
                      runs=3)

        def sampled():
            local = UtilizationSampler()
            study.hive.run_query(1, 250.0, sampler=local)
            sampler._accums = local._accums
            sampler._gauges = local._gauges
            sampler._end = local._end
            return len(local)

        with_sampler = _timed(sampled, runs=3)
        overhead = ((with_sampler["seconds"] / bare["seconds"])
                    if bare["seconds"] else 0.0)
        record("utilization_sampling_overhead", with_sampler,
               bare_seconds=bare["seconds"],
               overhead_ratio=round(overhead, 2))

    if study is not None:
        guard(("utilization_sampling_overhead",), overhead_section)
    else:
        skip(("utilization_sampling_overhead",), "dss_calibration")
    if utilization_csv and len(sampler):
        rows = write_series_csv(utilization_csv, sampler)
        print(f"  wrote {rows} utilization rows -> {utilization_csv}")

    # The causal layer's own cost: critical-path extraction plus a
    # what-if replay over one traced Q1 @ SF 250 span DAG.
    def critpath_section():
        from repro.obs import critical_path, dss_whatif_report

        _, tracer, _ = study.trace_query(1, 250.0, engine="hive")

        def extract():
            path = critical_path(tracer)
            dss_whatif_report(tracer, "hive", {"map-startup": 0.0})
            return len(path.segments)

        timing = _timed(extract, runs=1 if smoke else 3)
        record("critpath_whatif_replay", timing,
               spans=len(tracer.spans), segments=timing["value"])

    if study is not None:
        guard(("critpath_whatif_replay",), critpath_section)
    else:
        skip(("critpath_whatif_replay",), "dss_calibration")

    from repro.obs import host_meta

    return {
        "schema": SCHEMA,
        "pr": PR,
        "smoke": smoke,
        "python": platform.python_version(),
        "host": host_meta(),
        "benchmarks": benchmarks,
    }


def validate(doc: dict, required: tuple = REQUIRED_BENCHMARKS) -> list[str]:
    """Return the list of problems (empty = valid trajectory file).

    ``required`` defaults to the current PR's benchmark set; pass ``()``
    for files written by earlier PRs (the gate does), whose benchmark list
    was legitimately shorter — their entries are still shape-checked.
    """
    problems = []
    for key in REQUIRED_KEYS:
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    benchmarks = doc.get("benchmarks", {})
    for name in required:
        if name not in benchmarks:
            problems.append(f"missing benchmark {name!r}")
    for name, entry in sorted(benchmarks.items()):
        if entry.get("timed_out") is True:
            # A guarded section hit its wall-clock limit; the partial file
            # is still a valid trajectory.
            continue
        seconds = entry.get("seconds")
        if not isinstance(seconds, (int, float)) or seconds < 0:
            problems.append(f"benchmark {name!r} has invalid seconds {seconds!r}")
        if not isinstance(entry.get("runs"), int) or entry["runs"] < 1:
            problems.append(f"benchmark {name!r} has invalid runs")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized subset (fewer queries/targets, "
                             "shorter sims)")
    parser.add_argument("--profile", action="store_true",
                        help="re-run each benchmark once under the "
                             "self-profiler and embed top-5 hot functions "
                             "+ subsystem counters per entry (timings stay "
                             "unprofiled)")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT),
                        help=f"output path (default {DEFAULT_OUTPUT.name})")
    parser.add_argument("--utilization-csv", metavar="PATH",
                        help="also write the Q1 @ SF 250 utilization series "
                             "CSV (the CI artifact)")
    parser.add_argument("--section-timeout", type=float, default=0.0,
                        metavar="SECONDS",
                        help="wall-clock limit per benchmark section; a "
                             "section over the limit is recorded as "
                             "timed_out and the remaining sections still "
                             "run (0 = no limit)")
    parser.add_argument("--check", metavar="PATH",
                        help="validate an existing trajectory file and exit")
    args = parser.parse_args(argv)

    if args.check:
        try:
            doc = json.loads(Path(args.check).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read {args.check}: {exc}", file=sys.stderr)
            return 1
        problems = validate(doc)
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        if not problems:
            names = ", ".join(sorted(doc["benchmarks"]))
            print(f"{args.check} valid: pr={doc['pr']} "
                  f"smoke={doc['smoke']} benchmarks=[{names}]")
        return 1 if problems else 0

    _PROF["enabled"] = bool(args.profile)
    doc = run_benchmarks(args.smoke, utilization_csv=args.utilization_csv,
                         section_timeout=args.section_timeout)
    problems = validate(doc)
    if problems:  # a bug in this harness, not in the simulator
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    Path(args.output).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

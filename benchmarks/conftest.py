"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures, prints it,
and persists the rendered text under ``benchmarks/output/`` so the artifacts
survive pytest's output capturing.
"""

from pathlib import Path

import pytest

from repro.core.dss import DssStudy
from repro.core.oltp import OltpStudy

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def dss_study():
    """One calibrated DSS study shared by all DSS benchmarks."""
    return DssStudy()


@pytest.fixture(scope="session")
def oltp_study():
    return OltpStudy()


@pytest.fixture(scope="session")
def record():
    """Print a rendered artifact and save it to benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _record

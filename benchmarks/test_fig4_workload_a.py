"""Figure 4: workload A (50% reads / 50% updates).

Paper: at 50% updates MongoDB's per-process global write lock runs at
25-45% occupancy (mongostat) and both Mongo variants fall far short of
SQL-CS; SQL-CS itself is limited by lock waits and dirty-page traffic.  The
side experiment: re-running SQL-CS at READ UNCOMMITTED slashes read latency
because reads stop waiting behind writers' X locks.
"""

from repro.core.oltp import OltpStudy
from repro.core.report import render_ycsb_figure

TARGETS = [1_000, 2_000, 5_000, 10_000, 20_000, 40_000]


def test_fig4_workload_a(benchmark, oltp_study, record):
    figure = benchmark(oltp_study.figure, "A", TARGETS)
    record(
        "fig4_workload_a",
        render_ycsb_figure(oltp_study, "A", TARGETS, ["read", "update"]),
    )

    peaks = {name: max(p.achieved for p in pts) for name, pts in figure.items()}
    assert peaks["sql-cs"] > peaks["mongo-as"]
    assert peaks["sql-cs"] > peaks["mongo-cs"]
    # Everything is far below the workload B levels.
    for name in figure:
        assert peaks[name] < 0.5 * oltp_study.peak_throughput(name, "B")

    # The global-lock occupancy the paper measured with mongostat (25-45%):
    # at saturation the modelled lock is at least at the band's floor.
    from repro.docstore.mongostat import PAPER_LOCK_BAND

    sat = oltp_study.evaluate("mongo-as", "A", 40_000)
    assert PAPER_LOCK_BAND[0] / 100.0 <= sat.utilization["hotlock"] <= 1.0


def test_fig4_read_uncommitted_side_experiment(benchmark, record):
    rc = OltpStudy(isolation="read_committed").evaluate("sql-cs", "A", 40_000)
    ru = benchmark(
        lambda: OltpStudy(isolation="read_uncommitted").evaluate("sql-cs", "A", 40_000)
    )
    record(
        "fig4_isolation_ablation",
        "Workload A at 40k target, SQL-CS isolation comparison\n"
        f"  read committed:   read={rc.latency_ms('read'):6.1f} ms  "
        f"update={rc.latency_ms('update'):6.1f} ms\n"
        f"  read uncommitted: read={ru.latency_ms('read'):6.1f} ms  "
        f"update={ru.latency_ms('update'):6.1f} ms\n"
        "  (paper: RU reads drop to ~15 ms because they stop waiting on writers)",
    )
    assert ru.latency_ms("read") < 0.5 * rc.latency_ms("read")
